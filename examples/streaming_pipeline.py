"""Streaming triangle-edge detection and the one-way reduction (§4.2.2).

Runs the reservoir streaming finder over µ-distributed edge streams at
several space budgets (the space/success trade-off the Omega(n^{1/4}) lower
bound constrains), then converts the same algorithm into a 3-player one-way
chain protocol via the generic streaming -> one-way reduction and shows the
per-hop cost equals the streaming state size.

Run:  python examples/streaming_pipeline.py
"""

from __future__ import annotations

from repro.graphs import is_triangle_free
from repro.lowerbounds import MuDistribution
from repro.streaming import (
    CountingExactFinder,
    ReservoirTriangleFinder,
    run_stream,
    space_lower_bound_from_oneway,
    streaming_to_oneway,
)


def main() -> None:
    mu = MuDistribution(part_size=50, gamma=1.2)
    trials = 12

    print(f"== space/success trade-off on mu (n={mu.n})")
    print(f"   {'reservoir':<12}{'peak bits':<12}{'success rate':<14}")
    for reservoir in (4, 8, 16, 32, 64, 128):
        successes = 0
        peak = 0
        for trial in range(trials):
            sample = mu.sample(seed=trial)
            if is_triangle_free(sample.graph):
                continue
            finder = ReservoirTriangleFinder(
                sample.graph.n, reservoir_size=reservoir, seed=100 + trial
            )
            run = run_stream(finder, sorted(sample.graph.edges()))
            peak = max(peak, run.peak_space_bits)
            if run.result is not None:
                successes += 1
        print(f"   {reservoir:<12}{peak:<12}{successes / trials:<14.2f}")

    print("\n== exact finder ceiling (stores the whole stream)")
    sample = mu.sample(seed=0)
    exact = CountingExactFinder(sample.graph.n)
    run = run_stream(exact, sorted(sample.graph.edges()))
    print(
        f"   result={run.result}, peak space {run.peak_space_bits} bits "
        f"for {run.elements_processed} stream edges"
    )

    print("\n== streaming -> one-way chain reduction")
    chain = streaming_to_oneway(
        sample.partition,
        lambda: ReservoirTriangleFinder(sample.graph.n, 64, seed=7),
    )
    print(
        f"   3-player chain: output={chain.output}, "
        f"total forwarded bits={chain.total_bits} over "
        f"{len(chain.transcript.messages)} hops"
    )
    print(
        "   lower-bound transfer: a one-way bound of B bits implies "
        f"streaming space >= B/2; e.g. B=1000 -> "
        f"{space_lower_bound_from_oneway(1000.0):.0f} bits"
    )


if __name__ == "__main__":
    main()

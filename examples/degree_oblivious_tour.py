"""Degree-oblivious testing across density regimes and skewed partitions.

The Section 3.4.3 protocol never learns the average degree: each player
hedges across O(log k) density guesses keyed to its local view.  This tour
runs it on a sparse instance, a dense instance, and an adversarially skewed
partition (one player holds 90% of the edges — most players are
"irrelevant" in the paper's sense), and compares its cost with the
degree-aware protocols that were told d in advance.

Run:  python examples/degree_oblivious_tour.py
"""

from __future__ import annotations

import math

from repro.core import (
    ObliviousParams,
    SimHighParams,
    SimLowParams,
    find_triangle_sim_high,
    find_triangle_sim_low,
    find_triangle_sim_oblivious,
)
from repro.graphs import (
    far_instance,
    partition_adversarial_skew,
    partition_disjoint,
)


def describe(name: str, result, aware_bits: int) -> None:
    ratio = result.total_bits / max(1, aware_bits)
    verdict = "triangle found" if result.found else "MISSED"
    print(
        f"   {name:<34} {verdict:<16} {result.total_bits:>9} bits "
        f"({ratio:.2f}x the degree-aware cost)"
    )


def main() -> None:
    k = 5
    epsilon = 0.2

    print("== sparse regime: n=3000, d=5 (d << sqrt(n) ~ 55)")
    sparse = far_instance(n=3000, d=5.0, epsilon=epsilon, seed=1)
    sparse_partition = partition_disjoint(sparse.graph, k=k, seed=2)
    aware = find_triangle_sim_low(
        sparse_partition, SimLowParams(epsilon=epsilon), seed=3
    )
    print(f"   degree-aware sim-low reference: {aware.total_bits} bits")
    oblivious = find_triangle_sim_oblivious(
        sparse_partition, ObliviousParams(epsilon=epsilon), seed=3
    )
    describe("oblivious, disjoint partition", oblivious, aware.total_bits)

    print("\n== dense regime: n=900, d=sqrt(n)=30")
    dense = far_instance(n=900, d=30.0, epsilon=epsilon, seed=4)
    dense_partition = partition_disjoint(dense.graph, k=k, seed=5)
    aware_high = find_triangle_sim_high(
        dense_partition, SimHighParams(epsilon=epsilon), seed=6
    )
    print(f"   degree-aware sim-high reference: {aware_high.total_bits} bits")
    oblivious_dense = find_triangle_sim_oblivious(
        dense_partition, ObliviousParams(epsilon=epsilon), seed=6
    )
    describe(
        "oblivious, disjoint partition", oblivious_dense,
        aware_high.total_bits,
    )

    print("\n== adversarial skew: player 0 holds ~90% of the edges")
    print("   (other players' local densities are wildly misleading)")
    skewed_partition = partition_adversarial_skew(
        sparse.graph, k=k, seed=7, heavy_fraction=0.9
    )
    local_densities = [
        2.0 * len(view) / sparse.graph.n for view in skewed_partition.views
    ]
    print(
        "   local average degrees: "
        + ", ".join(f"{density:.2f}" for density in local_densities)
        + f"  (true d = {sparse.graph.average_degree():.2f})"
    )
    oblivious_skewed = find_triangle_sim_oblivious(
        skewed_partition, ObliviousParams(epsilon=epsilon), seed=8
    )
    describe("oblivious, skewed partition", oblivious_skewed, aware.total_bits)
    guess = oblivious_skewed.details["winning_guess_index"]
    if guess is not None:
        print(
            f"   triangle surfaced in density-guess instance 2^{guess} "
            f"= {2 ** guess} (true d = {sparse.graph.average_degree():.1f}, "
            f"sqrt(n) = {math.sqrt(sparse.graph.n):.0f})"
        )


if __name__ == "__main__":
    main()

"""Beyond triangles: testing H-freeness for K4, C4, C5 — and beyond.

The paper closes by suggesting its techniques generalize "for detecting a
wider class of subgraphs".  This example runs the generalized
induced-sample simultaneous tester on planted instances of three patterns,
next to the exact send-everything baseline.  The tester's cost is
~(nd)^{1-2/h} against the baseline's ~nd, so the advantage grows with
density and size — visible already at n=4000 here, and widening beyond.

The referee runs on the mask-native pattern engine (repro.patterns):
each round's messages fold into adjacency rows and the canonical-first
monomorphism matcher walks them — no networkx on the hot path.  The
last section plants copies of *several* catalog patterns (a clique, a
cycle, a star) in one instance and tests each against it.

Run:  python examples/subgraph_freeness.py
"""

from __future__ import annotations

from repro.core import exact_triangle_detection
from repro.core.subgraph_detection import (
    SubgraphParams,
    find_subgraph_simultaneous,
)
from repro.graphs import bipartite_triangle_free, partition_disjoint
from repro.graphs.graph import Graph
from repro.patterns import (
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    planted_disjoint_subgraphs,
    planted_mixed_patterns,
    star,
)


def main() -> None:
    n, k = 4000, 4
    print(f"== planted H-freeness instances on n={n}, k={k}, d~9")
    print(f"   {'pattern':<8}{'verdict':<10}{'copy':<34}"
          f"{'tester bits':<13}{'exact bits':<12}{'saved'}")
    for pattern, copies in ((FOUR_CLIQUE, 250), (FOUR_CYCLE, 250),
                            (FIVE_CYCLE, 200)):
        instance = planted_disjoint_subgraphs(
            n, pattern, copies, seed=1, background_degree=8.0
        )
        partition = partition_disjoint(instance.graph, k, seed=2)
        result = find_subgraph_simultaneous(
            partition, pattern,
            SubgraphParams(
                epsilon=instance.epsilon_certified, c=1.2, rounds=3
            ),
            seed=3,
        )
        exact_bits = exact_triangle_detection(partition).total_bits
        verdict = "found" if result.found else "missed"
        saved = exact_bits / max(1, result.total_bits)
        print(
            f"   {pattern.name:<8}{verdict:<10}"
            f"{str(result.copy):<34}{result.total_bits:<13}"
            f"{exact_bits:<12}{saved:.1f}x"
        )

    print("\n== one-sided error on H-free controls")
    controls = [
        ("K4 on bipartite graph", FOUR_CLIQUE,
         bipartite_triangle_free(600, 6.0, seed=4)),
        ("C4 on a path", FOUR_CYCLE,
         Graph(600, [(i, i + 1) for i in range(599)])),
        ("C5 on bipartite graph", FIVE_CYCLE,  # odd cycles need odd walks
         bipartite_triangle_free(600, 6.0, seed=5)),
    ]
    for label, pattern, control in controls:
        partition = partition_disjoint(control, k, seed=6)
        result = find_subgraph_simultaneous(
            partition, pattern, SubgraphParams(epsilon=0.2, c=1.2), seed=7
        )
        assert not result.found, "one-sided error violated!"
        print(f"   {label:<26} correctly H-free "
              f"({result.total_bits} bits)")

    print("\n== mixed-pattern instance (K4 + C5 + K1,3 planted together)")
    mixed = planted_mixed_patterns(
        2000, [(FOUR_CLIQUE, 60), (FIVE_CYCLE, 60), (star(3), 60)],
        seed=8, background_degree=4.0,
    )
    partition = partition_disjoint(mixed.graph, k, seed=9)
    for pattern in (FOUR_CLIQUE, FIVE_CYCLE, star(3)):
        result = find_subgraph_simultaneous(
            partition, pattern,
            SubgraphParams(
                epsilon=mixed.epsilon_certified(pattern), c=1.5, rounds=3
            ),
            seed=10,
        )
        verdict = "found" if result.found else "missed"
        print(f"   {pattern.name:<8} {verdict:<8} copy={result.copy} "
              f"({result.total_bits} bits)")


if __name__ == "__main__":
    main()

"""Tour of the Section 4 lower-bound constructions, executed.

Four stations:

1. the hard distribution µ — sample it, certify farness (Lemma 4.5);
2. the Boolean Matching reduction (Theorem 4.16) — watch one bit of w flip
   a gadget between triangle-rich and triangle-free;
3. symmetrization (Theorem 4.15) — verify E|Pi'| = (2/k)·CC(Pi) on a real
   simultaneous protocol;
4. covered edges (Definition 11) — exact posteriors showing how message
   budget buys certainty, the engine of the Omega(sqrt n) bound.

Run:  python examples/lower_bound_constructions.py
"""

from __future__ import annotations

from repro.comm.encoding import edge_bits
from repro.comm.players import make_players
from repro.comm.simultaneous import run_simultaneous
from repro.graphs import greedy_triangle_packing, is_triangle_free
from repro.lowerbounds import (
    BMInstance,
    MuDistribution,
    analyze_player,
    bm_product,
    covered_probability,
    reduction_graph,
    sample_bm_instance,
    truncation_message,
    verify_cost_identity,
)


def station_mu() -> None:
    print("== 1. the hard distribution mu (Section 4.2.1)")
    mu = MuDistribution(part_size=60, gamma=1.2)
    sample = mu.sample(seed=1)
    packing = greedy_triangle_packing(sample.graph)
    print(
        f"   n={mu.n}, p=gamma/sqrt(n)={mu.edge_probability:.4f}, "
        f"sampled {sample.graph.num_edges} edges "
        f"(E[deg]={mu.expected_average_degree():.1f})"
    )
    print(
        f"   greedy edge-disjoint triangle packing: {len(packing)} "
        f"triangles -> distance >= {len(packing)} edge removals"
    )
    print(
        f"   split: Alice |U x V1|={len(sample.alice_edges)}, "
        f"Bob |U x V2|={len(sample.bob_edges)}, "
        f"Charlie |V1 x V2|={len(sample.charlie_edges)}"
    )


def station_bm() -> None:
    print("\n== 2. Boolean Matching reduction (Theorem 4.16)")
    n = 8
    zeros = sample_bm_instance(n, "zeros", seed=2)
    ones = sample_bm_instance(n, "ones", seed=2)
    for label, instance in (("Mx^w = 0", zeros), ("Mx^w = 1", ones)):
        graph, alice_edges, bob_edges = reduction_graph(instance)
        packing = greedy_triangle_packing(graph)
        print(
            f"   {label}: graph on {graph.n} vertices, "
            f"|Alice|={len(alice_edges)}, |Bob|={len(bob_edges)}, "
            f"disjoint triangles={len(packing)}, "
            f"triangle-free={is_triangle_free(graph)}"
        )
    print("   flipping one bit of w flips one gadget:")
    flipped = BMInstance(
        x=zeros.x,
        matching=zeros.matching,
        w=(1 - zeros.w[0],) + zeros.w[1:],
    )
    print(
        f"   Mx^w before: {bm_product(zeros)[:4]}..., "
        f"after flip: {bm_product(flipped)[:4]}..."
    )


def station_symmetrization() -> None:
    print("\n== 3. symmetrization identity (Theorem 4.15)")
    k = 8
    mu = MuDistribution(part_size=15, gamma=1.0)

    def sketch(partition, seed):
        players = make_players(partition)
        n = partition.graph.n
        return run_simultaneous(
            players,
            message_fn=lambda p, _: sorted(p.edges)[:10],
            message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
            referee_fn=lambda messages, _: None,
        )

    report = verify_cost_identity(mu, k, sketch, trials=60, seed=3)
    print(
        f"   k={k}: measured special/total ratio "
        f"{report.measured_ratio:.4f} vs predicted 2/k = "
        f"{report.predicted_ratio:.4f} "
        f"(relative error {report.relative_error:.1%})"
    )
    print("   => any 3-player one-way bound lifts to k players x (k/2)")


def station_covered() -> None:
    print("\n== 4. covered edges vs message budget (Definition 11)")
    part = 2
    prior = 0.35
    u_part = list(range(part))
    alice_universe = [(u, v1) for u in u_part for v1 in range(part)]
    bob_universe = [(u, v2) for u in u_part for v2 in range(part)]
    print(f"   universe: {len(alice_universe)} potential edges per player, "
          f"prior p={prior}")
    print(f"   {'budget':<8}{'E[covered pairs at 9/10]':<28}")
    for budget in (0, 1, 2, 4):
        alice = analyze_player(
            alice_universe, prior, truncation_message(budget)
        )
        bob = analyze_player(bob_universe, prior, truncation_message(budget))
        expectation = 0.0
        for m1, p1 in alice.message_probabilities.items():
            for m2, p2 in bob.message_probabilities.items():
                count = sum(
                    1
                    for v1 in range(part)
                    for v2 in range(part)
                    if covered_probability(
                        alice, bob, m1, m2, v1, v2, u_part
                    ) >= 0.9
                )
                expectation += p1 * p2 * count
        print(f"   {budget:<8}{expectation:<28.4f}")
    print("   zero communication covers nothing; certainty is what costs.")


def main() -> None:
    station_mu()
    station_bm()
    station_symmetrization()
    station_covered()


if __name__ == "__main__":
    main()

"""Tour of the Section 3.1 building blocks in the coordinator model.

Shows each property-testing primitive implemented as a charged multiparty
procedure, on an input with heavy edge duplication — the regime where naive
implementations go wrong (biased sampling, degree over-counting) and the
paper's public-permutation and MSB/guess-down tricks earn their keep.

Run:  python examples/building_blocks_tour.py
"""

from __future__ import annotations

from collections import Counter

from repro.comm import CoordinatorRuntime, SharedRandomness, make_players
from repro.core import (
    DegreeApproxParams,
    approx_average_degree,
    approx_degree,
    bfs_tree,
    collect_induced_subgraph,
    query_edge,
    random_edge,
    random_incident_edge,
    random_walk,
)
from repro.graphs import gnd, partition_with_duplication


def fresh_runtime(partition, seed: int) -> CoordinatorRuntime:
    return CoordinatorRuntime(
        make_players(partition), shared=SharedRandomness(seed)
    )


def main() -> None:
    n, d, k = 800, 8.0, 4
    graph = gnd(n, d, seed=1)
    partition = partition_with_duplication(
        graph, k=k, seed=2, duplication_probability=0.5
    )
    duplication = sum(len(v) for v in partition.views) / graph.num_edges
    print(
        f"== input: {graph}, k={k}, average edge multiplicity "
        f"{duplication:.2f}"
    )

    rt = fresh_runtime(partition, 10)
    some_edge = next(iter(graph.edges()))
    print(f"\n-- query_edge{some_edge}: "
          f"{query_edge(rt, *some_edge)} "
          f"[{rt.ledger.total_bits} bits, O(k)]")

    hub = max(range(n), key=graph.degree)
    rt = fresh_runtime(partition, 11)
    edge = random_incident_edge(rt, hub)
    print(f"-- random_incident_edge({hub}): {edge} "
          f"[{rt.ledger.total_bits} bits, O(k log n)]")

    print("   uniformity under duplication (public-permutation trick):")
    counts: Counter[int] = Counter()
    for seed in range(300):
        rt = fresh_runtime(partition, 1000 + seed)
        sampled = random_incident_edge(rt, hub, tag=seed)
        far = sampled[0] if sampled[1] == hub else sampled[1]
        counts[far] += 1
    top = counts.most_common(3)
    expected = 300 / graph.degree(hub)
    print(f"   deg({hub})={graph.degree(hub)}, expected {expected:.1f} "
          f"hits per neighbour; top observed: {top}")

    rt = fresh_runtime(partition, 12)
    walk = random_walk(rt, hub, steps=5)
    print(f"-- random_walk from {hub}: {walk} "
          f"[{rt.ledger.total_bits} bits]")

    rt = fresh_runtime(partition, 13)
    edge = random_edge(rt)
    print(f"-- random_edge(): {edge} [{rt.ledger.total_bits} bits]")

    rt = fresh_runtime(partition, 14)
    estimate = approx_degree(
        rt, hub, DegreeApproxParams(alpha=2.0, experiments_override=24)
    )
    print(
        f"-- approx_degree({hub}): {estimate.value} "
        f"(true {graph.degree(hub)}; naive exact would cost "
        f"Omega(k*deg) under duplication) [{rt.ledger.total_bits} bits]"
    )

    rt = fresh_runtime(partition, 15)
    estimated_d = approx_average_degree(
        rt, DegreeApproxParams(alpha=2.0, experiments_override=24)
    )
    print(
        f"-- approx_average_degree(): {estimated_d:.1f} "
        f"(true {graph.average_degree():.1f}) "
        f"[{rt.ledger.total_bits} bits, distinct-elements style]"
    )

    rt = fresh_runtime(partition, 16)
    vertices = list(range(40))
    induced = collect_induced_subgraph(rt, vertices)
    print(
        f"-- collect_induced_subgraph(40 vertices): {len(induced)} edges "
        f"[{rt.ledger.total_bits} bits — players pay only for edges "
        "that exist]"
    )

    rt = fresh_runtime(partition, 17)
    tree = bfs_tree(rt, hub, max_vertices=25)
    print(
        f"-- bfs_tree from {hub}: reached {len(tree)} vertices "
        f"[{rt.ledger.total_bits} bits]"
    )


if __name__ == "__main__":
    main()

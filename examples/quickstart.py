"""Quickstart: test triangle-freeness of a distributed graph.

Builds an epsilon-far instance, splits its edges among k players, and runs
every protocol of the paper next to the exact baseline, printing each one's
verdict and communication cost.  This is the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro.core import (
    DegreeApproxParams,
    SimHighParams,
    SimLowParams,
    UnrestrictedParams,
    exact_triangle_detection,
    find_triangle_sim_high,
    find_triangle_sim_low,
    find_triangle_sim_oblivious,
    find_triangle_unrestricted,
)
from repro.graphs import (
    bipartite_triangle_free,
    far_instance,
    partition_disjoint,
)


def main() -> None:
    n, d, epsilon, k = 2000, 6.0, 0.2, 4

    print(f"== epsilon-far instance: n={n}, d={d}, epsilon={epsilon}, k={k}")
    instance = far_instance(n=n, d=d, epsilon=epsilon, seed=1)
    print(
        f"   built {instance.graph} with certified farness "
        f">= {instance.epsilon_certified:.3f}"
    )
    partition = partition_disjoint(instance.graph, k=k, seed=2)

    unrestricted_params = UnrestrictedParams(
        epsilon=epsilon,
        delta=0.1,
        known_average_degree=d,
        samples_per_bucket=4 * k,
        max_candidates=8,
        degree_params=DegreeApproxParams(
            alpha=math.sqrt(3.0), experiments_override=10
        ),
    )

    runs = [
        ("unrestricted (Alg 6)", find_triangle_unrestricted(
            partition, unrestricted_params, seed=3)),
        ("simultaneous low-d (Alg 8)", find_triangle_sim_low(
            partition, SimLowParams(epsilon=epsilon, delta=0.1), seed=3)),
        ("simultaneous high-d (Alg 7)", find_triangle_sim_high(
            partition, SimHighParams(epsilon=epsilon, delta=0.1), seed=3)),
        ("degree-oblivious (Alg 11)", find_triangle_sim_oblivious(
            partition, seed=3)),
        ("exact baseline [38]", exact_triangle_detection(partition)),
    ]
    print(f"   {'protocol':<28} {'verdict':<16} {'triangle':<18} bits")
    for name, result in runs:
        verdict = "far (triangle!)" if result.found else "looks free"
        print(
            f"   {name:<28} {verdict:<16} "
            f"{str(result.triangle):<18} {result.total_bits}"
        )

    print("\n== triangle-free control (one-sided error check)")
    control = bipartite_triangle_free(n, d, seed=4)
    control_partition = partition_disjoint(control, k=k, seed=5)
    for name, result in [
        ("simultaneous low-d", find_triangle_sim_low(
            control_partition, SimLowParams(epsilon=epsilon), seed=6)),
        ("degree-oblivious", find_triangle_sim_oblivious(
            control_partition, seed=6)),
    ]:
        assert not result.found, "one-sided error violated!"
        print(f"   {name:<28} correctly reports: looks free "
              f"({result.total_bits} bits)")


if __name__ == "__main__":
    main()

"""Exact triangle detection baselines (the [38] regime the paper beats).

Woodruff and Zhang showed that deciding *exactly* whether the distributed
input contains a triangle requires Ω(k·nd) bits — essentially every player
must ship its whole input.  The trivial matching upper bound is implemented
here as the comparison baseline: each player sends all of its edges and the
coordinator answers with certainty.  A blackboard variant posts each edge
once (saving duplication), which is the best the exact problem allows.

The paper's Section 5 headline — property testing is *dramatically* cheaper
than exact detection, even for simultaneous protocols — is reproduced by
benchmarking these baselines against the Section 3 testers
(``benchmarks/bench_exact_vs_testing.py``).
"""

from __future__ import annotations

from repro.comm.encoding import edge_bits
from repro.comm.players import make_players
from repro.comm.simultaneous import run_simultaneous
from repro.core.referee import rows_union_triangle_referee
from repro.core.results import DetectionResult
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition
from repro.graphs.triangles import find_triangle_in_rows

__all__ = ["exact_triangle_detection", "exact_triangle_detection_blackboard"]


def exact_triangle_detection(partition: EdgePartition, *,
                             record_messages: bool = False) -> DetectionResult:
    """Deterministic exact detection: everyone sends everything.

    Simultaneous, zero-error.  Communication Θ(Σ_j |E_j| · log n) —
    the Ω(k·nd) regime when edges are duplicated.  ``record_messages``
    retains the per-message transcript in ``details["transcript"]``.
    """
    players = make_players(partition)
    n = partition.graph.n

    def referee_fn(messages: list[list[Edge]], _):
        return rows_union_triangle_referee(messages, n)

    run = run_simultaneous(
        players,
        message_fn=lambda player, _: player.sorted_edges(),
        message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
        referee_fn=referee_fn,
        label="exact-baseline",
        record_messages=record_messages,
    )
    triangle = run.output
    return DetectionResult(
        found=triangle is not None,
        triangle=triangle,
        witness_edges=(
            ()
            if triangle is None
            else (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            )
        ),
        cost=run.ledger.summary(),
        details={
            "exact": True,
            **(
                {"transcript": run.ledger.records}
                if record_messages else {}
            ),
        },
    )


def exact_triangle_detection_blackboard(
    partition: EdgePartition, *,
    record_messages: bool = False,
) -> DetectionResult:
    """Exact detection on a blackboard: each distinct edge posted once.

    Communication Θ(|E| · log n) — duplication no longer hurts, but the
    linear-in-|E| cost remains, which is what testing escapes.
    ``record_messages`` retains the transcript in
    ``details["transcript"]``.
    """
    from repro.comm.blackboard import BlackboardRuntime
    from repro.comm.ledger import CommunicationLedger

    players = make_players(partition)
    n = partition.graph.n
    rt = BlackboardRuntime(
        players,
        ledger=CommunicationLedger(record_messages=record_messages),
    )
    # Row harvests: each player's whole view is its adjacency rows, so
    # fresh-edge computation and the final search are both word-wide.
    rt.post_rows_in_turns(
        harvest_rows=lambda player: player.adjacency_rows(),
        per_edge_bits=edge_bits(n),
        label="exact-blackboard",
    )
    triangle = find_triangle_in_rows(rt.board_rows)
    return DetectionResult(
        found=triangle is not None,
        triangle=triangle,
        witness_edges=(
            ()
            if triangle is None
            else (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            )
        ),
        cost=rt.ledger.summary(),
        details={
            "exact": True,
            "blackboard": True,
            **(
                {"transcript": rt.ledger.records}
                if record_messages else {}
            ),
        },
    )

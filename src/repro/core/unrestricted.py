"""The unrestricted-communication protocol of Section 3.3 (Algorithms 1-6).

The protocol exploits interaction: once *any* triangle-vee over input edges
is exposed, one more round suffices — every player checks its own input for
the closing edge.  Finding a triangle therefore reduces to finding a vee,
and finding a vee reduces to finding a *full vertex* (Definition 5) and
sampling Θ̃(sqrt(d(v))) of its incident edges (the extended birthday
paradox, Lemma 3.9).  Full vertices are located by degree bucketing:

1. iterate buckets ``B_i`` of degree range [3^(i-1), 3^i) from ``d_l`` up to
   ``d_h = sqrt(nd/eps)`` (Lemma 3.12 brackets the minimal full bucket);
2. per bucket, sample vertices uniformly from the player-suspected set
   ``B~_i = ∪_j B~_i^j`` with the public-permutation trick (Algorithm 1 —
   unbiased despite duplication);
3. filter samples by an approximate degree (Theorem 3.1) to the bucket's
   band (Algorithm 3, GetFullCandidates);
4. per surviving candidate, publicly sample its incident edges and have
   players report the hits (Algorithm 4, SampleEdges); the coordinator
   posts the collected star edges and players answer with a closing edge
   if their input has one (Algorithm 5, FindTriangleVee).

Sample-size formulas follow the paper exactly; a ``scale`` knob multiplies
the leading constants because the paper's worst-case constants exceed any
feasible population at reproduction sizes (see DESIGN.md).  With
``scale=1.0`` the formulas are the paper's verbatim.

The module also provides the Corollary 3.22 degree-oblivious mode (the
average degree is estimated by the distinct-elements routine, the bucket
range widened by the approximation factor) and the Theorem 3.23 blackboard
mode (edges posted once, deduplicated, saving the factor k).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.ledger import CommunicationLedger
from repro.comm.encoding import (
    edge_bits,
    elias_gamma_bits,
    indicator_bits,
    vertex_bits,
)
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.core.degree_approx import (
    DegreeApproxParams,
    approx_average_degree,
    approx_degree,
)
from repro.core.results import DetectionResult
from repro.graphs.buckets import (
    DegreeThresholds,
    bucket_bounds,
    degree_thresholds,
    log2n,
)
from repro.graphs.graph import Edge, canonical_edge, iter_bits, mask_of
from repro.graphs.partition import EdgePartition

__all__ = ["UnrestrictedParams", "find_triangle_unrestricted"]


@dataclass(frozen=True)
class UnrestrictedParams:
    """Parameters of the Section 3.3 protocol.

    With every optional override left at None and ``scale = 1.0``, the
    sample sizes are the paper's literal formulas:

    * ``q = ln(6/δ) · 108 · log²n · k / ε²`` total samples per bucket;
    * ``|C| <= ln(6/δ) · 312 · log²n / ε²`` candidates kept per bucket;
    * per-candidate edge-sampling probability
      ``p = 4 sqrt(ln(6/δ)) · sqrt(12 log n / (ε · d'(v)/3))``;
    * per-player edge cap ``(1 + 18 ln(6/δ)/(d' p)) · sqrt(3) d' p``.
    """

    epsilon: float = 0.1
    delta: float = 0.1
    scale: float = 1.0
    known_average_degree: float | None = None
    """If None, estimate d via Corollary 3.22 (costs O~(k) extra)."""
    samples_per_bucket: int | None = None
    max_candidates: int | None = None
    edge_probability_scale: float = 1.0
    degree_params: DegreeApproxParams = field(
        default_factory=lambda: DegreeApproxParams(alpha=math.sqrt(3.0))
    )
    degree_mode: str = "approx"
    """'approx' = Theorem 3.1; 'nodup_exact' = trivial sum (no-duplication
    inputs only, O(k log d) per query, §3.1's first degree primitive)."""
    blackboard: bool = False
    """Theorem 3.23: post edges once on a shared blackboard."""

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {self.delta}")
        if self.degree_mode not in ("approx", "nodup_exact"):
            raise ValueError(f"unknown degree_mode {self.degree_mode!r}")

    # ------------------------------------------------------------------
    # Paper formulas (with the scale knob)
    # ------------------------------------------------------------------
    def bucket_sample_budget(self, n: int, k: int) -> int:
        """q: total uniform samples drawn per bucket (Algorithm 3)."""
        if self.samples_per_bucket is not None:
            return self.samples_per_bucket
        q = (
            math.log(6.0 / self.delta) * 108.0 * log2n(n) ** 2 * k
            / self.epsilon ** 2
        )
        return max(1, int(math.ceil(self.scale * q)))

    def candidate_budget(self, n: int) -> int:
        """Cap on |C|, the filtered candidate set (Algorithm 3)."""
        if self.max_candidates is not None:
            return self.max_candidates
        cap = (
            math.log(6.0 / self.delta) * 312.0 * log2n(n) ** 2
            / self.epsilon ** 2
        )
        return max(1, int(math.ceil(self.scale * cap)))

    def edge_probability(self, n: int, approx_degree_value: int) -> float:
        """Algorithm 4's sampling probability for a candidate vertex."""
        d_eff = max(1.0, approx_degree_value / 3.0)
        p = (
            4.0
            * math.sqrt(math.log(6.0 / self.delta))
            * math.sqrt(12.0 * log2n(n) / (self.epsilon * d_eff))
        )
        return min(1.0, self.edge_probability_scale * p)

    def edge_cap(self, approx_degree_value: int, p: float) -> int:
        """Algorithm 4's per-player cap on sent edges."""
        dp = max(1e-9, approx_degree_value * p)
        cap = (1.0 + 18.0 / dp * math.log(6.0 / self.delta)) * math.sqrt(
            3.0
        ) * dp
        return max(1, int(math.ceil(cap)))


def find_triangle_unrestricted(
    partition: EdgePartition,
    params: UnrestrictedParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
    shared: SharedRandomness | None = None,
    record_messages: bool = False,
) -> DetectionResult:
    """Run FindTriangle (Algorithm 6) on a partitioned input.

    One-sided error: a returned triangle always exists in the input.  On an
    epsilon-far input the paper guarantees detection with probability
    ``1 - delta`` (under the paper's literal sample sizes).
    Expected communication O~(k (nd)^{1/4} + k²).

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    ``shared`` injects a pre-built coin stream (the batched engine passes
    one draw-identical to ``SharedRandomness(seed)``); ``record_messages``
    retains the per-message transcript in ``details["transcript"]``.
    """
    params = params or UnrestrictedParams()
    players = player_factory(partition)
    shared = shared if shared is not None else SharedRandomness(seed)
    rt = CoordinatorRuntime(
        players, shared=shared,
        ledger=CommunicationLedger(record_messages=record_messages),
    )
    n = rt.n
    k = rt.k

    # ------------------------------------------------------------------
    # Average degree: given, or estimated (Corollary 3.22).
    # ------------------------------------------------------------------
    oblivious = params.known_average_degree is None
    if oblivious:
        estimated = approx_average_degree(
            rt, params=DegreeApproxParams(alpha=2.0, tau=params.delta / 6.0),
            tag=7,
        )
        d = max(estimated, 2.0 / max(1, n))
        widen = 2.0
    else:
        d = params.known_average_degree
        widen = 1.0
    if d <= 0:
        # An empty graph is triangle-free; nothing to look for.
        details = {"reason": "empty graph"}
        if record_messages:
            details["transcript"] = rt.ledger.records
        return DetectionResult(
            found=False, triangle=None, cost=rt.ledger.summary(),
            details=details,
        )

    thresholds = degree_thresholds(n, d, params.epsilon)
    widened = DegreeThresholds(
        d_low=thresholds.d_low / widen, d_high=thresholds.d_high * widen
    )
    bucket_range = widened.bucket_range(n)

    q = params.bucket_sample_budget(n, k)
    candidate_cap = params.candidate_budget(n)

    details: dict = {
        "average_degree_used": d,
        "oblivious": oblivious,
        "bucket_range": (bucket_range.start, bucket_range.stop),
        "samples_per_bucket": q,
        "candidate_cap": candidate_cap,
        "buckets_tried": 0,
        "candidates_examined": 0,
    }

    for bucket in bucket_range:
        details["buckets_tried"] += 1
        candidates = _get_full_candidates(
            rt, params, bucket, q, candidate_cap, tag=bucket
        )
        for ordinal, (v, degree_estimate) in enumerate(candidates):
            details["candidates_examined"] += 1
            triangle = _sample_edges_and_close(
                rt, params, v, degree_estimate,
                tag=bucket * 100_003 + ordinal,
            )
            if triangle is not None:
                details["found_at_bucket"] = bucket
                if record_messages:
                    details["transcript"] = rt.ledger.records
                return DetectionResult(
                    found=True,
                    triangle=triangle,
                    witness_edges=_triangle_edges(triangle),
                    cost=rt.ledger.summary(),
                    details=details,
                )
    if record_messages:
        details["transcript"] = rt.ledger.records
    return DetectionResult(
        found=False, triangle=None, cost=rt.ledger.summary(), details=details
    )


# ----------------------------------------------------------------------
# Algorithm 1: SampleUniformFromB~i
# ----------------------------------------------------------------------
def _sample_uniform_from_suspected(rt: CoordinatorRuntime, bucket: int,
                                   tag: int) -> int | None:
    """One unbiased uniform sample from B~_i, or None if B~_i is empty."""
    rank = rt.shared.permutation_rank(rt.n, tag=tag)
    with rt.scope("SampleUniformFromB~i"):
        firsts = rt.collect(
            compute=lambda p: p.first_vertex_under_rank(
                p.suspected_bucket(bucket, rt.k), rank
            ),
            response_bits=lambda v: (
                vertex_bits(rt.n) if v is not None else indicator_bits()
            ),
        )
        present = [v for v in firsts if v is not None]
        chosen = min(present, key=rank) if present else None
        rt.broadcast(
            vertex_bits(rt.n) if chosen is not None else indicator_bits()
        )
    return chosen


# ----------------------------------------------------------------------
# Algorithm 3: GetFullCandidates
# ----------------------------------------------------------------------
def _get_full_candidates(rt: CoordinatorRuntime, params: UnrestrictedParams,
                         bucket: int, q: int, candidate_cap: int,
                         tag: int) -> list[tuple[int, int]]:
    """Sample q vertices from B~_i, keep those whose approx degree fits B_i."""
    d_minus, d_plus = bucket_bounds(max(1, bucket))
    sqrt3 = math.sqrt(3.0)
    candidates: list[tuple[int, int]] = []
    seen: set[int] = set()
    with rt.scope("GetFullCandidates"):
        for attempt in range(q):
            if len(candidates) >= candidate_cap:
                break
            v = _sample_uniform_from_suspected(
                rt, bucket, tag=tag * 1_000_003 + attempt
            )
            if v is None:
                break  # B~_i empty for every player: bucket cannot help.
            if v in seen:
                continue
            seen.add(v)
            degree_estimate = _estimate_degree(
                rt, params, v, tag=tag * 900_001 + attempt
            )
            if d_minus / sqrt3 <= degree_estimate <= sqrt3 * d_plus:
                candidates.append((v, degree_estimate))
    return candidates


def _estimate_degree(rt: CoordinatorRuntime, params: UnrestrictedParams,
                     v: int, tag: int) -> int:
    if params.degree_mode == "nodup_exact":
        # §3.1: without duplication, players just send their local counts.
        with rt.scope("exact_degree_nodup"):
            counts = rt.collect(
                compute=lambda p: p.local_degree(v),
                response_bits=lambda c: elias_gamma_bits(c + 1),
            )
        return sum(counts)
    estimate = approx_degree(rt, v, params=params.degree_params, tag=tag)
    return estimate.value


# ----------------------------------------------------------------------
# Algorithms 4+5: SampleEdges and the closing round
# ----------------------------------------------------------------------
def _sample_edges_and_close(rt: CoordinatorRuntime,
                            params: UnrestrictedParams, v: int,
                            degree_estimate: int,
                            tag: int) -> tuple[int, int, int] | None:
    """Sample v's star, post it, and ask players for a closing edge."""
    n = rt.n
    p = params.edge_probability(n, degree_estimate)
    cap = params.edge_cap(degree_estimate, p)
    pred = rt.shared.bernoulli_predicate(p, tag=tag)

    with rt.scope("SampleEdges"):
        harvests = rt.collect(
            compute=lambda player: _capped_star(player, v, pred, cap),
            response_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
        )
        sampled_neighbors: set[int] = set()
        for harvest in harvests:
            for edge in harvest:
                far = edge[0] if edge[1] == v else edge[1]
                sampled_neighbors.add(far)
        if len(sampled_neighbors) < 2:
            return None
        star_mask = mask_of(sampled_neighbors)
        # Coordinator posts the star to all players (k copies in the
        # coordinator model; once on the blackboard under Theorem 3.23).
        post_bits = max(1, len(sampled_neighbors) * vertex_bits(n))
        if params.blackboard:
            rt.ledger.charge_downstream(0, post_bits, "post-star")
        else:
            rt.broadcast(post_bits, "post-star")

    with rt.scope("closing-round"):
        closings = rt.collect(
            compute=lambda player: _first_edge_within(player, star_mask),
            response_bits=lambda e: (
                edge_bits(n) if e is not None else indicator_bits()
            ),
        )
    for closing in closings:
        if closing is not None:
            u, w = closing
            a, b, c = sorted((v, u, w))
            return (a, b, c)
    return None


def _capped_star(player: Player, v: int, pred, cap: int) -> list[Edge]:
    """E_j ∩ ({v} × S) truncated to the cap, S given by the predicate."""
    hits = [
        canonical_edge(v, u)
        for u in iter_bits(player.local_neighbor_mask(v))
        if pred(u)
    ]
    return hits[:cap]


def _first_edge_within(player: Player, candidate_mask: int) -> Edge | None:
    """The player's first local edge with both endpoints in the mask.

    The mask harvest enumerates ascending, so element 0 is the minimum.
    """
    inside = player.edges_within_mask(candidate_mask)
    return inside[0] if inside else None


def _triangle_edges(triangle: tuple[int, int, int]) -> tuple[Edge, ...]:
    a, b, c = triangle
    return ((a, b), (a, c), (b, c))

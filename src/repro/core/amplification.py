"""Error amplification for one-sided testers.

Every protocol in this library has one-sided error: it never reports a
triangle on a triangle-free input, and misses an ε-far input with
probability at most δ.  Independent repetition with fresh public coins
therefore drives the miss probability to δ^r while preserving soundness —
the referee simply ORs the outcomes and keeps the first witness.

:func:`amplify` wraps any protocol runner; :func:`rounds_for_target`
computes the repetition count a target failure probability needs.  The
amplified run's cost is the sum of the rounds' costs (each round is a full
protocol execution; for simultaneous protocols the rounds can ride in one
combined message, which is how Algorithm 11 batches its instances — the
accounting is identical).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.comm.ledger import CommunicationLedger
from repro.core.results import DetectionResult
from repro.graphs.partition import EdgePartition

__all__ = ["rounds_for_target", "amplify"]

ProtocolFn = Callable[[EdgePartition, int], DetectionResult]


def rounds_for_target(single_round_delta: float, target_delta: float) -> int:
    """Smallest r with delta^r <= target (one-sided OR-amplification)."""
    if not 0.0 < single_round_delta < 1.0:
        raise ValueError(
            f"single-round delta must be in (0,1), got {single_round_delta}"
        )
    if not 0.0 < target_delta < 1.0:
        raise ValueError(
            f"target delta must be in (0,1), got {target_delta}"
        )
    if target_delta >= single_round_delta:
        return 1
    return math.ceil(
        math.log(target_delta) / math.log(single_round_delta)
    )


def amplify(protocol: ProtocolFn, partition: EdgePartition, rounds: int,
            seed: int = 0, stop_early: bool = True) -> DetectionResult:
    """Run ``protocol`` up to ``rounds`` times with fresh coins, OR results.

    ``stop_early`` returns on the first witness (cheaper in expectation);
    with ``stop_early=False`` all rounds run regardless, modelling the
    simultaneous batch where messages are sent before outcomes are known.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be positive, got {rounds}")
    ledger = CommunicationLedger()
    witness: DetectionResult | None = None
    executed = 0
    for round_index in range(rounds):
        result = protocol(partition, seed + 7907 * round_index)
        executed += 1
        # Fold the round's cost into the combined ledger.
        for player, bits in result.cost.bits_by_player.items():
            ledger.charge_upstream(player, bits, f"round-{round_index}")
        downstream = result.cost.downstream_bits
        if downstream:
            ledger.charge_downstream(0, downstream, f"round-{round_index}")
        if result.found and witness is None:
            witness = result
            if stop_early:
                break
    if witness is not None:
        return DetectionResult(
            found=True,
            triangle=witness.triangle,
            witness_edges=witness.witness_edges,
            cost=ledger.summary(),
            details={
                "amplified_rounds": executed,
                "requested_rounds": rounds,
            },
        )
    return DetectionResult(
        found=False,
        triangle=None,
        cost=ledger.summary(),
        details={
            "amplified_rounds": executed,
            "requested_rounds": rounds,
        },
    )

"""Referee-side message unions on the mask kernel.

Every simultaneous tester ends the same way: the referee unions the
players' edge messages and searches the union for a triangle.  Until PR 4
that union was a ``set[Edge]`` kept purely so the *iteration order* —
and therefore which of several triangles got reported — matched the
recorded baselines.  The rows-union referee here replaces it: messages
are folded into per-vertex adjacency masks (one ``|`` of a bit per edge)
and :func:`~repro.graphs.triangles.find_triangle_in_rows` scans them in
ascending order, so the reported triangle is a deterministic function of
the union itself, independent of message order, hashing, or Python
version.  The recorded ``DetectionResult`` baselines were re-pinned to
this order (see ``tests/test_protocol_engine.py``).

The historical set-union referee survives as
:func:`set_union_triangle_referee` — an executable specification used by
the differential tests, which prove both referees accept/reject
identically on hypothesis-generated message batches (they must: a
triangle exists in the union or it does not, regardless of which one a
referee reports first).

The H-freeness generalization gets the same pair:
:func:`rows_union_subgraph_referee` folds messages into rows and runs
the mask-native monomorphism engine
(:func:`repro.patterns.matcher.find_copy_in_rows`), and
:func:`set_union_subgraph_referee` preserves the historical
``set[Edge]`` union + networkx VF2 search (reference-only; needs the
optional ``reference`` extra).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.graphs.graph import Edge
from repro.graphs.triangles import (
    Triangle,
    find_triangle_among,
    find_triangle_in_rows,
)
from repro.obs import profile as obs_profile
from repro.patterns.catalog import SubgraphPattern
from repro.patterns.matcher import find_copy_in_rows

__all__ = [
    "union_rows",
    "rows_union_triangle_referee",
    "set_union_triangle_referee",
    "rows_union_subgraph_referee",
    "set_union_subgraph_referee",
]


def union_rows(messages: Iterable[Iterable[Edge]], n: int) -> list[int]:
    """Fold edge messages into per-vertex adjacency masks."""
    rows = [0] * n
    for message in messages:
        for u, v in message:
            rows[u] |= 1 << v
            rows[v] |= 1 << u
    return rows


def rows_union_triangle_referee(messages: Iterable[Iterable[Edge]],
                                n: int) -> Triangle | None:
    """The mask-native referee: union as rows, first ascending triangle."""
    with obs_profile.phase("referee"):
        return find_triangle_in_rows(union_rows(messages, n))


def set_union_triangle_referee(messages: Iterable[Iterable[Edge]]
                               ) -> Triangle | None:
    """The pre-PR 4 referee: ``set[Edge]`` union, hash-order search.

    Kept as the reference for differential tests; the triangle it
    reports may differ from the rows referee's (iteration order), but
    found/not-found is always identical.
    """
    union: set[Edge] = set()
    for message in messages:
        union.update(message)
    return find_triangle_among(union)


def rows_union_subgraph_referee(
    messages: Iterable[Iterable[Edge]], n: int, pattern: SubgraphPattern,
    matcher: Callable = find_copy_in_rows,
) -> tuple[int, ...] | None:
    """The mask-native H referee: union as rows, canonical-first copy.

    ``matcher`` is the seam reference runs swap for
    :func:`repro.patterns.reference.find_copy_in_rows_reference`.
    """
    with obs_profile.phase("referee"):
        return matcher(union_rows(messages, n), pattern)


def set_union_subgraph_referee(messages: Iterable[Iterable[Edge]],
                               pattern: SubgraphPattern
                               ) -> tuple[int, ...] | None:
    """The historical H referee: ``set[Edge]`` union + networkx VF2.

    Reference-only (the last set-based union in production code, now
    retired to this seam); the copy it reports is VF2's own, so
    differential tests compare found/not-found and validate copies.
    """
    from repro.patterns.reference import find_copy_among_reference

    union: set[Edge] = set()
    for message in messages:
        union.update(message)
    return find_copy_among_reference(union, pattern)

"""Section 3.1 building blocks, as charged coordinator-model procedures.

Each primitive of the property-testing world is implemented exactly as the
paper describes, against a :class:`~repro.comm.coordinator.CoordinatorRuntime`:

* :func:`query_edge` — O(k): one bit up per player, one bit down.
* :func:`random_incident_edge` — O(k log n): public permutation over the
  n-1 potential incident edges; each player reports its first local edge in
  that order; the coordinator takes the global first.  The permutation makes
  the choice uniform despite edge duplication (a naive "random local edge"
  would bias toward high-multiplicity edges).
* :func:`random_walk` — repeated random incident edges.
* :func:`random_edge` — O(k log n): same trick over the whole edge universe.
  (Not efficiently available in the classical query model.)
* :func:`collect_induced_subgraph` — O(k m log n): players send all their
  edges inside V'; the coordinator unions them.
* :func:`bfs_tree` — breadth-first search by repeatedly collecting the
  neighbourhoods of frontier vertices, O(n log n)-style.

Degree approximation (Theorem 3.1 / Lemma 3.2) lives in
:mod:`repro.core.degree_approx`.
"""

from __future__ import annotations

from typing import Iterable

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.encoding import edge_bits, indicator_bits, vertex_bits
from repro.graphs.graph import Edge, canonical_edge, iter_bits, mask_of

__all__ = [
    "query_edge",
    "random_incident_edge",
    "random_walk",
    "random_edge",
    "collect_induced_subgraph",
    "collect_neighbors",
    "bfs_tree",
    "edge_index",
]


def query_edge(rt: CoordinatorRuntime, u: int, v: int) -> bool:
    """Does {u, v} belong to the (union) input graph?  Cost O(k)."""
    with rt.scope("query_edge"):
        answers = rt.collect(
            compute=lambda p: p.has_edge(u, v),
            response_bits=lambda _: indicator_bits(),
        )
        present = any(answers)
        rt.broadcast(indicator_bits())
    return present


def random_incident_edge(rt: CoordinatorRuntime, v: int,
                         tag: int = 0) -> Edge | None:
    """A uniformly random edge of the input graph incident to v, or None.

    Uniformity holds despite duplication: the public permutation fixes a
    random order over potential incident edges, each player reports its
    locally-first edge, and the coordinator keeps the globally-first one —
    which is the first edge of E(v) in a uniform order, i.e. a uniform
    sample.  Cost O(k log n).
    """
    rank = rt.shared.permutation_rank(rt.n, tag=tag)
    with rt.scope("random_incident_edge"):
        candidates = rt.collect(
            compute=lambda p: p.first_incident_edge_under_rank(v, rank),
            response_bits=lambda e: edge_bits(rt.n) if e else indicator_bits(),
        )
        best: Edge | None = None
        best_rank = None
        for edge in candidates:
            if edge is None:
                continue
            far_endpoint = edge[0] if edge[1] == v else edge[1]
            r = rank(far_endpoint)
            if best_rank is None or r < best_rank:
                best, best_rank = edge, r
        rt.broadcast(edge_bits(rt.n) if best else indicator_bits())
    return best


def random_walk(rt: CoordinatorRuntime, start: int, steps: int,
                tag: int = 0) -> list[int]:
    """Simulate a ``steps``-step random walk from ``start``.

    Each step is one :func:`random_incident_edge`; the walk halts early at
    an isolated vertex.  Cost O(k · steps · log n).
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    path = [start]
    current = start
    for step in range(steps):
        edge = random_incident_edge(rt, current, tag=tag * 1_000_003 + step)
        if edge is None:
            break
        current = edge[0] if edge[1] == current else edge[1]
        path.append(current)
    return path


def edge_index(edge: Edge, n: int) -> int:
    """Canonical integer index of an edge in the n-vertex pair universe."""
    u, v = canonical_edge(*edge)
    return u * n + v


def random_edge(rt: CoordinatorRuntime, tag: int = 0) -> Edge | None:
    """A uniformly random edge of the input graph, or None if empty.

    Public permutation over the edge universe; players report local
    minima; the coordinator broadcasts the global minimum.  Cost O(k log n).
    """
    universe = rt.n * rt.n
    int_rank = rt.shared.permutation_rank(universe, tag=tag)

    def rank(edge: Edge) -> tuple:
        return int_rank(edge_index(edge, rt.n))

    with rt.scope("random_edge"):
        candidates = rt.collect(
            compute=lambda p: p.first_edge_under_rank(rank),
            response_bits=lambda e: edge_bits(rt.n) if e else indicator_bits(),
        )
        present = [edge for edge in candidates if edge is not None]
        best = min(present, key=rank) if present else None
        rt.broadcast(edge_bits(rt.n) if best else indicator_bits())
    return best


def collect_induced_subgraph(rt: CoordinatorRuntime,
                             vertices: Iterable[int],
                             cap_per_player: int | None = None) -> set[Edge]:
    """All input edges inside V', unioned at the coordinator.

    Cost O(k · m' · log n) where m' is the induced edge count (players pay
    for edges that exist, never for absent pairs — the advantage over the
    query model's |V'|² probes).  ``cap_per_player`` truncates oversized
    responses, as the capped protocol variants require.
    """
    vertex_mask = mask_of(vertices)
    with rt.scope("collect_induced_subgraph"):
        harvests = rt.collect(
            compute=lambda p: _capped(p.edges_within_mask(vertex_mask),
                                      cap_per_player),
            response_bits=lambda edges: max(
                1, len(edges) * edge_bits(rt.n)
            ),
        )
    union: set[Edge] = set()
    for harvest in harvests:
        union.update(harvest)
    return union


def collect_neighbors(rt: CoordinatorRuntime, v: int) -> set[int]:
    """All neighbours of v in the union graph.  Cost O(k·deg(v)·log n)."""
    with rt.scope("collect_neighbors"):
        harvests = rt.collect(
            compute=lambda p: list(iter_bits(p.local_neighbor_mask(v))),
            response_bits=lambda vs: max(1, len(vs) * vertex_bits(rt.n)),
        )
    union: set[int] = set()
    for harvest in harvests:
        union.update(harvest)
    return union


def bfs_tree(rt: CoordinatorRuntime, root: int,
             max_vertices: int | None = None) -> dict[int, int | None]:
    """BFS from ``root`` by posting frontier neighbourhoods (Section 3.1).

    Returns ``vertex -> parent`` (root maps to None).  ``max_vertices``
    bounds exploration.  Each explored vertex costs one
    :func:`collect_neighbors` round.
    """
    parent: dict[int, int | None] = {root: None}
    frontier = [root]
    budget = max_vertices if max_vertices is not None else rt.n
    while frontier and len(parent) < budget:
        next_frontier: list[int] = []
        for v in frontier:
            for u in sorted(collect_neighbors(rt, v)):
                if u not in parent and len(parent) < budget:
                    parent[u] = v
                    next_frontier.append(u)
        frontier = next_frontier
    return parent


def _capped(items: list, cap: int | None) -> list:
    if cap is None:
        return items
    return items[:cap]

"""Simultaneous protocol for low degrees d = O(sqrt(n)) (Algorithms 8, 10).

For sparse graphs the induced-sample approach has too much variance: a few
high-degree vertices may source every triangle, and hitting one of them
needs a Θ(n/d)-vertex sample whose induced subgraph is too big to learn in
the query model — but not in ours.  The protocol publicly samples

* ``S``: every vertex independently with probability ``p1 = min(c/d, 1)``
  (big enough to catch a high-degree triangle source), and
* ``R``: every vertex independently with probability ``p2 = c/sqrt(n)``
  (a birthday-paradox set),

and each player sends the edges of its input with one endpoint in R and the
other in R ∪ S.  If the triangles are concentrated on high-degree vertices,
some source lands in S and two of its triangle partners in R; if they are
spread out, R × R alone catches one (Theorem 3.26's variance computation).
Expected message load is O(sqrt(n) + d) edges, capped per player at
``q = 2c²(sqrt(n)+d)·(2/δ)``.

Communication O(k sqrt(n) log n); without duplication the total is
O(sqrt(n) log n) w.h.p. (Corollary 3.27).  Algorithm 10 (the oblivious
building block) is the same protocol with the cap removed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.encoding import edge_bits
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.core.referee import rows_union_triangle_referee
from repro.core.results import DetectionResult
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition

__all__ = ["SimLowParams", "find_triangle_sim_low"]


@dataclass(frozen=True)
class SimLowParams:
    """Knobs of Algorithm 8/10.

    The paper sets ``c = 8/(9δ)`` in the Chebyshev step; that is the
    default.  ``capped=False`` gives the Algorithm 10 variant.
    """

    epsilon: float = 0.1
    delta: float = 0.1
    c: float | None = None
    capped: bool = True
    known_average_degree: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {self.delta}")
        if self.c is not None and self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")

    @property
    def effective_c(self) -> float:
        return self.c if self.c is not None else 8.0 / (9.0 * self.delta)

    def p_dense_catcher(self, d: float) -> float:
        """p1 = min(c/d, 1): the S-sample probability."""
        if d <= 0:
            return 1.0
        return min(1.0, self.effective_c / d)

    def p_birthday(self, n: int) -> float:
        """p2 = c / sqrt(n): the R-sample probability."""
        if n == 0:
            return 0.0
        return min(1.0, self.effective_c / math.sqrt(n))

    def edge_cap(self, n: int, d: float) -> int:
        """q = 2 c² (sqrt(n) + d) · (2/δ)."""
        cap = 2.0 * self.effective_c ** 2 * (math.sqrt(n) + d) * (
            2.0 / self.delta
        )
        return max(1, int(math.ceil(cap)))


def find_triangle_sim_low(
    partition: EdgePartition,
    params: SimLowParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
    shared: SharedRandomness | None = None,
    record_messages: bool = False,
) -> DetectionResult:
    """Run the low-degree simultaneous tester on a partitioned input.

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    ``shared`` injects a pre-built coin stream (the batched engine passes
    one draw-identical to ``SharedRandomness(seed)``); ``record_messages``
    retains the per-message transcript in ``details["transcript"]`` —
    left off, nothing beyond aggregate counters is ever materialized.
    """
    params = params or SimLowParams()
    players = player_factory(partition)
    n = partition.graph.n
    d = (
        params.known_average_degree
        if params.known_average_degree is not None
        else partition.graph.average_degree()
    )
    shared = shared if shared is not None else SharedRandomness(seed)
    dense_catcher = shared.bernoulli_subset_mask(
        n, params.p_dense_catcher(d), tag=1
    )
    birthday = shared.bernoulli_subset_mask(n, params.p_birthday(n), tag=2)
    both = birthday | dense_catcher
    cap = params.edge_cap(n, d) if params.capped else None

    def message_fn(player: Player, _: SharedRandomness) -> list[Edge]:
        # Mask harvest: one row intersection per sampled vertex, emitted
        # ascending — the same order the set-based code sorted into.
        harvest = player.edges_touching_both_mask(birthday, both)
        if cap is not None:
            harvest = harvest[:cap]
        return harvest

    def referee_fn(messages: list[list[Edge]], _: SharedRandomness):
        # Rows-union referee: messages fold into per-vertex masks and
        # the first ascending triangle is reported — a deterministic
        # function of the union, independent of message or hash order.
        return rows_union_triangle_referee(messages, n)

    run = run_simultaneous(
        players,
        message_fn=message_fn,
        message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
        referee_fn=referee_fn,
        shared=shared,
        label="sim-low",
        record_messages=record_messages,
    )
    triangle = run.output
    return DetectionResult(
        found=triangle is not None,
        triangle=triangle,
        witness_edges=(
            ()
            if triangle is None
            else (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            )
        ),
        cost=run.ledger.summary(),
        details={
            "p_dense_catcher": params.p_dense_catcher(d),
            "p_birthday": params.p_birthday(n),
            "sample_sizes": (dense_catcher.bit_count(), birthday.bit_count()),
            "edge_cap": cap,
            "average_degree_used": d,
            **(
                {"transcript": run.ledger.records}
                if record_messages else {}
            ),
        },
    )

"""Shared result types for the triangle-detection protocols.

Every protocol in this package solves *triangle detection with one-sided
error*: if it reports a triangle, the triangle exists in the input graph
with certainty (the protocols only ever assemble edges that players hold).
Testing triangle-freeness follows: answer "far" iff a triangle was found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.ledger import CostSummary
from repro.graphs.graph import Edge

__all__ = ["Triangle", "DetectionResult"]

Triangle = tuple[int, int, int]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    found:
        Whether a triangle was detected.  One-sided: True implies the
        triangle genuinely exists; False on an epsilon-far input is the
        (boundable) error event.
    triangle:
        The detected triangle's vertices, ascending, or None.
    witness_edges:
        The three edges of the detected triangle, if any.
    cost:
        Communication accounting of the run.
    details:
        Protocol-specific diagnostics (bucket reached, samples drawn, ...).
    """

    found: bool
    triangle: Triangle | None
    cost: CostSummary
    witness_edges: tuple[Edge, ...] = ()
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.found and self.triangle is None:
            raise ValueError("found=True requires a witness triangle")
        if not self.found and self.triangle is not None:
            raise ValueError("found=False must not carry a triangle")

    @property
    def total_bits(self) -> int:
        return self.cost.total_bits

    def verdict_triangle_free(self) -> bool:
        """The property-testing answer: accept (triangle-free) iff no find."""
        return not self.found

"""H-freeness testing — the paper's stated future-work direction.

Section 5 suggests "generalizing our techniques for detecting a wider
class of subgraphs".  The induced-sample simultaneous tester (Algorithm 9)
generalizes directly: if the input is ε-far from H-free it contains
Ω(ε·n·d / e_H) edge-disjoint copies of H (each removal kills at most one
disjoint copy), a public Bernoulli(p) vertex sample catches a fixed copy
with probability p^{h}, and players send only the edges of their inputs
inside the sample — the same existing-edges-only pricing that makes the
triangle version cheaper than its query-model ancestor.

Choosing ``p = c · (2 e_H / (ε n d))^{1/h}`` makes the expected number of
caught disjoint copies c^h = Θ(1); the referee searches the unioned sample
for a monomorphic copy of H.  For H = K₃ this specializes to Algorithm 9's
parameters up to constants.

This is an *extension*, not a paper result: no optimality is claimed, and
the variance analysis that Theorem 3.26 does for triangles is replaced by
repetition (the ``rounds`` parameter runs independent samples and ORs the
one-sided outcomes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.comm.encoding import edge_bits
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.graphs.graph import Edge, Graph
from repro.graphs.partition import EdgePartition

__all__ = [
    "SubgraphPattern",
    "TRIANGLE",
    "FOUR_CLIQUE",
    "FOUR_CYCLE",
    "FIVE_CYCLE",
    "SubgraphParams",
    "find_copy_among",
    "find_subgraph_simultaneous",
    "SubgraphDetectionResult",
    "planted_disjoint_subgraphs",
    "PlantedSubgraphInstance",
]


@dataclass(frozen=True)
class SubgraphPattern:
    """A small pattern graph H on vertices 0 .. h-1."""

    name: str
    num_vertices: int
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if u == v or not (0 <= u < self.num_vertices
                              and 0 <= v < self.num_vertices):
                raise ValueError(
                    f"invalid pattern edge ({u}, {v}) for h={self.num_vertices}"
                )
        if self.num_vertices < 2 or not self.edges:
            raise ValueError("pattern must have >= 2 vertices and an edge")

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def to_networkx(self):
        import networkx as nx

        pattern = nx.Graph()
        pattern.add_nodes_from(range(self.num_vertices))
        pattern.add_edges_from(self.edges)
        return pattern


TRIANGLE = SubgraphPattern("K3", 3, ((0, 1), (0, 2), (1, 2)))
FOUR_CLIQUE = SubgraphPattern(
    "K4", 4, ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3))
)
FOUR_CYCLE = SubgraphPattern("C4", 4, ((0, 1), (1, 2), (2, 3), (0, 3)))
FIVE_CYCLE = SubgraphPattern(
    "C5", 5, ((0, 1), (1, 2), (2, 3), (3, 4), (0, 4))
)


def find_copy_among(edges: Iterable[Edge], pattern: SubgraphPattern
                    ) -> tuple[int, ...] | None:
    """A monomorphic copy of H in a plain edge bag, or None.

    Returns the image vertices in pattern-vertex order.  Uses networkx's
    VF2 matcher; fine for the small samples referees actually see.
    """
    import networkx as nx
    from networkx.algorithms import isomorphism

    host = nx.Graph()
    host.add_edges_from(edges)
    if host.number_of_edges() < pattern.num_edges:
        return None
    matcher = isomorphism.GraphMatcher(host, pattern.to_networkx())
    for mapping in matcher.subgraph_monomorphisms_iter():
        inverse = {pattern_v: host_v for host_v, pattern_v in mapping.items()}
        return tuple(inverse[i] for i in range(pattern.num_vertices))
    return None


@dataclass(frozen=True)
class SubgraphParams:
    """Knobs of the generalized induced-sample tester."""

    epsilon: float = 0.2
    c: float = 1.5
    rounds: int = 3
    """Independent sample repetitions (ORed; still one simultaneous shot —
    all rounds ride in the same single message per player)."""
    known_average_degree: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if self.c <= 0 or self.rounds < 1:
            raise ValueError("c must be positive and rounds >= 1")

    def sample_probability(self, n: int, d: float,
                           pattern: SubgraphPattern) -> float:
        """p = c (2 e_H / (ε n d))^{1/h}: Θ(1) disjoint copies expected."""
        if n == 0 or d <= 0:
            return 1.0
        base = 2.0 * pattern.num_edges / (self.epsilon * n * d)
        return min(1.0, self.c * base ** (1.0 / pattern.num_vertices))


@dataclass(frozen=True)
class SubgraphDetectionResult:
    """Outcome of one H-detection run (one-sided, like DetectionResult)."""

    found: bool
    copy: tuple[int, ...] | None
    """Image of H's vertices (pattern order), or None."""
    witness_edges: tuple[Edge, ...]
    cost: object
    details: dict

    @property
    def total_bits(self) -> int:
        return self.cost.total_bits

    def verdict_h_free(self) -> bool:
        return not self.found


def find_subgraph_simultaneous(
    partition: EdgePartition,
    pattern: SubgraphPattern,
    params: SubgraphParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
) -> SubgraphDetectionResult:
    """One-shot simultaneous H-detection with one-sided error.

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    """
    params = params or SubgraphParams()
    players = player_factory(partition)
    n = partition.graph.n
    d = (
        params.known_average_degree
        if params.known_average_degree is not None
        else partition.graph.average_degree()
    )
    shared = SharedRandomness(seed)
    p = params.sample_probability(n, d, pattern)
    samples = [
        shared.bernoulli_subset_mask(n, p, tag=100 + r)
        for r in range(params.rounds)
    ]

    def message_fn(player: Player, _: SharedRandomness
                   ) -> list[list[Edge]]:
        return [player.edges_within_mask(sample) for sample in samples]

    def message_bits(message: list[list[Edge]]) -> int:
        return max(
            1,
            sum(len(edges) * edge_bits(n) for edges in message),
        )

    def referee_fn(messages: list[list[list[Edge]]],
                   _: SharedRandomness):
        for round_index in range(params.rounds):
            union: set[Edge] = set()
            for message in messages:
                union.update(message[round_index])
            copy = find_copy_among(union, pattern)
            if copy is not None:
                return copy, round_index
        return None, None

    run = run_simultaneous(
        players, message_fn=message_fn, message_bits=message_bits,
        referee_fn=referee_fn, shared=shared,
        label=f"sim-{pattern.name}",
    )
    copy, winning_round = run.output
    found = copy is not None
    return SubgraphDetectionResult(
        found=found,
        copy=copy,
        witness_edges=(
            tuple(
                tuple(sorted((copy[u], copy[v]))) for u, v in pattern.edges
            )
            if found
            else ()
        ),
        cost=run.ledger.summary(),
        details={
            "pattern": pattern.name,
            "sample_probability": p,
            "rounds": params.rounds,
            "winning_round": winning_round,
        },
    )


@dataclass(frozen=True)
class PlantedSubgraphInstance:
    """An instance far from H-freeness by construction."""

    graph: Graph
    pattern: SubgraphPattern
    planted_copies: tuple[tuple[int, ...], ...]
    epsilon_certified: float


def planted_disjoint_subgraphs(n: int, pattern: SubgraphPattern,
                               copies: int, seed: int = 0,
                               background_degree: float = 0.0
                               ) -> PlantedSubgraphInstance:
    """Plant vertex-disjoint copies of H (plus optional background).

    Vertex-disjoint copies are edge-disjoint, so destroying all of them
    requires >= ``copies`` edge removals: the instance is certifiably
    ``copies / |E|``-far from H-freeness.
    """
    h = pattern.num_vertices
    if copies * h > n:
        raise ValueError(
            f"cannot plant {copies} disjoint {pattern.name} copies on "
            f"{n} vertices"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    from repro.graphs.generators import gnd

    graph = (
        gnd(n, background_degree, seed=seed + 1)
        if background_degree > 0
        else Graph(n)
    )
    planted: list[tuple[int, ...]] = []
    for index in range(copies):
        image = tuple(vertices[index * h: (index + 1) * h])
        for u, v in pattern.edges:
            graph.add_edge(image[u], image[v])
        planted.append(image)
    return PlantedSubgraphInstance(
        graph=graph,
        pattern=pattern,
        planted_copies=tuple(planted),
        epsilon_certified=copies / max(1, graph.num_edges),
    )

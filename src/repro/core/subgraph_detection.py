"""H-freeness testing — the paper's stated future-work direction.

Section 5 suggests "generalizing our techniques for detecting a wider
class of subgraphs".  The induced-sample simultaneous tester (Algorithm 9)
generalizes directly: if the input is ε-far from H-free it contains
Ω(ε·n·d / e_H) edge-disjoint copies of H (each removal kills at most one
disjoint copy), a public Bernoulli(p) vertex sample catches a fixed copy
with probability p^{h}, and players send only the edges of their inputs
inside the sample — the same existing-edges-only pricing that makes the
triangle version cheaper than its query-model ancestor.

Choosing ``p = c · (2 e_H / (ε n d))^{1/h}`` makes the expected number of
caught disjoint copies c^h = Θ(1); the referee searches the unioned sample
for a monomorphic copy of H.  For H = K₃ this specializes to Algorithm 9's
parameters up to constants.

This is an *extension*, not a paper result: no optimality is claimed, and
the variance analysis that Theorem 3.26 does for triangles is replaced by
repetition (the ``rounds`` parameter runs independent samples and ORs the
one-sided outcomes).

The pattern machinery lives in :mod:`repro.patterns` — the connected
pattern catalog, the mask-native monomorphism engine, and the planted
scenario generators are re-exported here for compatibility.  The referee
is rows-native: per-round messages fold into per-vertex adjacency masks
(:func:`repro.core.referee.union_rows`) and
:func:`repro.patterns.matcher.find_copy_in_rows` walks them, so the
reported copy is canonical-first — a deterministic function of the union
itself.  The historical ``set[Edge]`` union + networkx VF2 search is
preserved as :func:`repro.core.referee.set_union_subgraph_referee`
behind the ``matcher=`` seam (pass
:func:`repro.patterns.reference.find_copy_in_rows_reference` for a
VF2-refereed run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.comm.encoding import edge_bits
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.core.referee import union_rows
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition
from repro.patterns.catalog import (
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    TRIANGLE,
    SubgraphPattern,
)
from repro.patterns.matcher import find_copy_among, find_copy_in_rows
from repro.patterns.plant import (
    PlantedSubgraphInstance,
    planted_disjoint_subgraphs,
)

__all__ = [
    "SubgraphPattern",
    "TRIANGLE",
    "FOUR_CLIQUE",
    "FOUR_CYCLE",
    "FIVE_CYCLE",
    "SubgraphParams",
    "find_copy_among",
    "find_subgraph_simultaneous",
    "SubgraphDetectionResult",
    "planted_disjoint_subgraphs",
    "PlantedSubgraphInstance",
]


@dataclass(frozen=True)
class SubgraphParams:
    """Knobs of the generalized induced-sample tester."""

    epsilon: float = 0.2
    c: float = 1.5
    rounds: int = 3
    """Independent sample repetitions (ORed; still one simultaneous shot —
    all rounds ride in the same single message per player)."""
    known_average_degree: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if self.c <= 0 or self.rounds < 1:
            raise ValueError("c must be positive and rounds >= 1")

    def sample_probability(self, n: int, d: float,
                           pattern: SubgraphPattern) -> float:
        """p = c (2 e_H / (ε n d))^{1/h}: Θ(1) disjoint copies expected."""
        if n == 0 or d <= 0:
            return 1.0
        base = 2.0 * pattern.num_edges / (self.epsilon * n * d)
        return min(1.0, self.c * base ** (1.0 / pattern.num_vertices))


@dataclass(frozen=True)
class SubgraphDetectionResult:
    """Outcome of one H-detection run (one-sided, like DetectionResult)."""

    found: bool
    copy: tuple[int, ...] | None
    """Image of H's vertices (pattern order), or None."""
    witness_edges: tuple[Edge, ...]
    cost: object
    details: dict

    @property
    def total_bits(self) -> int:
        return self.cost.total_bits

    def verdict_h_free(self) -> bool:
        return not self.found


def find_subgraph_simultaneous(
    partition: EdgePartition,
    pattern: SubgraphPattern,
    params: SubgraphParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
    matcher: Callable = find_copy_in_rows,
    shared: SharedRandomness | None = None,
    record_messages: bool = False,
) -> SubgraphDetectionResult:
    """One-shot simultaneous H-detection with one-sided error.

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    ``matcher`` swaps the referee's H-copy search (the rows-native
    canonical-first engine by default;
    :func:`repro.patterns.reference.find_copy_in_rows_reference` runs
    the preserved networkx VF2 matcher on the same rows union).
    ``shared`` injects a pre-built coin stream (the batched engine passes
    one draw-identical to ``SharedRandomness(seed)``); ``record_messages``
    retains the per-message transcript in ``details["transcript"]``.
    """
    params = params or SubgraphParams()
    players = player_factory(partition)
    n = partition.graph.n
    d = (
        params.known_average_degree
        if params.known_average_degree is not None
        else partition.graph.average_degree()
    )
    shared = shared if shared is not None else SharedRandomness(seed)
    p = params.sample_probability(n, d, pattern)
    samples = [
        shared.bernoulli_subset_mask(n, p, tag=100 + r)
        for r in range(params.rounds)
    ]

    def message_fn(player: Player, _: SharedRandomness
                   ) -> list[list[Edge]]:
        return [player.edges_within_mask(sample) for sample in samples]

    def message_bits(message: list[list[Edge]]) -> int:
        return max(
            1,
            sum(len(edges) * edge_bits(n) for edges in message),
        )

    def referee_fn(messages: list[list[list[Edge]]],
                   _: SharedRandomness):
        for round_index in range(params.rounds):
            rows = union_rows(
                (message[round_index] for message in messages), n
            )
            copy = matcher(rows, pattern)
            if copy is not None:
                return copy, round_index
        return None, None

    run = run_simultaneous(
        players, message_fn=message_fn, message_bits=message_bits,
        referee_fn=referee_fn, shared=shared,
        label=f"sim-{pattern.name}",
        record_messages=record_messages,
    )
    copy, winning_round = run.output
    found = copy is not None
    return SubgraphDetectionResult(
        found=found,
        copy=copy,
        witness_edges=(
            tuple(
                tuple(sorted((copy[u], copy[v]))) for u, v in pattern.edges
            )
            if found
            else ()
        ),
        cost=run.ledger.summary(),
        details={
            "pattern": pattern.name,
            "sample_probability": p,
            "rounds": params.rounds,
            "winning_round": winning_round,
            **(
                {"transcript": run.ledger.records}
                if record_messages else {}
            ),
        },
    )

"""Simultaneous protocol for high degrees d = Ω(sqrt(n)) (Algorithms 7, 9).

The [3] dense tester, implemented where it is *cheaper* than in the query
model: the referee needs the subgraph induced by a public random vertex set
``S`` of size ``Θ((n²/(εd))^{1/3})``, and instead of probing all |S|² pairs,
each player simply sends the edges of its input inside S — paying only for
edges that exist.  If the input is ε-far from triangle-free, the induced
subgraph contains a triangle with constant probability, and the expected
number of edges inside S² is small enough that a per-player cap of
``l = (|S|²/n²)·(4/δ)·nd`` edges (Theorem 3.24's Markov argument) is
exceeded only with probability δ/2.

Two sampling variants, both provided:

* Algorithm 7 — ``S`` is a uniform ``|S|``-subset, players cap at ``l``;
* Algorithm 9 (the degree-oblivious building block) — each vertex enters
  ``S`` independently with probability ``|S|/n`` and the cap is removed.

Communication O(k (nd)^{1/3} log n); with no duplication the total is
O((nd)^{1/3} log n) with probability 1-δ (Corollary 3.25).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.encoding import edge_bits
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.core.referee import rows_union_triangle_referee
from repro.core.results import DetectionResult
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition

__all__ = ["SimHighParams", "find_triangle_sim_high"]


@dataclass(frozen=True)
class SimHighParams:
    """Knobs of Algorithm 7/9.

    ``c`` is the paper's "sufficiently large" constant scaling |S|;
    ``capped=False`` selects the Algorithm 9 variant (Bernoulli sampling,
    no per-player cap), which the degree-oblivious protocol builds on.
    """

    epsilon: float = 0.1
    delta: float = 0.1
    c: float = 2.0
    capped: bool = True
    bernoulli_sampling: bool = False
    known_average_degree: float | None = None
    """The model gives d to the players (Theorem 3.24); None means "take
    the true average degree of the input", mimicking that promise."""

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {self.delta}")
        if self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")

    def sample_size(self, n: int, d: float) -> int:
        """|S| = c · (n² / (ε d))^{1/3}, clamped to n."""
        if d <= 0:
            return 0
        raw = self.c * (n * n / (self.epsilon * d)) ** (1.0 / 3.0)
        return min(n, max(1, int(math.ceil(raw))))

    def edge_cap(self, n: int, d: float, sample_size: int) -> int:
        """l = (|S|²/n²) · (4/δ) · nd, Theorem 3.24's Markov cap."""
        if n == 0:
            return 1
        cap = (sample_size ** 2 / n ** 2) * (4.0 / self.delta) * n * d
        return max(1, int(math.ceil(cap)))


def find_triangle_sim_high(
    partition: EdgePartition,
    params: SimHighParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
    shared: SharedRandomness | None = None,
    record_messages: bool = False,
) -> DetectionResult:
    """Run the high-degree simultaneous tester on a partitioned input.

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    ``shared`` injects a pre-built coin stream (the batched engine passes
    one draw-identical to ``SharedRandomness(seed)``); ``record_messages``
    retains the per-message transcript in ``details["transcript"]``.
    """
    params = params or SimHighParams()
    players = player_factory(partition)
    n = partition.graph.n
    d = (
        params.known_average_degree
        if params.known_average_degree is not None
        else partition.graph.average_degree()
    )
    shared = shared if shared is not None else SharedRandomness(seed)
    size = params.sample_size(n, d)
    if params.bernoulli_sampling:
        sample = shared.bernoulli_subset_mask(
            n, min(1.0, size / max(1, n)), tag=1
        )
    else:
        sample = shared.sample_without_replacement_mask(n, size, tag=1)
    cap = params.edge_cap(n, d, size) if params.capped else None

    def message_fn(player: Player, _: SharedRandomness) -> list[Edge]:
        # Induced-subgraph harvest as mask intersections, ascending.
        harvest = player.edges_within_mask(sample)
        if cap is not None:
            harvest = harvest[:cap]
        return harvest

    def referee_fn(messages: list[list[Edge]], _: SharedRandomness):
        # Rows-union referee: deterministic in the union, not in any
        # message or hash iteration order.
        return rows_union_triangle_referee(messages, n)

    run = run_simultaneous(
        players,
        message_fn=message_fn,
        message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
        referee_fn=referee_fn,
        shared=shared,
        label="sim-high",
        record_messages=record_messages,
    )
    triangle = run.output
    return DetectionResult(
        found=triangle is not None,
        triangle=triangle,
        witness_edges=(
            ()
            if triangle is None
            else (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            )
        ),
        cost=run.ledger.summary(),
        details={
            "sample_size": size,
            "edge_cap": cap,
            "average_degree_used": d,
            **(
                {"transcript": run.ledger.records}
                if record_messages else {}
            ),
        },
    )

"""Degree-oblivious simultaneous protocol (Section 3.4.3, Algorithm 11).

Simultaneity forbids first estimating the density and then picking a
protocol, so every player hedges: from its *local* average degree
``d̄_j = 2|E_j|/n`` it knows that if it is "relevant" (holds at least an
ε/(4k) fraction of the density), the global d lies in
``D_j = [d̄_j, (4k/ε)·d̄_j]``.  A public exponential scale {2^i} of density
guesses is fixed in advance; player j participates in the O(log k) guesses
falling in D_j, running per guess the high-degree instance (Algorithm 9)
when the guess is at least sqrt(n) and the low-degree instance
(Algorithm 10) otherwise, each under a per-instance cap keyed to d̄_j
(Lemmas 3.30/3.31 show the caps never truncate the *correct* instance,
w.h.p.).  The referee unions each instance's messages separately and
checks each for a triangle.

Eliminating the irrelevant players keeps the graph (ε/2)-far, so the
correct guess's instance is a faithful run of the corresponding
degree-aware protocol on an (ε/2)-far input — correctness follows, and
per-player cost is O~(max(sqrt(n), (n d̄_j)^{1/3})), giving Theorem 3.32's
O~(k sqrt(n)) / O~(k (nd)^{1/3}) totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.encoding import edge_bits, elias_gamma_bits
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.core.referee import rows_union_triangle_referee
from repro.core.results import DetectionResult
from repro.graphs.buckets import log2n
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition

__all__ = ["ObliviousParams", "find_triangle_sim_oblivious"]

InstanceMessage = dict[int, list[Edge]]


@dataclass(frozen=True)
class ObliviousParams:
    """Knobs of Algorithm 11."""

    epsilon: float = 0.1
    delta: float = 0.1
    c: float = 2.0
    """Sampling constant of the underlying Alg 9/10 instances."""
    cap_scale: float = 4.0
    """Multiplier of the per-instance caps (paper: O(log n log(k log n)))."""
    capped: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0,1], got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {self.delta}")

    def guess_range_for_player(self, local_average_degree: float,
                               k: int, n: int) -> range:
        """Indices i with d̄_j <= 2^i <= (4k/ε)·d̄_j, clipped to [0, log n]."""
        if local_average_degree <= 0:
            return range(0, 0)
        low = max(0, math.floor(math.log2(max(1.0, local_average_degree))))
        high = math.ceil(
            math.log2(4.0 * k / self.epsilon * local_average_degree)
        )
        top = math.ceil(math.log2(max(2, n)))
        return range(low, min(high, top) + 1)

    def polylog_cap_factor(self, n: int, k: int) -> float:
        """The O(log n · log(k log n)) cap inflation of Lemmas 3.30/3.31."""
        return (
            self.cap_scale
            * log2n(n)
            * math.log2(k * log2n(n) + 2)
        )

    def cap_high(self, n: int, local_average_degree: float, k: int) -> int:
        """Per-instance cap for high-degree guesses: O~((n d̄_j)^{1/3})."""
        base = (n * max(1.0, local_average_degree)) ** (1.0 / 3.0)
        return max(1, int(math.ceil(base * self.polylog_cap_factor(n, k))))

    def cap_low(self, n: int, k: int) -> int:
        """Per-instance cap for low-degree guesses: O~(sqrt(n))."""
        return max(
            1,
            int(math.ceil(math.sqrt(n) * self.polylog_cap_factor(n, k))),
        )


def find_triangle_sim_oblivious(
    partition: EdgePartition,
    params: ObliviousParams | None = None,
    seed: int = 0,
    *,
    player_factory=make_players,
    shared: SharedRandomness | None = None,
    record_messages: bool = False,
) -> DetectionResult:
    """Run Algorithm 11: simultaneous triangle detection, d unknown.

    ``player_factory`` swaps the player backend (mask-native by default;
    :func:`repro.comm.reference.make_set_players` for differential runs).
    ``shared`` injects a pre-built coin stream (the batched engine passes
    one draw-identical to ``SharedRandomness(seed)``); ``record_messages``
    retains the per-message transcript in ``details["transcript"]``.
    """
    params = params or ObliviousParams()
    players = player_factory(partition)
    n = partition.graph.n
    k = len(players)
    shared = shared if shared is not None else SharedRandomness(seed)
    sqrt_n = math.sqrt(n)

    # Public per-guess sample masks, agreed through the shared coins.  R
    # (the birthday set) is shared across all low-degree instances, as
    # the paper notes the players may do.
    top_guess = math.ceil(math.log2(max(2, n)))
    high_samples: dict[int, int] = {}
    low_samples: dict[int, int] = {}
    birthday = shared.bernoulli_subset_mask(
        n, min(1.0, params.c / max(1.0, sqrt_n)), tag=10_000
    )
    for i in range(top_guess + 1):
        guess = float(2 ** i)
        if guess >= sqrt_n:
            size = min(
                n,
                max(1, int(math.ceil(
                    params.c * (n * n / (params.epsilon * guess)) ** (1 / 3)
                ))),
            )
            high_samples[i] = shared.bernoulli_subset_mask(
                n, min(1.0, size / max(1, n)), tag=20_000 + i
            )
        else:
            low_samples[i] = shared.bernoulli_subset_mask(
                n, min(1.0, params.c / guess), tag=30_000 + i
            )
    # R ∪ S per low instance, computed once instead of per player.
    low_unions = {i: birthday | mask for i, mask in low_samples.items()}

    def message_fn(player: Player, _: SharedRandomness) -> InstanceMessage:
        local_average = player.average_local_degree()
        message: InstanceMessage = {}
        for i in params.guess_range_for_player(local_average, k, n):
            guess = float(2 ** i)
            if guess >= sqrt_n:
                harvest = player.edges_within_mask(high_samples[i])
                cap = (
                    params.cap_high(n, local_average, k)
                    if params.capped else None
                )
            else:
                harvest = player.edges_touching_both_mask(
                    birthday, low_unions[i]
                )
                cap = params.cap_low(n, k) if params.capped else None
            if cap is not None:
                harvest = harvest[:cap]
            message[i] = harvest
        return message

    def message_bits(message: InstanceMessage) -> int:
        if not message:
            return 1
        total = 0
        for i, edges in message.items():
            total += elias_gamma_bits(i + 1)
            total += max(1, len(edges) * edge_bits(n))
        return total

    def referee_fn(messages: list[InstanceMessage], _: SharedRandomness):
        # Per-instance rows unions: each guess's messages fold into
        # per-vertex masks, searched in ascending guess order.
        instances: dict[int, list[list[Edge]]] = {}
        for message in messages:
            for i, edges in message.items():
                instances.setdefault(i, []).append(edges)
        for i in sorted(instances):
            triangle = rows_union_triangle_referee(instances[i], n)
            if triangle is not None:
                return triangle, i
        return None, None

    run = run_simultaneous(
        players,
        message_fn=message_fn,
        message_bits=message_bits,
        referee_fn=referee_fn,
        shared=shared,
        label="sim-oblivious",
        record_messages=record_messages,
    )
    triangle, winning_guess = run.output
    return DetectionResult(
        found=triangle is not None,
        triangle=triangle,
        witness_edges=(
            ()
            if triangle is None
            else (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            )
        ),
        cost=run.ledger.summary(),
        details={
            "winning_guess_index": winning_guess,
            "num_guesses": top_guess + 1,
            "birthday_sample_size": birthday.bit_count(),
            **(
                {"transcript": run.ledger.records}
                if record_messages else {}
            ),
        },
    )

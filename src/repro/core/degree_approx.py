"""Degree approximation under edge duplication (Theorem 3.1, Lemma 3.2).

With duplication, the exact degree of a vertex is as hard as set
disjointness (Ω(k·d(v)) bits), but a constant-factor approximation is cheap.
The paper's two-phase scheme, implemented here verbatim:

**Phase 1 (MSB round).**  Each player sends the index of the most
significant bit of its local degree ``d_j(v)`` — O(log log d) bits.  The
coordinator forms ``d' = Σ_j 2^(I_j + 1)``, which satisfies
``d'/(2k) <= d(v) <= d'`` (the union can only be over-counted, and each
summand is a 2-approximation of ``d_j(v)``).

**Phase 2 (geometric guess-down).**  Starting from ``d''= d'`` and shrinking
by ``sqrt(alpha)`` per round, the players run public sampling experiments:
a public Bernoulli(1/d'') predicate over potential neighbours; each player
answers one bit — "does the sample hit one of my edges at v?".  The OR over
players is exactly "does the sample hit E(v)?", whose success probability is
``E(r) = 1 - (1 - 1/d'')^{d(v)}``.  While the guess is still far above d(v)
this is well below the stop threshold ``F(r)/c`` (with
``F(r) = 1 - (1 - 1/d'')^{d''}``), and once the guess falls below d(v) it is
well above, so the first round that clears the threshold pins d(v) to a
constant factor.  Only O(log k) rounds are needed because phase 1 already
bracketed d(v) within a 2k factor.

The same machinery estimates the number of *distinct* edges ``|E|`` (and
hence the average degree) by sampling over the edge universe instead of the
neighbour universe — the paper's closing remark that the procedure "solves
the more general problem of approximating the number of distinct elements
in a set".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.encoding import elias_gamma_bits, indicator_bits
from repro.core.building_blocks import edge_index

__all__ = [
    "DegreeApproxParams",
    "DegreeEstimate",
    "approx_degree",
    "approx_degree_no_duplication",
    "approx_distinct_edges",
    "approx_average_degree",
]


@dataclass(frozen=True)
class DegreeApproxParams:
    """Tuning knobs of the Theorem 3.1 estimator.

    ``alpha`` is the target approximation factor (output within
    ``[d/alpha, alpha*d]`` with probability ``1 - tau``); ``threshold_c``
    is the paper's constant c dividing F(r); ``experiments_scale`` scales
    the per-round experiment count m(r) = Θ(log log k · log 1/τ).
    """

    alpha: float = 3.0
    tau: float = 0.05
    threshold_c: float = 1.4
    experiments_scale: float = 16.0
    experiments_override: int | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1, got {self.alpha}")
        if not 0.0 < self.tau < 1.0:
            raise ValueError(f"tau must be in (0,1), got {self.tau}")
        if self.threshold_c <= 1.0:
            raise ValueError(
                f"threshold_c must exceed 1, got {self.threshold_c}"
            )

    def experiments_per_round(self, k: int) -> int:
        """m(r): enough experiments for a union bound over O(log k) rounds."""
        if self.experiments_override is not None:
            return self.experiments_override
        loglog_k = math.log2(math.log2(max(2, k)) + 2)
        return max(
            24,
            int(math.ceil(
                self.experiments_scale * math.log(3.0 / self.tau)
                * max(1.0, loglog_k)
            )),
        )


@dataclass(frozen=True)
class DegreeEstimate:
    """Outcome of one approximation run."""

    value: int
    rounds: int
    experiments: int
    msb_bracket: int
    """Phase-1 d' (the coarse 2k-approximation the guess-down starts from)."""


def _success_probability_if_correct(guess: float) -> float:
    """F(r) = 1 - (1 - 1/d'')^{d''}: expected success rate if d(v) = d''."""
    if guess <= 1.0:
        return 1.0
    return 1.0 - (1.0 - 1.0 / guess) ** guess


def approx_degree(rt: CoordinatorRuntime, v: int,
                  params: DegreeApproxParams | None = None,
                  tag: int = 0) -> DegreeEstimate:
    """Theorem 3.1: alpha-approximate deg(v) under duplication.

    Communication: O(k log log d(v) + k log k log log k log(1/tau)).
    """
    params = params or DegreeApproxParams()
    return _two_phase_estimate(
        rt,
        msb_of=lambda player: player.degree_msb_index(v),
        hit_test=lambda player, pred: player.any_incident_neighbor_in(v, pred),
        params=params,
        tag=tag,
        label="approx_degree",
    )


def approx_distinct_edges(rt: CoordinatorRuntime,
                          params: DegreeApproxParams | None = None,
                          tag: int = 0) -> DegreeEstimate:
    """Distinct-elements generalization: alpha-approximate |E|.

    Identical structure, sampling over the public edge-index universe.
    """
    params = params or DegreeApproxParams()
    n = rt.n

    def msb_of(player):
        if player.num_edges == 0:
            return None
        return player.num_edges.bit_length() - 1

    def hit_test(player, pred):
        return player.any_edge_index_in(
            lambda edge: edge_index(edge, n), pred
        )

    return _two_phase_estimate(
        rt, msb_of=msb_of, hit_test=hit_test, params=params, tag=tag,
        label="approx_distinct_edges",
    )


def approx_average_degree(rt: CoordinatorRuntime,
                          params: DegreeApproxParams | None = None,
                          tag: int = 0) -> float:
    """Approximate d = 2|E|/n via :func:`approx_distinct_edges`.

    This is what Corollary 3.22 uses to run the unrestricted protocol
    without advance knowledge of the average degree.
    """
    estimate = approx_distinct_edges(rt, params=params, tag=tag)
    return 2.0 * estimate.value / max(1, rt.n)


def _two_phase_estimate(rt: CoordinatorRuntime, msb_of, hit_test,
                        params: DegreeApproxParams, tag: int,
                        label: str) -> DegreeEstimate:
    k = rt.k
    # ------------------------------------------------------------------
    # Phase 1: MSB indices -> coarse bracket d' with d'/(2k) <= true <= d'.
    # ------------------------------------------------------------------
    with rt.scope(f"{label}/msb"):
        msb_indices = rt.collect(
            compute=msb_of,
            response_bits=lambda i: (
                elias_gamma_bits(i + 1) if i is not None else indicator_bits()
            ),
        )
        d_prime = sum(2 ** (i + 1) for i in msb_indices if i is not None)
        # Coordinator announces only the MSB index of d' (log log bits),
        # keeping phase-1 cost at O(k log log d).
        announce = d_prime.bit_length()
        rt.broadcast(elias_gamma_bits(announce + 1))
    if d_prime == 0:
        return DegreeEstimate(value=0, rounds=0, experiments=0, msb_bracket=0)

    # ------------------------------------------------------------------
    # Phase 2: geometric guess-down with sampling experiments.
    # ------------------------------------------------------------------
    sqrt_alpha = math.sqrt(params.alpha)
    # d(v) >= d'/(2k); stop the schedule one sqrt(alpha) step below that.
    floor_guess = max(2.0, d_prime / (2.0 * k * sqrt_alpha))
    m = params.experiments_per_round(k)
    experiments_run = 0
    rounds_run = 0
    guess = float(d_prime)
    with rt.scope(f"{label}/guess-down"):
        while guess > floor_guess * sqrt_alpha:
            rounds_run += 1
            threshold = (
                m * _success_probability_if_correct(guess) / params.threshold_c
            )
            successes = 0
            for experiment in range(m):
                pred = rt.shared.bernoulli_predicate(
                    min(1.0, 1.0 / guess),
                    tag=tag * 1_000_003 + rounds_run * 1_009 + experiment,
                )
                bits = rt.collect(
                    compute=lambda p: hit_test(p, pred),
                    response_bits=lambda _: indicator_bits(),
                    request_bits=0,
                )
                experiments_run += 1
                if any(bits):
                    successes += 1
            # Coordinator tells everyone whether to stop: 1 bit each.
            rt.broadcast(indicator_bits())
            if successes > threshold:
                return DegreeEstimate(
                    value=max(1, int(round(guess))),
                    rounds=rounds_run,
                    experiments=experiments_run,
                    msb_bracket=d_prime,
                )
            guess /= sqrt_alpha
    # Last guess reached: output it without running the experiment.
    return DegreeEstimate(
        value=max(1, int(round(max(guess, floor_guess)))),
        rounds=rounds_run,
        experiments=experiments_run,
        msb_bracket=d_prime,
    )


def approx_degree_no_duplication(rt: CoordinatorRuntime, v: int,
                                 alpha: float = 2.0) -> int:
    """Lemma 3.2: alpha-approximate deg(v) when inputs are disjoint.

    Each player sends the ``ceil(log2(2/(alpha-1)))`` most significant bits
    of d_j(v) plus the cutoff index; the coordinator zero-fills and sums.
    Truncation only under-counts, by a factor the kept bits control, and
    with disjoint inputs the sum of locals *is* the degree.
    Communication O(k log log (d(v)/k)).
    """
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    kept_bits = max(1, math.ceil(math.log2(2.0 / (alpha - 1.0))))

    def truncate(degree: int) -> tuple[int, int] | None:
        if degree == 0:
            return None
        length = degree.bit_length()
        drop = max(0, length - kept_bits)
        return (degree >> drop, drop)

    with rt.scope("approx_degree_nodup"):
        reports = rt.collect(
            compute=lambda p: truncate(p.local_degree(v)),
            response_bits=lambda r: (
                indicator_bits() if r is None
                else kept_bits + elias_gamma_bits(r[1] + 1)
            ),
        )
    return sum(top << drop for top, drop in
               (r for r in reports if r is not None))

"""The paper's contribution: triangle-freeness testing protocols.

Public API:

* :func:`find_triangle_unrestricted` — Section 3.3, O~(k (nd)^{1/4} + k²);
* :func:`find_triangle_sim_high` — Algorithm 7/9, O~(k (nd)^{1/3});
* :func:`find_triangle_sim_low` — Algorithm 8/10, O~(k sqrt(n));
* :func:`find_triangle_sim_oblivious` — Algorithm 11, degree-oblivious;
* :func:`exact_triangle_detection` — the Ω(k n d) exact baseline;
* :func:`test_triangle_freeness` — the property-testing wrapper.

All testers have one-sided error: a reported triangle always exists.
"""

from repro.core.amplification import amplify, rounds_for_target
from repro.core.building_blocks import (
    bfs_tree,
    collect_induced_subgraph,
    collect_neighbors,
    edge_index,
    query_edge,
    random_edge,
    random_incident_edge,
    random_walk,
)
from repro.core.degree_approx import (
    DegreeApproxParams,
    DegreeEstimate,
    approx_average_degree,
    approx_degree,
    approx_degree_no_duplication,
    approx_distinct_edges,
)
from repro.core.exact_baseline import (
    exact_triangle_detection,
    exact_triangle_detection_blackboard,
)
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.results import DetectionResult, Triangle
from repro.core.subgraph_detection import (
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    SubgraphDetectionResult,
    SubgraphParams,
    SubgraphPattern,
    find_copy_among,
    find_subgraph_simultaneous,
    planted_disjoint_subgraphs,
)
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
from repro.graphs.partition import EdgePartition

__all__ = [
    "amplify",
    "rounds_for_target",
    "FIVE_CYCLE",
    "FOUR_CLIQUE",
    "FOUR_CYCLE",
    "SubgraphDetectionResult",
    "SubgraphParams",
    "SubgraphPattern",
    "find_copy_among",
    "find_subgraph_simultaneous",
    "planted_disjoint_subgraphs",
    "DetectionResult",
    "Triangle",
    "DegreeApproxParams",
    "DegreeEstimate",
    "approx_average_degree",
    "approx_degree",
    "approx_degree_no_duplication",
    "approx_distinct_edges",
    "bfs_tree",
    "collect_induced_subgraph",
    "collect_neighbors",
    "edge_index",
    "query_edge",
    "random_edge",
    "random_incident_edge",
    "random_walk",
    "exact_triangle_detection",
    "exact_triangle_detection_blackboard",
    "ObliviousParams",
    "find_triangle_sim_oblivious",
    "SimHighParams",
    "find_triangle_sim_high",
    "SimLowParams",
    "find_triangle_sim_low",
    "UnrestrictedParams",
    "find_triangle_unrestricted",
    "check_triangle_freeness",
]


def check_triangle_freeness(partition: EdgePartition, protocol: str = "auto",
                           seed: int = 0, **protocol_kwargs) -> bool:
    """Property-testing verdict: True = "looks triangle-free".

    ``protocol`` selects the tester: ``"unrestricted"``, ``"sim-high"``,
    ``"sim-low"``, ``"sim-oblivious"``, ``"exact"``, or ``"auto"`` (the
    degree regime picks between sim-low and sim-high, matching the paper's
    Table 1 columns).  Extra keyword arguments become the protocol's params
    object fields.

    One-sided: a False verdict is always correct (a triangle was exhibited);
    a True verdict errs with the protocol's delta on epsilon-far inputs.
    """
    import math

    if protocol == "auto":
        d = partition.graph.average_degree()
        protocol = (
            "sim-high" if d >= math.sqrt(max(1, partition.graph.n))
            else "sim-low"
        )
    if protocol == "unrestricted":
        params = UnrestrictedParams(**protocol_kwargs) if protocol_kwargs else None
        result = find_triangle_unrestricted(partition, params, seed=seed)
    elif protocol == "sim-high":
        params = SimHighParams(**protocol_kwargs) if protocol_kwargs else None
        result = find_triangle_sim_high(partition, params, seed=seed)
    elif protocol == "sim-low":
        params = SimLowParams(**protocol_kwargs) if protocol_kwargs else None
        result = find_triangle_sim_low(partition, params, seed=seed)
    elif protocol == "sim-oblivious":
        params = ObliviousParams(**protocol_kwargs) if protocol_kwargs else None
        result = find_triangle_sim_oblivious(partition, params, seed=seed)
    elif protocol == "exact":
        result = exact_triangle_detection(partition)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    return result.verdict_triangle_free()

"""The formal ``MaskKernel`` contract and the backend registry.

A *mask kernel* is the storage engine behind :class:`repro.graphs.graph.Graph`:
it owns the symmetric adjacency-bit matrix and nothing else.  ``Graph``
keeps the semantics (validation, edge counting, canonical orientation)
and delegates every bit of storage and bulk arithmetic to its kernel, so
new representations plug in without touching any caller.

Three kernels ship:

* ``bigint`` (:class:`repro.graphs.kernels.bigint.BigintKernel`) — one
  arbitrary-precision Python int per vertex, the PR 2 bitset kernel.
  Optimal up to tens of thousands of vertices, where CPython's bignum
  ``&`` is effectively memory-bound C.
* ``packed`` (:class:`repro.graphs.kernels.packed.PackedKernel`) — a
  ``numpy`` ``uint64`` matrix of shape ``(n, ceil(n/64))``.  Rows are
  word-addressable, which unlocks vectorized single-word bit probes
  (the wedge-scan triangle natives) that no flat bignum can offer, and
  opens the n=10^5 host regime.
* ``csr`` (:class:`repro.graphs.kernels.csr.CsrKernel`) — sorted numpy
  index arrays (CSR offsets + indices), O(m) memory instead of O(n²/8).
  The sparse-host kernel: at n = 10^6 a constant-degree host fits in
  tens of megabytes where the packed bitmap would need ~125 GB.

The *exchange format* between kernels, and between a kernel and every
caller, is the Python-int row mask: bit ``v`` of row ``u`` is set iff
``{u, v}`` is an edge.  Conversion both ways is lossless
(:meth:`MaskKernel.row` / :meth:`MaskKernel.from_rows`), which is what
makes pinned-seed runs byte-identical across backends.

Selection follows the same seam style as ``player_factory=`` and
``matcher=``: an explicit ``Graph(n, backend=...)`` argument wins, then
the ``REPRO_GRAPH_BACKEND`` environment variable, then the ``auto``
policy.  ``auto`` is density-aware: bigint below
:data:`PACKED_AUTO_THRESHOLD` vertices, packed above it, csr when the
host is large *and* sparse — above :data:`CSR_AUTO_THRESHOLD`
unconditionally (the bitmap no longer fits), or above
:data:`PACKED_AUTO_THRESHOLD` when the caller supplies an
``expected_edges`` hint showing m < n²/64 (the memory crossover where
~8 bytes/edge of CSR beats n/8 bytes/row of bitmap).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, runtime_checkable

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    pass

__all__ = [
    "Edge",
    "MaskKernel",
    "iter_bits",
    "mask_of",
    "get_kernel",
    "register_kernel",
    "kernel_names",
    "packed_available",
    "BACKEND_ENV_VAR",
    "PACKED_AUTO_THRESHOLD",
    "CSR_AUTO_THRESHOLD",
    "SPARSE_DENSITY_WORD_FACTOR",
]

Edge = tuple[int, int]

#: Environment variable naming the default backend (``bigint``,
#: ``packed``, or ``auto``); an explicit ``backend=`` argument wins.
BACKEND_ENV_VAR = "REPRO_GRAPH_BACKEND"

#: ``auto`` switches to the packed kernel at this vertex count.  Below
#: it the bignum kernel's per-op latency wins; above it the packed
#: kernel's vectorized natives and O(1) word probes win (measured
#: crossover of the triangle hot path is n ~ 1e4; the threshold is set
#: a notch higher so existing small-n workloads keep their exact
#: performance profile).
PACKED_AUTO_THRESHOLD = 32768

#: Above this vertex count ``auto`` always picks the csr kernel: the
#: packed bitmap costs n²/8 bytes (8.6 GB at 2^18, 125 GB at 10^6),
#: which stops being a sane default long before it stops fitting.
CSR_AUTO_THRESHOLD = 1 << 18

#: Density crossover used when ``auto`` has an ``expected_edges`` hint:
#: csr stores an edge twice at ~8 bytes a direction while packed pays
#: n/8 bytes per row, so the memory break-even is m = n² / 64.  Below
#: that density (m · 64 < n²) csr wins on memory *and* its
#: merge-intersection natives win on time, so ``auto`` picks csr for
#: hinted hosts past :data:`PACKED_AUTO_THRESHOLD`.
SPARSE_DENSITY_WORD_FACTOR = 64


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(vertices: Iterable[int]) -> int:
    """The bitmask with exactly the bits in ``vertices`` set."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


@runtime_checkable
class MaskKernel(Protocol):
    """Formal contract of a ``Graph`` adjacency backend.

    Invariants every implementation must keep:

    * the bit matrix is **symmetric** with a zero diagonal — mutators
      update both directions atomically;
    * ``row(u)`` is the **lossless** Python-int form of row ``u`` (the
      exchange format), and ``from_rows(n, rows)`` is its exact inverse,
      so converting between any two kernels round-trips bit for bit;
    * callers (``Graph``) pre-validate vertices and masks — kernels may
      assume ``0 <= u, v < n``, ``u != v``, and masks without stray bits.

    Kernels may additionally expose *native accelerators* —
    ``count_triangles()``, ``greedy_triangle_packing()``,
    ``find_triangle()`` — that :mod:`repro.graphs.triangles` dispatches
    to when present.  Natives must return results identical to the
    generic int-row algorithms (same values, same enumeration order).
    """

    #: Registry name of the backend (``"bigint"``, ``"packed"``).
    name: str

    @property
    def n(self) -> int:
        """Number of vertices (fixed at construction)."""
        ...

    # -- mutation ------------------------------------------------------
    def set_edge(self, u: int, v: int) -> bool:
        """Set bits (u, v) and (v, u); True iff the edge was new."""
        ...

    def clear_edge(self, u: int, v: int) -> bool:
        """Clear bits (u, v) and (v, u); True iff the edge existed."""
        ...

    def merge_row(self, u: int, mask: int) -> int:
        """OR ``mask`` into row ``u`` (mirroring the new bits into the
        partner rows); returns the number of *new* edges."""
        ...

    # -- queries (int-mask exchange format) ----------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Is bit ``v`` of row ``u`` set?"""
        ...

    def row(self, u: int) -> int:
        """N(u) as a Python-int mask — the lossless exchange form."""
        ...

    def rows(self) -> list[int]:
        """Every row as a Python int, indexed by vertex.

        The bigint kernel returns its **live** row list (callers treat
        it as read-only; hot loops index it for free); other kernels
        return a converted snapshot.  Either way the values are the
        exact int forms of the current adjacency.
        """
        ...

    def row_and(self, u: int, v: int) -> int:
        """``N(u) & N(v)`` as a Python-int mask (one AND, any width)."""
        ...

    def popcount(self, u: int) -> int:
        """Degree of ``u``."""
        ...

    def popcounts(self) -> list[int]:
        """All degrees, indexed by vertex."""
        ...

    def memory_bytes(self) -> int:
        """Approximate bytes of adjacency storage this kernel holds.

        Powers :attr:`repro.graphs.graph.Graph.nbytes` and the
        instance-memory figures in ``InstanceCache.stats()`` — a
        bookkeeping estimate (payload arrays / bignum digits), not an
        exact allocator measurement.
        """
        ...

    def iter_edges(self) -> Iterator[Edge]:
        """All edges in canonical orientation, ascending (u, then v)."""
        ...

    # -- whole-kernel operations ---------------------------------------
    def copy(self) -> "MaskKernel":
        """An independent deep copy (same backend)."""
        ...

    def induced(self, vertex_mask: int) -> tuple["MaskKernel", int]:
        """(kernel of the induced subgraph on ``vertex_mask``, #edges).

        Vertex ids are preserved; rows outside the mask become zero.
        """
        ...

    def union_with(self, other: "MaskKernel") -> tuple["MaskKernel", int]:
        """(kernel of the edge union, #edges); ``other`` has the same
        ``n`` and the same backend."""
        ...

    def rows_equal(self, other: "MaskKernel") -> bool:
        """Bit-for-bit adjacency equality (same-backend fast path)."""
        ...

    @classmethod
    def from_rows(cls, n: int, rows: Iterable[int]) -> "MaskKernel":
        """Build from int rows — the lossless conversion seam.

        ``rows`` must already be symmetric (it always is when it came
        from another kernel's :meth:`rows`).
        """
        ...

    @classmethod
    def from_edge_array(cls, n: int, us: "object", vs: "object"
                        ) -> "MaskKernel":
        """Bulk-build from canonical numpy edge arrays.

        ``us``/``vs`` are equal-length int64 arrays with
        ``us[i] < vs[i]``, no duplicates, vertices in range — exactly
        what :meth:`repro.graphs.graph.Graph.from_edge_arrays` produces
        after validation.  This is the vectorized-generation entry
        point: O(m) array work instead of m Python-level inserts.
        """
        ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type] = {}


def register_kernel(name: str, cls: type) -> None:
    """Register a kernel class under ``name`` (extension seam)."""
    _REGISTRY[name] = cls


def kernel_names() -> tuple[str, ...]:
    """Registered backend names plus the ``auto`` policy."""
    _ensure_builtin_registered()
    return tuple(sorted(_REGISTRY)) + ("auto",)


def packed_available() -> bool:
    """True when the numpy-backed kernels (packed, csr) are importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - depends on env
        return False
    return True


#: Built-in kernels that register themselves on module import; imported
#: lazily so a numpy-less environment still gets the bigint kernel (and
#: a pointed error only when a numpy kernel is actually requested).
_LAZY_NUMPY_KERNELS = ("packed", "csr")


def _ensure_builtin_registered(name: str | None = None) -> None:
    if not packed_available():
        return
    for lazy in _LAZY_NUMPY_KERNELS:
        if name is not None and lazy != name:
            continue
        if lazy not in _REGISTRY:
            import importlib

            importlib.import_module(f"repro.graphs.kernels.{lazy}")


def _auto_backend(n: int, expected_edges: int | None) -> str:
    if n < PACKED_AUTO_THRESHOLD or not packed_available():
        return "bigint"
    if n >= CSR_AUTO_THRESHOLD:
        return "csr"
    if (
        expected_edges is not None
        and expected_edges * SPARSE_DENSITY_WORD_FACTOR < n * n
    ):
        return "csr"
    return "packed"


def get_kernel(backend: str | None = None, n: int = 0,
               expected_edges: int | None = None) -> type:
    """Resolve a backend name to its kernel class.

    Resolution order: explicit ``backend`` argument, then the
    ``REPRO_GRAPH_BACKEND`` environment variable, then ``auto``.  The
    ``auto`` policy is density-aware: ``bigint`` below
    :data:`PACKED_AUTO_THRESHOLD`, ``csr`` above
    :data:`CSR_AUTO_THRESHOLD` (the bitmap regime ends there) or when an
    ``expected_edges`` hint shows the host is sparse
    (m · :data:`SPARSE_DENSITY_WORD_FACTOR` < n²), ``packed``
    otherwise.  Generators pass the hint; plain ``Graph(n)``
    construction has none and keeps the historical bigint/packed split
    below :data:`CSR_AUTO_THRESHOLD`.
    """
    requested = backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "auto"
    if backend == "auto":
        backend = _auto_backend(n, expected_edges)
        # Auto-selections are the interesting ones to observe: they
        # carry the inputs the density policy decided on.
        obs_trace.event("kernel.selected", backend=backend, n=n,
                        expected_edges=expected_edges,
                        requested=requested)
    obs_metrics.inc(f"kernel.select.{backend}")
    if backend in _LAZY_NUMPY_KERNELS and backend not in _REGISTRY:
        if not packed_available():
            raise ImportError(
                f"the {backend!r} graph backend needs numpy (a core "
                "dependency of this package: `pip install -e .`); "
                "use backend='bigint' in a numpy-less environment"
            )
        _ensure_builtin_registered(backend)
    cls = _REGISTRY.get(backend)
    if cls is None:
        _ensure_builtin_registered()
        cls = _REGISTRY.get(backend)
    if cls is None:
        raise ValueError(
            f"unknown graph backend {backend!r}; "
            f"known: {', '.join(kernel_names())}"
        )
    return cls

"""Mask-kernel backends for :class:`repro.graphs.graph.Graph`.

See :mod:`repro.graphs.kernels.base` for the :class:`MaskKernel`
protocol and the selection policy.  ``bigint`` is always available;
``packed`` (numpy uint64 words) and ``csr`` (sorted numpy index
arrays) register lazily on first request.
"""

from repro.graphs.kernels.base import (
    BACKEND_ENV_VAR,
    CSR_AUTO_THRESHOLD,
    PACKED_AUTO_THRESHOLD,
    SPARSE_DENSITY_WORD_FACTOR,
    MaskKernel,
    get_kernel,
    iter_bits,
    kernel_names,
    mask_of,
    packed_available,
    register_kernel,
)
from repro.graphs.kernels.bigint import BigintKernel

__all__ = [
    "MaskKernel",
    "BigintKernel",
    "get_kernel",
    "register_kernel",
    "kernel_names",
    "packed_available",
    "iter_bits",
    "mask_of",
    "BACKEND_ENV_VAR",
    "PACKED_AUTO_THRESHOLD",
    "CSR_AUTO_THRESHOLD",
    "SPARSE_DENSITY_WORD_FACTOR",
]

"""The word-packed mask kernel: a ``(n, ceil(n/64))`` uint64 matrix.

Row ``u`` stores N(u) as little-endian 64-bit words — bit ``v`` lives at
``word v >> 6``, position ``v & 63`` — so AND / OR / ANDNOT / popcount
run vectorized over the whole matrix, and (unlike a flat bignum) any
single bit is O(1) word-addressable:

    ``(A[a, b >> 6] >> (b & 63)) & 1``

That random-access probe is what the triangle natives exploit.  A plain
edge-AND sweep costs O(m · n/64) words on *either* kernel — CPython's
bignum ``&`` is already memory-bound C over 30-bit digits, so naive
numpy chunking wins nothing — but the wedge scan is a different
algorithm: extract the strictly-upper CSR, enumerate the pairs inside
each above-neighbourhood N⁺(u), and close each wedge with one gathered
single-word bit test.  Work drops to O(Σ deg⁺(u)²) word ops, which on
the sparse instances the paper cares about (d = O(1)) is ~d·m probes —
the measured ~10x at n = 10^5 that opens the scale regime ROADMAP asks
for.  Each triangle is counted exactly once, at its minimum vertex.

Natives (``count_triangles`` / ``greedy_triangle_packing`` /
``find_triangle``) return results identical to the generic int-row
algorithms in :mod:`repro.graphs.triangles` — same values, same order —
and return ``NotImplemented`` when the wedge-pair bound degrades past
the edge-AND bound (dense graphs), letting the dispatcher fall back to
the generic path instead of duplicating it here.

Popcounts use :func:`numpy.bitwise_count` when the installed numpy has
it, else an 8-bit lookup table over the byte view (same values, ~4x
slower, still vectorized).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graphs.kernels.base import Edge, register_kernel

__all__ = ["PackedKernel", "pack_mask", "unpack_words"]

# Feature flag split out so tests can force the LUT path.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

# Little-endian word dtype: on little-endian hosts identical to the
# native uint64 (conversions are free views); spelled out so the
# int <-> words byte contract is explicit.
_LE_U64 = np.dtype("<u8")

# Wedge natives hand the work back to the generic edge-AND path once the
# pair count exceeds this multiple of the edge-AND word budget (m words
# per n/64-word row): the wedge scan only wins while neighbourhoods stay
# small.
_DENSE_FALLBACK_FACTOR = 4
# Closure probes are generated in batches of at most this many pairs to
# bound peak memory on skewed degree sequences.
_PAIR_BATCH = 1 << 22


def _popcount(arr: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (bitwise_count or LUT)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(arr)
    flat = np.ascontiguousarray(arr).view(np.uint8)
    return _POP8[flat].reshape(arr.shape + (8,)).sum(
        axis=-1, dtype=np.int64
    )


def _popcount_total(arr: np.ndarray) -> int:
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(arr).sum(dtype=np.int64))
    flat = np.ascontiguousarray(arr).view(np.uint8)
    return int(_POP8[flat].sum(dtype=np.int64))


def pack_mask(mask: int, words: int) -> np.ndarray:
    """A Python-int mask as ``words`` little-endian uint64 words."""
    if mask < 0:
        raise ValueError("masks are non-negative")
    raw = np.frombuffer(mask.to_bytes(words * 8, "little"), dtype=_LE_U64)
    return raw.astype(np.uint64)  # native byte order, writable


def unpack_words(words: np.ndarray) -> int:
    """The exact Python-int mask stored in little-endian uint64 words."""
    return int.from_bytes(
        np.ascontiguousarray(words, dtype=np.uint64)
        .astype(_LE_U64, copy=False)
        .tobytes(),
        "little",
    )


def _bits_of_words(words: np.ndarray) -> np.ndarray:
    """Set-bit positions of a 1-D word array, ascending (int64)."""
    nz = np.nonzero(words)[0]
    if nz.size == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(
        words[nz].astype(_LE_U64, copy=False).view(np.uint8).reshape(-1, 8),
        axis=1,
        bitorder="little",
    )
    word_index, bit_index = np.nonzero(bits)
    return (nz[word_index].astype(np.int64) << 6) + bit_index


class PackedKernel:
    """Word-packed adjacency storage (see module docstring)."""

    name = "packed"

    __slots__ = ("_n", "_words", "_a")

    def __init__(self, n: int) -> None:
        self._n = n
        self._words = (n + 63) >> 6
        self._a = np.zeros((n, self._words), dtype=np.uint64)

    @property
    def n(self) -> int:
        return self._n

    # -- mutation ------------------------------------------------------
    def set_edge(self, u: int, v: int) -> bool:
        a = self._a
        wv, bv = v >> 6, np.uint64(1 << (v & 63))
        if a[u, wv] & bv:
            return False
        a[u, wv] |= bv
        a[v, u >> 6] |= np.uint64(1 << (u & 63))
        return True

    def clear_edge(self, u: int, v: int) -> bool:
        a = self._a
        wv, bv = v >> 6, np.uint64(1 << (v & 63))
        if not a[u, wv] & bv:
            return False
        a[u, wv] &= ~bv
        a[v, u >> 6] &= ~np.uint64(1 << (u & 63))
        return True

    def merge_row(self, u: int, mask: int) -> int:
        row = self._a[u]
        new = pack_mask(mask, self._words)
        np.bitwise_and(new, ~row, out=new)
        if not new.any():
            return 0
        np.bitwise_or(row, new, out=row)
        partners = _bits_of_words(new)  # unique, so fancy |= is safe
        self._a[partners, u >> 6] |= np.uint64(1 << (u & 63))
        return _popcount_total(new)

    # -- queries -------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._a[u, v >> 6] >> np.uint64(v & 63) & np.uint64(1))

    def row(self, u: int) -> int:
        return unpack_words(self._a[u])

    def rows(self) -> list[int]:
        stride = self._words * 8
        raw = (
            np.ascontiguousarray(self._a)
            .astype(_LE_U64, copy=False)
            .tobytes()
        )
        return [
            int.from_bytes(raw[u * stride:(u + 1) * stride], "little")
            for u in range(self._n)
        ]

    def row_and(self, u: int, v: int) -> int:
        return unpack_words(self._a[u] & self._a[v])

    def popcount(self, u: int) -> int:
        return _popcount_total(self._a[u])

    def popcounts(self) -> list[int]:
        if self._n == 0:
            return []
        return _popcount(self._a).sum(axis=1, dtype=np.int64).tolist()

    def memory_bytes(self) -> int:
        return int(self._a.nbytes)

    def iter_edges(self) -> Iterator[Edge]:
        for u, mask in enumerate(self.rows()):
            upper = mask >> (u + 1)
            while upper:
                low = upper & -upper
                yield (u, u + low.bit_length())
                upper ^= low

    # -- whole-kernel operations ---------------------------------------
    def copy(self) -> "PackedKernel":
        clone = PackedKernel.__new__(PackedKernel)
        clone._n = self._n
        clone._words = self._words
        clone._a = self._a.copy()
        return clone

    def induced(self, vertex_mask: int) -> tuple["PackedKernel", int]:
        clone = PackedKernel(self._n)
        if self._n:
            keep = pack_mask(vertex_mask, self._words)
            np.bitwise_and(self._a, keep[None, :], out=clone._a)
            selected = np.unpackbits(
                keep.astype(_LE_U64, copy=False).view(np.uint8),
                bitorder="little",
            )[: self._n].astype(bool)
            clone._a[~selected] = 0
        return clone, _popcount_total(clone._a) // 2

    def union_with(self, other: "PackedKernel") -> tuple["PackedKernel", int]:
        merged = PackedKernel.__new__(PackedKernel)
        merged._n = self._n
        merged._words = self._words
        merged._a = self._a | other._a
        return merged, _popcount_total(merged._a) // 2

    def rows_equal(self, other: "PackedKernel") -> bool:
        return bool(np.array_equal(self._a, other._a))

    @classmethod
    def from_rows(cls, n: int, rows: Iterable[int]) -> "PackedKernel":
        kernel = cls(n)
        stride = kernel._words * 8
        buf = bytearray(n * stride)
        view = memoryview(buf)
        count = 0
        for u, mask in enumerate(rows):
            view[u * stride:(u + 1) * stride] = mask.to_bytes(
                stride, "little"
            )
            count += 1
        if count != n:
            raise ValueError(f"expected {n} rows, got {count}")
        if n:
            kernel._a = (
                np.frombuffer(buf, dtype=_LE_U64)
                .reshape(n, kernel._words)
                .astype(np.uint64, copy=False)
            )
        return kernel

    @classmethod
    def from_edge_array(cls, n: int, us: np.ndarray,
                        vs: np.ndarray) -> "PackedKernel":
        """Bulk-build from canonical numpy edge arrays: scatter both
        directions into the word matrix with one ``bitwise_or.at``."""
        kernel = cls(n)
        if us.size:
            src = np.concatenate([us, vs])
            dst = np.concatenate([vs, us])
            flat = kernel._a.reshape(-1)
            np.bitwise_or.at(
                flat,
                src * kernel._words + (dst >> 6),
                np.uint64(1) << (dst & 63).astype(np.uint64),
            )
        return kernel

    # ------------------------------------------------------------------
    # Native triangle accelerators (dispatched by repro.graphs.triangles)
    # ------------------------------------------------------------------
    def _upper_csr(self, lo: int = 0,
                   hi: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Strictly-upper adjacency (u, v>u) pairs for rows lo..hi.

        Returned arrays are sorted by (u, v): chunks ascend, nonzero
        walks words row-major, and bits unpack low-to-high.  Only the
        nonzero words are unpacked — the chunk is sliced to start at
        word ``start >> 6``, compared against zero (a bool compare is
        several times faster to ``nonzero`` than the uint64 matrix
        itself), and the v > u filter trims the sub-word remainder.
        """
        if hi is None:
            hi = self._n
        a = self._a
        us_parts: list[np.ndarray] = []
        vs_parts: list[np.ndarray] = []
        chunk = max(1, (1 << 24) // max(8, self._words * 8))
        for start in range(lo, hi, chunk):
            stop = min(hi, start + chunk)
            word0 = start >> 6
            sub = a[start:stop, word0:]
            nz_row, nz_col = np.nonzero(sub != 0)
            if nz_row.size == 0:
                continue
            bits = np.unpackbits(
                sub[nz_row, nz_col]
                .astype(_LE_U64, copy=False)
                .view(np.uint8)
                .reshape(-1, 8),
                axis=1,
                bitorder="little",
            )
            word_index, bit_index = np.nonzero(bits)
            u = start + nz_row[word_index].astype(np.int64)
            v = (
                (word0 + nz_col[word_index].astype(np.int64)) << 6
            ) + bit_index
            keep = v > u
            us_parts.append(u[keep])
            vs_parts.append(v[keep])
        if not us_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(us_parts), np.concatenate(vs_parts)

    def _closed_wedges(self, us: np.ndarray, vs: np.ndarray, *,
                       collect: bool):
        """Count (or collect) wedges (u; a, b) with a, b ∈ N⁺(u) closed
        by an edge {a, b}.  Each triangle appears exactly once, at its
        minimum vertex u.  Returns an int when ``collect`` is false,
        else (u, a, b) int64 arrays; ``NotImplemented`` when the pair
        count says the generic edge-AND path is the better algorithm.
        """
        if us.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return (empty, empty, empty) if collect else 0
        uniq, starts, counts = np.unique(
            us, return_index=True, return_counts=True
        )
        counts64 = counts.astype(np.int64)
        pairs = int((counts64 * (counts64 - 1) // 2).sum())
        if pairs > _DENSE_FALLBACK_FACTOR * us.size * max(1, self._words):
            return NotImplemented
        a = self._a
        total = 0
        hit_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for k in np.unique(counts64):
            if k < 2:
                continue
            group = counts64 == k
            group_starts = starts[group]
            group_u = uniq[group]
            pair_a, pair_b = np.triu_indices(int(k), 1)
            per_row = pair_a.size
            batch = max(1, _PAIR_BATCH // per_row)
            for off in range(0, group_starts.size, batch):
                gs = group_starts[off:off + batch]
                neighbours = vs[gs[:, None] + np.arange(int(k))[None, :]]
                first = neighbours[:, pair_a].ravel()
                second = neighbours[:, pair_b].ravel()
                closed = (
                    a[first, second >> 6]
                    >> (second & 63).astype(np.uint64)
                ) & np.uint64(1)
                if collect:
                    hit = np.nonzero(closed)[0]
                    if hit.size:
                        hit_parts.append((
                            np.repeat(
                                group_u[off:off + batch], per_row
                            )[hit],
                            first[hit],
                            second[hit],
                        ))
                else:
                    total += int(closed.sum(dtype=np.int64))
        if not collect:
            return total
        if not hit_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        return (
            np.concatenate([p[0] for p in hit_parts]),
            np.concatenate([p[1] for p in hit_parts]),
            np.concatenate([p[2] for p in hit_parts]),
        )

    def count_triangles(self):
        """#triangles via the wedge scan; ``NotImplemented`` when dense."""
        us, vs = self._upper_csr()
        return self._closed_wedges(us, vs, collect=False)

    def find_triangle(self):
        """First triangle in the generic order, or None.

        The generic scan returns the lexicographically minimal canonical
        triple; a triangle's canonical triple leads with its minimum
        vertex, and the wedge scan keys every triangle at exactly that
        vertex, so scanning base-vertex blocks ascending and taking the
        lexicographic minimum of the first non-empty block reproduces
        the generic answer while keeping the early exit.
        """
        n = self._n
        block = max(64, (1 << 21) // max(8, self._words * 8))
        for lo in range(0, n, block):
            hi = min(n, lo + block)
            us, vs = self._upper_csr(lo, hi)
            wedges = self._closed_wedges(us, vs, collect=True)
            if wedges is NotImplemented:
                return NotImplemented
            tri_u, tri_a, tri_b = wedges
            if tri_u.size:
                order = np.lexsort((tri_b, tri_a, tri_u))[0]
                return (
                    int(tri_u[order]),
                    int(tri_a[order]),
                    int(tri_b[order]),
                )
        return None

    def greedy_triangle_packing(self):
        """The generic greedy packing, from the full wedge triangle list.

        The generic algorithm is exactly lexicographic greedy: triangles
        in canonical (u, v, w) order, accepted iff all three edges are
        still unused (the per-base-edge "minimum viable apex" rule picks
        the same triangles).  So: enumerate every triangle vectorized,
        lexsort, and replay that greedy in one linear pass with
        per-vertex used-edge masks.
        """
        wedges = self._closed_wedges(*self._upper_csr(), collect=True)
        if wedges is NotImplemented:
            return NotImplemented
        tri_u, tri_a, tri_b = wedges
        if tri_u.size == 0:
            return []
        order = np.lexsort((tri_b, tri_a, tri_u))
        used = [0] * self._n
        packing: list[tuple[int, int, int]] = []
        for u, a, b in zip(
            tri_u[order].tolist(),
            tri_a[order].tolist(),
            tri_b[order].tolist(),
        ):
            if used[u] >> a & 1 or used[u] >> b & 1 or used[a] >> b & 1:
                continue
            used[u] |= (1 << a) | (1 << b)
            used[a] |= (1 << u) | (1 << b)
            used[b] |= (1 << u) | (1 << a)
            packing.append((u, a, b))
        return packing


register_kernel("packed", PackedKernel)

"""The sparse CSR mask kernel: sorted numpy index arrays, O(m) memory.

Adjacency is stored in compressed-sparse-row form — an ``indptr`` array
of n+1 int64 offsets and an ``indices`` array holding every neighbour
list concatenated, sorted within each row, both directions of every
edge present (the matrix stays symmetric like every other kernel).
Memory is ~8-16 bytes per edge instead of the packed kernel's n²/8-byte
bitmap, which is the difference between ~24 MB and ~125 GB for a
constant-degree host at n = 10^6: this kernel is what opens the
million-vertex regime.

Mutation on a frozen array layout would be O(m) per edge, so single-edge
mutators write into a *delta overlay* (per-vertex added/removed sets,
kept symmetric and disjoint from the base arrays) that every bulk
operation folds back into the arrays on demand.  Point queries
(``has_edge``, ``popcount``, ``row``) consult the overlay directly and
never trigger compaction, so interleaved mutate/probe loops stay cheap.
Bulk construction bypasses the overlay entirely:
:meth:`CsrKernel.from_edge_array` and :meth:`CsrKernel.merge_edge_array`
sort/merge whole edge arrays in a few numpy passes — the fast half of
the vectorized generation plane.

``row()`` materializes the Python-int exchange mask lazily and keeps an
LRU of hot rows (protocol inner loops probe the same planted-triangle
rows repeatedly; rebuilding a 125 KB bignum for a high vertex id on
every probe would swamp the scan).  Any mutation of a vertex evicts its
cached row.

Triangle natives use merge-intersection over the sorted arrays rather
than the packed kernel's bit probes: enumerate each strictly-upper edge
(u, v), take the candidates w ∈ N⁺(v) by one gather, and close the
wedge with a vectorized ``searchsorted`` membership test against the
sorted upper-edge key array ``u * n + w``.  Work is O(Σ wedges · log m)
with no n²-shaped term anywhere, so on sparse hosts (d = O(1)) it beats
the packed scan, whose upper-CSR extraction alone walks the full
n²/64-word bitmap.  Each triangle is produced exactly once, at its
minimum-vertex base edge, in canonical lexicographic order — the same
values and order as the generic int-row algorithms — and the natives
return ``NotImplemented`` on dense hosts (same wedge-budget rule as the
packed kernel) so the dispatcher falls back to the generic path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

import numpy as np

from repro.graphs.kernels.base import Edge, register_kernel

__all__ = ["CsrKernel"]

#: Same dense-decline rule as the packed kernel: hand back to the
#: generic edge-AND path once the wedge count exceeds this multiple of
#: the edge-AND word budget (m edges × n/64-word rows).
_DENSE_FALLBACK_FACTOR = 4
#: Wedge-closure probes are generated in batches of at most this many
#: candidates to bound peak memory on skewed degree sequences.
_PAIR_BATCH = 1 << 22
#: Hot-row LRU capacity: enough for every row a protocol inner loop
#: touches repeatedly, small enough that cached bignums stay negligible
#: next to the arrays even at n = 10^6.
_ROW_CACHE_SIZE = 256
#: Estimated bookkeeping bytes per overlay entry (a CPython set slot
#: plus a small int), used by :meth:`CsrKernel.memory_bytes`.
_OVERLAY_ENTRY_BYTES = 32

_BIT8 = np.array([1 << b for b in range(8)], dtype=np.uint8)


def _mask_from_sorted_indices(indices: np.ndarray) -> int:
    """The Python-int mask with exactly ``indices``' bits set.

    Byte-buffer assembly sized to the highest bit, so a sparse row of a
    million-vertex host costs O(max_neighbour/8) once instead of
    O(deg · n/64) repeated bignum shifts.
    """
    if indices.size == 0:
        return 0
    idx = indices.astype(np.int64, copy=False)
    buf = np.zeros((int(idx[-1]) >> 3) + 1, dtype=np.uint8)
    np.bitwise_or.at(buf, idx >> 3, _BIT8[idx & 7])
    return int.from_bytes(buf.tobytes(), "little")


def _bits_of_mask(mask: int) -> np.ndarray:
    """Set-bit positions of a Python-int mask, ascending (int64)."""
    if not mask:
        return np.empty(0, dtype=np.int64)
    raw = np.frombuffer(
        mask.to_bytes((mask.bit_length() + 7) >> 3, "little"), dtype=np.uint8
    )
    return np.nonzero(np.unpackbits(raw, bitorder="little"))[0].astype(
        np.int64, copy=False
    )


class CsrKernel:
    """Sorted-index-array adjacency storage (see module docstring)."""

    name = "csr"

    __slots__ = (
        "_n", "_indptr", "_indices", "_added", "_removed", "_row_cache",
    )

    def __init__(self, n: int) -> None:
        self._n = n
        self._indptr = np.zeros(n + 1, dtype=np.int64)
        self._indices = np.empty(0, dtype=self._index_dtype(n))
        self._added: dict[int, set[int]] = {}
        self._removed: dict[int, set[int]] = {}
        self._row_cache: OrderedDict[int, int] = OrderedDict()

    @staticmethod
    def _index_dtype(n: int):
        return np.int32 if n <= np.iinfo(np.int32).max else np.int64

    @property
    def n(self) -> int:
        return self._n

    # -- pickling (drop the transient row cache) -----------------------
    def __getstate__(self):
        self._compact()
        return (self._n, self._indptr, self._indices)

    def __setstate__(self, state) -> None:
        self._n, self._indptr, self._indices = state
        self._added = {}
        self._removed = {}
        self._row_cache = OrderedDict()

    # -- overlay plumbing ----------------------------------------------
    def _base_slice(self, u: int) -> np.ndarray:
        indptr = self._indptr
        return self._indices[indptr[u]:indptr[u + 1]]

    def _base_has(self, u: int, v: int) -> bool:
        row = self._base_slice(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def _effective_indices(self, u: int) -> np.ndarray:
        """Row ``u``'s neighbour ids, sorted int64, overlay applied."""
        base = self._base_slice(u).astype(np.int64, copy=False)
        added = self._added.get(u)
        removed = self._removed.get(u)
        if not added and not removed:
            return base
        values = set(base.tolist())
        if removed:
            values -= removed
        if added:
            values |= added
        return np.fromiter(sorted(values), dtype=np.int64, count=len(values))

    def _invalidate(self, u: int, v: int) -> None:
        self._row_cache.pop(u, None)
        self._row_cache.pop(v, None)

    def _delta_keys(self, delta: dict[int, set[int]]) -> np.ndarray:
        n = self._n
        flat = [u * n + v for u, partners in delta.items() for v in partners]
        return np.array(sorted(flat), dtype=np.int64)

    def _base_keys(self) -> np.ndarray:
        n = self._n
        src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self._indptr)
        )
        return src * n + self._indices.astype(np.int64, copy=False)

    def _set_from_keys(self, keys: np.ndarray) -> None:
        n = self._n
        src = keys // n
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._indptr = indptr
        self._indices = (keys % n).astype(self._index_dtype(n), copy=False)

    def _compact(self) -> None:
        """Fold the delta overlay back into the sorted arrays."""
        if not self._added and not self._removed:
            return
        keys = self._base_keys()
        if self._removed:
            keys = np.setdiff1d(
                keys, self._delta_keys(self._removed), assume_unique=True
            )
        if self._added:
            keys = np.union1d(keys, self._delta_keys(self._added))
        self._set_from_keys(keys)
        self._added = {}
        self._removed = {}

    # -- mutation ------------------------------------------------------
    def set_edge(self, u: int, v: int) -> bool:
        if self.has_edge(u, v):
            return False
        for a, b in ((u, v), (v, u)):
            removed = self._removed.get(a)
            if removed is not None and b in removed:
                removed.discard(b)
                if not removed:
                    del self._removed[a]
            else:
                self._added.setdefault(a, set()).add(b)
        self._invalidate(u, v)
        return True

    def clear_edge(self, u: int, v: int) -> bool:
        if not self.has_edge(u, v):
            return False
        for a, b in ((u, v), (v, u)):
            added = self._added.get(a)
            if added is not None and b in added:
                added.discard(b)
                if not added:
                    del self._added[a]
            else:
                self._removed.setdefault(a, set()).add(b)
        self._invalidate(u, v)
        return True

    def merge_row(self, u: int, mask: int) -> int:
        added = 0
        for v in _bits_of_mask(mask).tolist():
            added += self.set_edge(u, v)
        return added

    def merge_edge_array(self, us: np.ndarray, vs: np.ndarray) -> int:
        """OR canonical edge arrays into the adjacency; returns #new.

        The bulk mutator behind
        :meth:`repro.graphs.graph.Graph.add_edge_arrays`: one sorted
        merge instead of per-edge overlay writes.
        """
        self._compact()
        n = self._n
        src = np.concatenate([us, vs]).astype(np.int64, copy=False)
        dst = np.concatenate([vs, us]).astype(np.int64, copy=False)
        old = self._base_keys()
        keys = np.union1d(old, src * n + dst)
        added = (keys.size - old.size) // 2
        if added:
            self._set_from_keys(keys)
            self._row_cache.clear()
        return int(added)

    # -- queries -------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        added = self._added.get(u)
        if added is not None and v in added:
            return True
        removed = self._removed.get(u)
        if removed is not None and v in removed:
            return False
        return self._base_has(u, v)

    def row(self, u: int) -> int:
        cache = self._row_cache
        mask = cache.get(u)
        if mask is not None:
            cache.move_to_end(u)
            return mask
        mask = _mask_from_sorted_indices(self._effective_indices(u))
        cache[u] = mask
        if len(cache) > _ROW_CACHE_SIZE:
            cache.popitem(last=False)
        return mask

    def rows(self) -> list[int]:
        self._compact()
        indptr = self._indptr
        indices = self._indices
        return [
            _mask_from_sorted_indices(indices[indptr[u]:indptr[u + 1]])
            for u in range(self._n)
        ]

    def row_and(self, u: int, v: int) -> int:
        common = np.intersect1d(
            self._effective_indices(u),
            self._effective_indices(v),
            assume_unique=True,
        )
        return _mask_from_sorted_indices(common)

    def popcount(self, u: int) -> int:
        base = int(self._indptr[u + 1] - self._indptr[u])
        return (
            base
            + len(self._added.get(u, ()))
            - len(self._removed.get(u, ()))
        )

    def popcounts(self) -> list[int]:
        base = np.diff(self._indptr)
        if not self._added and not self._removed:
            return base.tolist()
        counts = base.tolist()
        for u, partners in self._added.items():
            counts[u] += len(partners)
        for u, partners in self._removed.items():
            counts[u] -= len(partners)
        return counts

    def memory_bytes(self) -> int:
        overlay = sum(len(s) for s in self._added.values())
        overlay += sum(len(s) for s in self._removed.values())
        return int(
            self._indptr.nbytes
            + self._indices.nbytes
            + overlay * _OVERLAY_ENTRY_BYTES
        )

    def iter_edges(self) -> Iterator[Edge]:
        self._compact()
        indptr = self._indptr
        indices = self._indices
        for u in range(self._n):
            row = indices[indptr[u]:indptr[u + 1]]
            cut = int(np.searchsorted(row, u + 1))
            for v in row[cut:].tolist():
                yield (u, int(v))

    # -- whole-kernel operations ---------------------------------------
    def copy(self) -> "CsrKernel":
        self._compact()
        clone = CsrKernel.__new__(CsrKernel)
        clone._n = self._n
        clone._indptr = self._indptr.copy()
        clone._indices = self._indices.copy()
        clone._added = {}
        clone._removed = {}
        clone._row_cache = OrderedDict()
        return clone

    def induced(self, vertex_mask: int) -> tuple["CsrKernel", int]:
        self._compact()
        n = self._n
        clone = CsrKernel(n)
        if n and self._indices.size:
            selected = np.zeros(n, dtype=bool)
            selected[_bits_of_mask(vertex_mask)] = True
            src = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._indptr)
            )
            dst = self._indices.astype(np.int64, copy=False)
            keep = selected[src] & selected[dst]
            clone._set_from_keys(src[keep] * n + dst[keep])
        return clone, int(clone._indices.size) // 2

    def union_with(self, other: "CsrKernel") -> tuple["CsrKernel", int]:
        self._compact()
        other._compact()
        merged = CsrKernel(self._n)
        keys = np.union1d(self._base_keys(), other._base_keys())
        merged._set_from_keys(keys)
        return merged, int(keys.size) // 2

    def rows_equal(self, other: "CsrKernel") -> bool:
        self._compact()
        other._compact()
        return bool(
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    @classmethod
    def from_rows(cls, n: int, rows: Iterable[int]) -> "CsrKernel":
        kernel = cls(n)
        counts = np.zeros(n + 1, dtype=np.int64)
        parts: list[np.ndarray] = []
        count = 0
        for u, mask in enumerate(rows):
            bits = _bits_of_mask(mask)
            if bits.size:
                counts[u + 1] = bits.size
                parts.append(bits)
            count += 1
        if count != n:
            raise ValueError(f"expected {n} rows, got {count}")
        np.cumsum(counts, out=kernel._indptr)
        if parts:
            kernel._indices = np.concatenate(parts).astype(
                cls._index_dtype(n), copy=False
            )
        return kernel

    @classmethod
    def from_edge_array(cls, n: int, us: np.ndarray,
                        vs: np.ndarray) -> "CsrKernel":
        kernel = cls(n)
        if us.size:
            src = np.concatenate([us, vs]).astype(np.int64, copy=False)
            dst = np.concatenate([vs, us]).astype(np.int64, copy=False)
            keys = src * n + dst
            keys.sort()
            kernel._set_from_keys(keys)
        return kernel

    # ------------------------------------------------------------------
    # Native triangle accelerators (dispatched by repro.graphs.triangles)
    # ------------------------------------------------------------------
    def _upper_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Strictly-upper (u, v > u) edge arrays, sorted by (u, v)."""
        src = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        )
        dst = self._indices.astype(np.int64, copy=False)
        keep = dst > src
        return src[keep], dst[keep]

    def _wedge_scan(self, mode: str):
        """Shared merge-intersection scan behind the three natives.

        Enumerates closed wedges (u, v, w): (u, v) a strictly-upper
        edge ascending, w ∈ N⁺(v), membership of (u, w) tested by
        ``searchsorted`` against the sorted upper-edge keys.  The hit
        stream is every triangle exactly once in canonical
        lexicographic (u, v, w) order — identical values and order to
        the generic int-row algorithms.
        """
        self._compact()
        empty_result = {"count": 0, "find": None, "pack": []}[mode]
        eu, ev = self._upper_arrays()
        m_up = int(eu.size)
        if m_up == 0:
            return empty_result
        n = self._n
        up_counts = np.bincount(eu, minlength=n)
        up_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(up_counts, out=up_indptr[1:])
        edge_keys = eu * n + ev
        reps = up_counts[ev]
        total_wedges = int(reps.sum())
        words = max(1, (n + 63) >> 6)
        if total_wedges > _DENSE_FALLBACK_FACTOR * m_up * words:
            return NotImplemented
        if total_wedges == 0:
            return empty_result
        cum = np.cumsum(reps)
        count = 0
        triangles: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        e0 = 0
        consumed = 0
        while e0 < m_up:
            e1 = int(np.searchsorted(cum, consumed + _PAIR_BATCH, "right"))
            e1 = max(e1, e0 + 1)
            br = reps[e0:e1]
            batch_total = int(cum[e1 - 1]) - consumed
            consumed = int(cum[e1 - 1])
            if batch_total:
                inner = np.arange(batch_total, dtype=np.int64)
                group_start = np.concatenate(
                    ([0], np.cumsum(br[:-1]))
                )
                offsets = inner - np.repeat(group_start, br)
                ws = ev[np.repeat(up_indptr[ev[e0:e1]], br) + offsets]
                wu = np.repeat(eu[e0:e1], br)
                probe_keys = wu * n + ws
                pos = np.searchsorted(edge_keys, probe_keys)
                pos[pos >= m_up] = m_up - 1
                hit = edge_keys[pos] == probe_keys
                if mode == "count":
                    count += int(hit.sum(dtype=np.int64))
                elif hit.any():
                    wv = np.repeat(ev[e0:e1], br)
                    if mode == "find":
                        first = int(np.argmax(hit))
                        return (
                            int(wu[first]), int(wv[first]), int(ws[first])
                        )
                    triangles.append((wu[hit], wv[hit], ws[hit]))
            e0 = e1
        if mode == "count":
            return count
        if mode == "find":
            return None
        return self._replay_greedy(triangles)

    @staticmethod
    def _replay_greedy(
        triangles: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> list[tuple[int, int, int]]:
        """Lexicographic greedy over the canonical triangle stream.

        Mirrors the generic greedy exactly; used-edge bookkeeping is
        per-vertex sets rather than int masks so a packing at n = 10^6
        never allocates megabit bignums.
        """
        used: dict[int, set[int]] = {}
        packing: list[tuple[int, int, int]] = []
        for batch_u, batch_v, batch_w in triangles:
            for u, v, w in zip(
                batch_u.tolist(), batch_v.tolist(), batch_w.tolist()
            ):
                used_u = used.get(u)
                if used_u is not None and (v in used_u or w in used_u):
                    continue
                used_v = used.get(v)
                if used_v is not None and w in used_v:
                    continue
                for a, b in ((u, v), (u, w), (v, w)):
                    used.setdefault(a, set()).add(b)
                    used.setdefault(b, set()).add(a)
                packing.append((u, v, w))
        return packing

    def count_triangles(self):
        """#triangles via merge-intersection; ``NotImplemented`` dense."""
        return self._wedge_scan("count")

    def find_triangle(self):
        """First triangle in the generic order, or None.

        The hit stream is lexicographically sorted and the generic
        edge-scan's first answer is the lexicographic minimum (see
        :meth:`PackedKernel.find_triangle`'s argument), so the first
        batch hit is the generic answer — with the early exit intact.
        """
        return self._wedge_scan("find")

    def greedy_triangle_packing(self):
        """The generic greedy packing, replayed from the hit stream."""
        return self._wedge_scan("pack")


register_kernel("csr", CsrKernel)

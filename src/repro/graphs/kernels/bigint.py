"""The bignum mask kernel: one arbitrary-precision int per vertex.

This is the PR 2 bitset representation, refactored behind the
:class:`~repro.graphs.kernels.base.MaskKernel` protocol: bit ``v`` of
``rows()[u]`` is set iff the edge ``{u, v}`` exists.  CPython executes
``&``/``|``/``bit_count`` over 30-bit digits word-at-a-time in C, so a
common-neighbourhood probe is a single allocation-plus-scan — effectively
memory-bound — which keeps this kernel optimal up to tens of thousands
of vertices and makes it the executable specification the packed kernel
is differential-pinned against.

Because the int rows *are* the exchange format, ``rows()`` returns the
live list (no conversion) and ``from_rows`` just materialises the list —
both directions of the conversion seam are free here.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator

from repro.graphs.kernels.base import Edge, iter_bits, register_kernel

__all__ = ["BigintKernel"]


class BigintKernel:
    """List-of-bignums adjacency storage (see module docstring)."""

    name = "bigint"

    __slots__ = ("_n", "_rows")

    def __init__(self, n: int) -> None:
        self._n = n
        self._rows: list[int] = [0] * n

    @property
    def n(self) -> int:
        return self._n

    # -- mutation ------------------------------------------------------
    def set_edge(self, u: int, v: int) -> bool:
        rows = self._rows
        if rows[u] >> v & 1:
            return False
        rows[u] |= 1 << v
        rows[v] |= 1 << u
        return True

    def clear_edge(self, u: int, v: int) -> bool:
        rows = self._rows
        if not rows[u] >> v & 1:
            return False
        rows[u] &= ~(1 << v)
        rows[v] &= ~(1 << u)
        return True

    def merge_row(self, u: int, mask: int) -> int:
        rows = self._rows
        new = mask & ~rows[u]
        if not new:
            return 0
        rows[u] |= new
        bit_u = 1 << u
        for v in iter_bits(new):
            rows[v] |= bit_u
        return new.bit_count()

    # -- queries -------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._rows[u] >> v & 1)

    def row(self, u: int) -> int:
        return self._rows[u]

    def rows(self) -> list[int]:
        # The live list — hot loops index it for free; treat as READ-ONLY.
        return self._rows

    def row_and(self, u: int, v: int) -> int:
        return self._rows[u] & self._rows[v]

    def popcount(self, u: int) -> int:
        return self._rows[u].bit_count()

    def popcounts(self) -> list[int]:
        return [row.bit_count() for row in self._rows]

    def memory_bytes(self) -> int:
        return sum(sys.getsizeof(row) for row in self._rows)

    def iter_edges(self) -> Iterator[Edge]:
        for u, mask in enumerate(self._rows):
            upper = mask >> (u + 1)
            while upper:
                low = upper & -upper
                yield (u, u + low.bit_length())
                upper ^= low

    # -- whole-kernel operations ---------------------------------------
    def copy(self) -> "BigintKernel":
        clone = BigintKernel.__new__(BigintKernel)
        clone._n = self._n
        clone._rows = self._rows.copy()
        return clone

    def induced(self, vertex_mask: int) -> tuple["BigintKernel", int]:
        clone = BigintKernel(self._n)
        rows = self._rows
        out = clone._rows
        total_degree = 0
        for u in iter_bits(vertex_mask):
            row = rows[u] & vertex_mask
            out[u] = row
            total_degree += row.bit_count()
        return clone, total_degree // 2

    def union_with(self, other: "BigintKernel") -> tuple["BigintKernel", int]:
        merged = BigintKernel(self._n)
        out = merged._rows
        other_rows = other._rows
        total_degree = 0
        for u, row in enumerate(self._rows):
            row |= other_rows[u]
            out[u] = row
            total_degree += row.bit_count()
        return merged, total_degree // 2

    def rows_equal(self, other: "BigintKernel") -> bool:
        return self._rows == other._rows

    @classmethod
    def from_rows(cls, n: int, rows: Iterable[int]) -> "BigintKernel":
        kernel = cls(n)
        kernel._rows[:] = rows
        if len(kernel._rows) != n:
            raise ValueError(
                f"expected {n} rows, got {len(kernel._rows)}"
            )
        return kernel

    @classmethod
    def from_edge_array(cls, n: int, us, vs) -> "BigintKernel":
        """Bulk-build from canonical numpy edge arrays.

        Edges group by endpoint after one lexsort; each vertex's row
        is assembled once in a byte buffer (O(max_neighbour/8)) rather
        than through per-edge bignum reallocation.  numpy is imported
        here, not module-wide: this entry point is only reachable from
        the vectorized generation plane, which already requires it.
        """
        import numpy as np

        kernel = cls(n)
        if len(us) == 0:
            return kernel
        src = np.concatenate([us, vs])
        dst = np.concatenate([vs, us])
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        boundaries = np.nonzero(np.diff(src))[0] + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [src.size]))
        rows = kernel._rows
        for a, b in zip(starts.tolist(), stops.tolist()):
            neighbours = dst[a:b]
            buf = np.zeros((int(neighbours[-1]) >> 3) + 1, dtype=np.uint8)
            np.bitwise_or.at(
                buf,
                neighbours >> 3,
                np.uint8(1) << (neighbours & 7).astype(np.uint8),
            )
            rows[int(src[a])] = int.from_bytes(buf.tobytes(), "little")
        return kernel


register_kernel("bigint", BigintKernel)

"""Executable checks of the Section 3.2 input-analysis lemmas.

The unrestricted protocol's correctness rests on a chain of combinatorial
lemmas about epsilon-far graphs.  Each function here evaluates one lemma's
inequality on a concrete graph and returns a :class:`LemmaCheck` with both
sides, so tests (and curious users) can watch the chain hold on real
instances instead of trusting the proofs blindly:

* Lemma 3.4 — size bounds on a full bucket;
* Corollary 3.6 — lower bound on |F(B_i)| for a full bucket;
* Lemma 3.7 / 3.8 — full-vertex density within (r-)neighbourhoods;
* Lemma 3.9 — the extended birthday paradox (empirical success rate);
* Lemma 3.11 — removing the high-degree-pair edges keeps the graph
  (ε/2)-far, with ≥ εnd/2 disjoint vees on low-degree vertices;
* Lemma 3.12 — d_l <= d⁻(B_min) <= d_h brackets the minimal full bucket.

Checks return "holds" vacuously when their premise (e.g. "B_i is full")
fails, mirroring how the lemmas are used.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.buckets import (
    bucket_bounds,
    buckets,
    degree_thresholds,
    disjoint_vee_count,
    full_vertices_in_bucket,
    is_full_bucket,
    log2n,
    min_full_bucket,
    neighborhood,
)
from repro.graphs.graph import Graph, mask_of

__all__ = [
    "LemmaCheck",
    "check_lemma_3_4",
    "check_corollary_3_6",
    "check_lemma_3_7",
    "check_lemma_3_9",
    "check_lemma_3_11",
    "check_lemma_3_12",
    "check_all",
]


@dataclass(frozen=True)
class LemmaCheck:
    """One lemma evaluation: name, the two sides, verdict, context."""

    lemma: str
    holds: bool
    lhs: float
    rhs: float
    note: str = ""

    def __str__(self) -> str:
        status = "ok" if self.holds else "VIOLATED"
        return (
            f"{self.lemma}: {status} ({self.lhs:.3f} vs {self.rhs:.3f}) "
            f"{self.note}"
        )


def check_lemma_3_4(graph: Graph, bucket: int, epsilon: float) -> LemmaCheck:
    """Full-bucket size bounds:
    εnd/(log n · d⁺) <= |B_i| <= min(n, 2nd/d⁻) (upper holds always)."""
    n, d = graph.n, graph.average_degree()
    members = buckets(graph).get(bucket, [])
    size = len(members)
    d_minus, d_plus = bucket_bounds(max(1, bucket))
    upper = min(n, 2.0 * n * d / max(1, d_minus))
    if size > upper + 1e-9:
        return LemmaCheck(
            "Lemma 3.4 (upper)", False, size, upper,
            note=f"bucket {bucket}",
        )
    if not is_full_bucket(graph, bucket, epsilon):
        return LemmaCheck(
            "Lemma 3.4", True, size, upper,
            note=f"bucket {bucket} not full: lower bound vacuous",
        )
    lower = epsilon * n * d / (log2n(n) * d_plus)
    return LemmaCheck(
        "Lemma 3.4", size >= lower - 1e-9, size, lower,
        note=f"full bucket {bucket}, |B|={size}",
    )


def check_corollary_3_6(graph: Graph, bucket: int,
                        epsilon: float) -> LemmaCheck:
    """|F(B_i)| >= ε²·d·n / (12 log²n · d⁺) for a full bucket."""
    if not is_full_bucket(graph, bucket, epsilon):
        return LemmaCheck(
            "Corollary 3.6", True, 0.0, 0.0,
            note=f"bucket {bucket} not full: vacuous",
        )
    n, d = graph.n, graph.average_degree()
    _, d_plus = bucket_bounds(max(1, bucket))
    full = len(full_vertices_in_bucket(graph, bucket, epsilon))
    lower = epsilon ** 2 * d * n / (12.0 * log2n(n) ** 2 * d_plus)
    return LemmaCheck(
        "Corollary 3.6", full >= lower - 1e-9, full, lower,
        note=f"bucket {bucket}",
    )


def check_lemma_3_7(graph: Graph, bucket: int, epsilon: float) -> LemmaCheck:
    """|F(B_i)| / |N(B_i)| >= ε² / (312 log²n) for a full bucket."""
    if not is_full_bucket(graph, bucket, epsilon):
        return LemmaCheck(
            "Lemma 3.7", True, 0.0, 0.0,
            note=f"bucket {bucket} not full: vacuous",
        )
    partition = buckets(graph)
    neighborhood_size = sum(
        len(partition.get(i, [])) for i in neighborhood(bucket)
    )
    full = len(full_vertices_in_bucket(graph, bucket, epsilon))
    if neighborhood_size == 0:
        return LemmaCheck("Lemma 3.7", True, 0.0, 0.0, note="empty N(B_i)")
    ratio = full / neighborhood_size
    bound = epsilon ** 2 / (312.0 * log2n(graph.n) ** 2)
    return LemmaCheck(
        "Lemma 3.7", ratio >= bound - 1e-12, ratio, bound,
        note=f"bucket {bucket}",
    )


def check_lemma_3_9(graph: Graph, source: int, trials: int = 60,
                    delta_prime: float = 0.2, seed: int = 0) -> LemmaCheck:
    """Extended birthday paradox: sampling each incident edge with
    probability p = 4 sqrt(ln 1/δ') / sqrt(α d(v)) catches a vee with
    empirical rate >= 1 - δ' (premise: an α-fraction of v's edges form
    disjoint vees, α >= 2/d(v))."""
    degree = graph.degree(source)
    vee_pairs = disjoint_vee_count(graph, source)
    if degree < 2 or vee_pairs == 0:
        return LemmaCheck(
            "Lemma 3.9", True, 0.0, 0.0, note="no vees at source: vacuous"
        )
    alpha = 2.0 * vee_pairs / degree
    p = min(
        1.0,
        4.0 * math.sqrt(math.log(1.0 / delta_prime))
        / math.sqrt(alpha * degree),
    )
    rng = random.Random(seed)
    neighbours = sorted(graph.neighbors(source))
    hits = 0
    for _ in range(trials):
        sampled = [u for u in neighbours if rng.random() < p]
        # A sampled vee closes iff two sampled neighbours are adjacent:
        # one mask intersection per sampled vertex decides the trial.
        sampled_mask = mask_of(sampled)
        found = any(
            graph.neighbor_mask(u) & sampled_mask for u in sampled
        )
        hits += found
    rate = hits / trials
    return LemmaCheck(
        "Lemma 3.9", rate >= 1.0 - delta_prime - 0.1, rate,
        1.0 - delta_prime,
        note=f"deg={degree}, alpha={alpha:.2f}, p={p:.2f}",
    )


def check_lemma_3_11(graph: Graph, epsilon: float) -> LemmaCheck:
    """Dropping edges between degree->d_h endpoints keeps many vees on
    low-degree vertices: Σ_{v in V_l} vees(v) >= ε n d / 2 · (certified)."""
    n, d = graph.n, graph.average_degree()
    if d <= 0:
        return LemmaCheck("Lemma 3.11", True, 0.0, 0.0, note="empty graph")
    d_h = math.sqrt(n * d / epsilon)
    low_vertices = [v for v in range(n) if graph.degree(v) <= d_h]
    low_vees = sum(disjoint_vee_count(graph, v) for v in low_vertices)
    total_vees = sum(disjoint_vee_count(graph, v) for v in range(n))
    if total_vees == 0:
        return LemmaCheck(
            "Lemma 3.11", True, 0.0, 0.0, note="no vees: vacuous"
        )
    # The lemma's quantitative form assumes the ε-far promise; the robust
    # checkable consequence is that at least half the vee mass survives
    # on V_l.
    return LemmaCheck(
        "Lemma 3.11", low_vees >= 0.5 * total_vees, low_vees,
        0.5 * total_vees,
        note=f"d_h={d_h:.0f}, |V_l|={len(low_vertices)}",
    )


def check_lemma_3_12(graph: Graph, epsilon: float) -> LemmaCheck:
    """d_l <= d⁻(B_min) <= d_h for the minimal full bucket."""
    minimum = min_full_bucket(graph, epsilon)
    if minimum is None:
        return LemmaCheck(
            "Lemma 3.12", True, 0.0, 0.0, note="no full bucket: vacuous"
        )
    thresholds = degree_thresholds(
        graph.n, max(graph.average_degree(), 1e-9), epsilon
    )
    d_minus, _ = bucket_bounds(max(1, minimum))
    # The bucket containing d_l may straddle it; compare against the
    # bucket band rather than the raw point.
    lower_ok = bucket_bounds(max(1, minimum))[1] >= thresholds.d_low
    upper_ok = d_minus <= thresholds.d_high + 1e-9
    return LemmaCheck(
        "Lemma 3.12", lower_ok and upper_ok, float(d_minus),
        thresholds.d_high,
        note=(
            f"B_min={minimum}, band=[{d_minus}, "
            f"{bucket_bounds(max(1, minimum))[1]}), "
            f"d_l={thresholds.d_low:.2f}, d_h={thresholds.d_high:.2f}"
        ),
    )


def check_all(graph: Graph, epsilon: float, seed: int = 0
              ) -> list[LemmaCheck]:
    """Run the whole Section 3.2 chain on one graph."""
    checks: list[LemmaCheck] = []
    for bucket in sorted(buckets(graph)):
        if bucket == 0:
            continue
        checks.append(check_lemma_3_4(graph, bucket, epsilon))
        checks.append(check_corollary_3_6(graph, bucket, epsilon))
        checks.append(check_lemma_3_7(graph, bucket, epsilon))
    # Birthday paradox at the busiest vee source.
    busiest = max(
        range(graph.n),
        key=lambda v: disjoint_vee_count(graph, v),
        default=None,
    )
    if busiest is not None:
        checks.append(check_lemma_3_9(graph, busiest, seed=seed))
    checks.append(check_lemma_3_11(graph, epsilon))
    checks.append(check_lemma_3_12(graph, epsilon))
    return checks

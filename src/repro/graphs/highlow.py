"""Definition 7: the high/low degree split V_h / V_l and the graph G_l.

``V_h`` holds the vertices of degree at least ``d_h = sqrt(nd/ε)``; ``E_h``
the edges with *both* endpoints in V_h; ``G_l`` is the input with E_h
removed.  Lemma 3.11: because |V_h| <= nd/d_h = sqrt(ε n d), E_h holds
fewer than εnd/2 edges, so G_l stays (ε/2)-far from triangle-free and at
least εnd/2 disjoint triangle-vees touch low-degree vertices — the reason
the unrestricted protocol can cap its bucket iteration at d_h.

These helpers make the split a first-class object so protocols, lemma
checks and tests share one definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.graph import Edge, Graph, iter_bits, mask_of

__all__ = ["HighLowSplit", "high_low_split"]


@dataclass(frozen=True)
class HighLowSplit:
    """The Definition 7 decomposition of one input graph."""

    threshold: float
    """d_h = sqrt(n d / ε)."""
    high_vertices: frozenset[int]
    low_vertices: frozenset[int]
    high_high_edges: frozenset[Edge]
    """E_h: both endpoints high-degree."""
    low_graph: Graph
    """G_l: the input with E_h removed."""

    @property
    def num_high(self) -> int:
        return len(self.high_vertices)

    def removed_edge_fraction(self, total_edges: int) -> float:
        if total_edges == 0:
            return 0.0
        return len(self.high_high_edges) / total_edges


def high_low_split(graph: Graph, epsilon: float) -> HighLowSplit:
    """Compute V_h, V_l, E_h and G_l for one graph."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    n = graph.n
    d = graph.average_degree()
    threshold = math.sqrt(n * max(d, 1e-12) / epsilon)
    high = frozenset(
        v for v in range(n) if graph.degree(v) >= threshold
    )
    low = frozenset(range(n)) - high
    # E_h and G_l in one mask pass: a high vertex's high-high partners
    # are its adjacency row intersected with the high-vertex mask.
    high_mask = mask_of(high)
    high_high_edges: list[Edge] = []
    low_graph = graph.copy()
    for u in iter_bits(high_mask):
        partners = (graph.neighbor_mask(u) & high_mask) >> (u + 1)
        while partners:
            bit = partners & -partners
            v = u + bit.bit_length()
            high_high_edges.append((u, v))
            low_graph.remove_edge(u, v)
            partners ^= bit
    high_high = frozenset(high_high_edges)
    return HighLowSplit(
        threshold=threshold,
        high_vertices=high,
        low_vertices=low,
        high_high_edges=high_high,
        low_graph=low_graph,
    )

"""Reference ``set``-based graph backend for differential testing.

:class:`SetGraph` is the pre-bitset implementation of
:class:`~repro.graphs.graph.Graph` — one ``set[int]`` per vertex — kept as
an executable specification.  It exposes the same query API (including the
bulk mask primitives, computed the slow way), so:

* property tests drive random edge-op sequences through both backends and
  assert they never disagree (``tests/test_graph_kernel.py``),
* ``benchmarks/bench_graph_kernel.py`` measures the bitset kernel against
  this baseline on the reference grids,
* the reference triangle routines below (straight ports of the original
  set-based algorithms, order-normalized to ascending enumeration) pin
  down the outputs the rewritten hot paths must reproduce exactly.

Nothing in the production code imports this module.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graphs.graph import Edge, canonical_edge

__all__ = [
    "SetGraph",
    "find_triangle_reference",
    "iter_triangles_reference",
    "count_triangles_reference",
    "triangle_edges_reference",
    "greedy_triangle_packing_reference",
    "make_triangle_free_by_removal_reference",
]

Triangle = tuple[int, int, int]


class SetGraph:
    """Adjacency-``set`` graph with the :class:`Graph` query API."""

    __slots__ = ("_n", "_adjacency", "_edge_count")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adjacency: list[set[int]] = [set() for _ in range(n)]
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction ---------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        return sum(self.add_edge(u, v) for u, v in edges)

    def add_neighbors(self, u: int, mask: int) -> int:
        added = 0
        bits = 0
        while mask >> bits:
            if mask >> bits & 1:
                added += self.add_edge(u, bits)
            bits += 1
        return added

    def remove_edge(self, u: int, v: int) -> bool:
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1
        return True

    def copy(self) -> "SetGraph":
        clone = SetGraph(self._n)
        clone._adjacency = [set(adj) for adj in self._adjacency]
        clone._edge_count = self._edge_count
        return clone

    # -- queries --------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adjacency[v])

    def neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(self._adjacency[v])

    def neighbor_mask(self, v: int) -> int:
        self._check_vertex(v)
        mask = 0
        for u in self._adjacency[v]:
            mask |= 1 << u
        return mask

    def common_neighbors(self, u: int, v: int) -> int:
        self._check_vertex(u)
        self._check_vertex(v)
        mask = 0
        for w in self._adjacency[u] & self._adjacency[v]:
            mask |= 1 << w
        return mask

    def average_degree(self) -> float:
        if self._n == 0:
            return 0.0
        return 2.0 * self._edge_count / self._n

    def edges(self) -> Iterator[Edge]:
        """Canonical edges, ascending (order-normalized for comparisons)."""
        for u in range(self._n):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def degrees(self) -> list[int]:
        return [len(adj) for adj in self._adjacency]

    def isolated_vertices(self) -> list[int]:
        return [v for v in range(self._n) if not self._adjacency[v]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetGraph):
            return NotImplemented
        return self._n == other._n and self._adjacency == other._adjacency

    def __repr__(self) -> str:
        return f"SetGraph(n={self._n}, m={self._edge_count})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} outside range [0, {self._n})")


# ----------------------------------------------------------------------
# Reference triangle routines (original set-based algorithms)
# ----------------------------------------------------------------------
def find_triangle_reference(graph) -> Triangle | None:
    """First triangle by ascending (edge, apex) enumeration, or None."""
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        if common:
            w = min(common)
            x, y, z = sorted((u, v, w))
            return (x, y, z)
    return None


def iter_triangles_reference(graph) -> Iterator[Triangle]:
    """Every triangle exactly once, ascending (u < v < w)."""
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in sorted(common):
            if w > v:
                yield (u, v, w)


def count_triangles_reference(graph) -> int:
    return sum(1 for _ in iter_triangles_reference(graph))


def triangle_edges_reference(graph) -> set[Edge]:
    result: set[Edge] = set()
    for a, b, c in iter_triangles_reference(graph):
        result.add((a, b))
        result.add((a, c))
        result.add((b, c))
    return result


def greedy_triangle_packing_reference(graph) -> list[Triangle]:
    """Greedy maximal edge-disjoint packing over ascending enumeration."""
    used_edges: set[Edge] = set()
    packing: list[Triangle] = []
    for a, b, c in iter_triangles_reference(graph):
        edges = ((a, b), (a, c), (b, c))
        if any(edge in used_edges for edge in edges):
            continue
        used_edges.update(edges)
        packing.append((a, b, c))
    return packing


def make_triangle_free_by_removal_reference(graph):
    """Busiest-edge removal, recounting all triangles each round."""
    work = graph.copy()
    removed = 0
    while True:
        counts: dict[Edge, int] = {}
        for a, b, c in iter_triangles_reference(work):
            for edge in ((a, b), (a, c), (b, c)):
                counts[edge] = counts.get(edge, 0) + 1
        if not counts:
            return work, removed
        busiest = max(counts, key=lambda edge: (counts[edge], edge))
        work.remove_edge(*busiest)
        removed += 1

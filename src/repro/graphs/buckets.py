"""Degree bucketing and the Section 3.2 input-analysis toolkit, executable.

The unrestricted protocol's correctness rests on a chain of combinatorial
facts about epsilon-far graphs (Lemmas 3.4-3.12).  This module makes every
definition in that chain computable, so tests can check the lemmas on real
instances and the protocol can be instrumented:

* ``bucket_index`` / ``buckets`` — the partition
  ``B_i = {v : 3^(i-1) <= deg(v) < 3^i}`` with ``B_0`` the isolated vertices
  (Section 3.2).
* ``disjoint_vee_count(v)`` — size of a maximum set of edge-disjoint
  triangle-vees sourced at v, computed as a maximum matching in the graph
  induced on N(v) (each vee uses two distinct incident edges; the closing
  edge identifies a neighbour pair).
* ``is_full_vertex`` (Definition 5), ``full_vertices_in_bucket`` (F(B_i)).
* ``bucket_vee_count`` and ``is_full_bucket`` (Definition 4) — vees from
  different sources need not be edge-disjoint, so the per-source matchings
  simply add up.
* ``neighborhood`` N(B_i) and ``r_neighborhood`` N_r(B_i) (Definition 6).
* ``player_suspected_bucket`` — the player-side set
  ``B~_i^j = {v : 3^i / k <= d_j(v) <= 3^(i+1)}`` from Section 3.3.
* ``degree_thresholds`` — d_l = eps*d / (2 log n) and d_h = sqrt(n*d/eps)
  (Definitions 7 and 8), the bucket range the protocol iterates over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.graphs.graph import Edge, Graph, iter_bits

__all__ = [
    "log2n",
    "bucket_index",
    "bucket_bounds",
    "buckets",
    "num_buckets",
    "disjoint_vee_count",
    "is_full_vertex",
    "full_vertices",
    "full_vertices_in_bucket",
    "bucket_vee_count",
    "is_full_bucket",
    "full_buckets",
    "min_full_bucket",
    "neighborhood",
    "r_neighborhood_indices",
    "player_suspected_bucket",
    "DegreeThresholds",
    "degree_thresholds",
]


def log2n(n: int) -> float:
    """The ``log n`` of the paper's formulas, floored at 1 for tiny n."""
    return max(1.0, math.log2(max(2, n)))


def bucket_index(degree: int) -> int:
    """Index i such that 3^(i-1) <= degree < 3^i; isolated vertices get 0."""
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    if degree == 0:
        return 0
    index = int(math.floor(math.log(degree, 3))) + 1
    # Float log is off by one ulp at exact powers of 3; correct in
    # integers so the invariant 3^(i-1) <= degree < 3^i always holds.
    while 3 ** index <= degree:
        index += 1
    while 3 ** (index - 1) > degree:
        index -= 1
    return index


def bucket_bounds(index: int) -> tuple[int, int]:
    """(d-, d+) = (3^(i-1), 3^i) for bucket i >= 1; (0, 0) for bucket 0."""
    if index < 0:
        raise ValueError(f"bucket index must be non-negative, got {index}")
    if index == 0:
        return (0, 0)
    return (3 ** (index - 1), 3 ** index)


def num_buckets(n: int) -> int:
    """Number of possible non-empty bucket indices for an n-vertex graph."""
    if n <= 1:
        return 1
    return bucket_index(n - 1) + 1


def buckets(graph: Graph) -> dict[int, list[int]]:
    """The full bucket partition; only non-empty buckets appear."""
    result: dict[int, list[int]] = {}
    for v in range(graph.n):
        result.setdefault(bucket_index(graph.degree(v)), []).append(v)
    return result


# ----------------------------------------------------------------------
# Vee counting (maximum matching on the neighbourhood graph)
# ----------------------------------------------------------------------
def disjoint_vee_count(graph: Graph, source: int, exact: bool = True) -> int:
    """Max number of edge-disjoint triangle-vees sourced at ``source``.

    A vee at v is a pair of incident edges {v,u}, {v,w} with {u,w} in E;
    edge-disjoint vees at the same source use disjoint neighbour pairs,
    i.e. they form a matching in the graph induced on N(v).  With
    ``exact=True`` a maximum matching is computed (via networkx for
    non-trivial neighbourhoods); otherwise a greedy maximal matching gives
    a certified lower bound at half the cost.
    """
    nmask = graph.neighbor_mask(source)
    if nmask.bit_count() < 2:
        return 0
    # Closing edges = edges of the graph induced on N(source): one mask
    # intersection per neighbour instead of a has_edge per pair.
    closing: list[Edge] = []
    for u in iter_bits(nmask):
        partners = (graph.neighbor_mask(u) & nmask) >> (u + 1)
        while partners:
            low = partners & -partners
            closing.append((u, u + low.bit_length()))
            partners ^= low
    if not closing:
        return 0
    if not exact:
        used: set[int] = set()
        count = 0
        for u, w in closing:
            if u in used or w in used:
                continue
            used.add(u)
            used.add(w)
            count += 1
        return count
    try:
        import networkx as nx
    except ImportError as exc:
        raise ImportError(
            "disjoint_vee_count(exact=True) needs networkx (the optional "
            "`reference` extra: pip install -e '.[reference]'); pass "
            "exact=False for the dependency-free greedy lower bound"
        ) from exc

    nx_graph = nx.Graph(closing)
    matching = nx.max_weight_matching(nx_graph, maxcardinality=True)
    return len(matching)


def is_full_vertex(graph: Graph, v: int, epsilon: float) -> bool:
    """Definition 5: >= eps/(12 log n) of v's edges form disjoint vees.

    A set of s disjoint vees at v occupies 2s of v's incident edges.
    """
    degree = graph.degree(v)
    if degree == 0:
        return False
    fraction = epsilon / (12.0 * log2n(graph.n))
    return 2 * disjoint_vee_count(graph, v) >= fraction * degree


def full_vertices(graph: Graph, epsilon: float) -> list[int]:
    """F(V): all full vertices."""
    return [v for v in range(graph.n) if is_full_vertex(graph, v, epsilon)]


def full_vertices_in_bucket(graph: Graph, index: int, epsilon: float
                            ) -> list[int]:
    """F(B_i): the full vertices of bucket ``index``."""
    members = buckets(graph).get(index, [])
    return [v for v in members if is_full_vertex(graph, v, epsilon)]


def bucket_vee_count(graph: Graph, index: int) -> int:
    """Disjoint triangle-vees adjacent to bucket ``index``.

    Vees with different sources count independently (Section 3.2's
    disjointness only requires edge-disjointness at equal sources), so the
    per-source maximum matchings simply add up.
    """
    members = buckets(graph).get(index, [])
    return sum(disjoint_vee_count(graph, v) for v in members)


def _fullness_threshold(graph: Graph, epsilon: float) -> float:
    n = graph.n
    d = graph.average_degree()
    return epsilon * n * d / (2.0 * log2n(n))


def is_full_bucket(graph: Graph, index: int, epsilon: float) -> bool:
    """Definition 4: bucket holds >= eps*n*d / (2 log n) disjoint vees."""
    return bucket_vee_count(graph, index) >= _fullness_threshold(graph, epsilon)


def full_buckets(graph: Graph, epsilon: float) -> list[int]:
    """Indices of all full buckets, ascending."""
    return sorted(
        index
        for index in buckets(graph)
        if is_full_bucket(graph, index, epsilon)
    )


def min_full_bucket(graph: Graph, epsilon: float) -> int | None:
    """B_min: the full bucket of lowest degree, or None if none is full."""
    full = full_buckets(graph, epsilon)
    return full[0] if full else None


def neighborhood(index: int) -> tuple[int, ...]:
    """N(B_i) = B_{i-1} ∪ B_i ∪ B_{i+1} as bucket indices (clipped at 0)."""
    return tuple(i for i in (index - 1, index, index + 1) if i >= 0)


def r_neighborhood_indices(index: int, r: int, n: int) -> tuple[int, ...]:
    """N_r(B_i): indices j >= i - log_3(r), up to the top bucket for n."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    low = index - int(math.ceil(math.log(r, 3))) if r > 1 else index
    low = max(0, low)
    return tuple(range(low, num_buckets(n)))


def player_suspected_bucket(view_degrees: dict[int, int], index: int,
                            k: int) -> set[int]:
    """B~_i^j: vertices a player may reasonably suspect are in B_i.

    ``view_degrees`` maps vertex -> d_j(v), the degree in player j's input
    (vertices with d_j = 0 may be omitted).  In this module's convention
    ``B_i = [3^(i-1), 3^i)``, so a vertex qualifies when
    ``3^(i-1) / k <= d_j(v) <= 3^i``: by pigeonhole some player holds at
    least deg(v)/k of v's edges, and no player holds more than deg(v).
    (The paper states the same bounds in Section 3.3's shifted indexing.)
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    lower = (3 ** max(0, index - 1)) / k
    upper = 3 ** index
    return {
        v for v, deg in view_degrees.items() if lower <= deg <= upper
    }


@dataclass(frozen=True)
class DegreeThresholds:
    """The protocol's bucket iteration range (Definitions 7 and 8)."""

    d_low: float
    """d_l = eps * d / (2 log n): below this no bucket can be full."""
    d_high: float
    """d_h = sqrt(n d / eps): vees above this degree can be ignored."""

    def bucket_range(self, n: int) -> range:
        """Bucket indices whose degree band intersects [d_low, d_high]."""
        first = bucket_index(max(1, int(self.d_low)))
        last = bucket_index(max(1, int(math.ceil(self.d_high))))
        return range(first, min(last, num_buckets(n) - 1) + 1)


def degree_thresholds(n: int, d: float, epsilon: float) -> DegreeThresholds:
    """Compute (d_l, d_h) for an n-vertex graph of average degree d."""
    if d <= 0:
        raise ValueError(f"average degree must be positive, got {d}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    d_low = epsilon * d / (2.0 * log2n(n))
    d_high = math.sqrt(n * d / epsilon)
    return DegreeThresholds(d_low=d_low, d_high=d_high)


def degrees_from_view(edges: Iterable[Edge]) -> dict[int, int]:
    """Per-vertex degree of an edge view (d_j in the paper's notation)."""
    result: dict[int, int] = {}
    for u, v in edges:
        result[u] = result.get(u, 0) + 1
        result[v] = result.get(v, 0) + 1
    return result


__all__.append("degrees_from_view")

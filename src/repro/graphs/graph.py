"""Compact undirected graph used throughout the reproduction.

Vertices are integers ``0 .. n-1``; edges are canonical ordered pairs
``(u, v)`` with ``u < v``.  The class is deliberately small and dependency
free — protocols manipulate millions of edge membership queries, and the
representation is a *bitset kernel*: each vertex stores its neighbourhood
as one arbitrary-precision Python ``int`` whose bit ``v`` is set iff the
edge ``{u, v}`` exists.  Consequences:

* ``has_edge`` is a shift-and-test,
* ``degree`` is ``int.bit_count()``,
* common neighbourhoods (the triangle hot path) are a single ``&`` of two
  ints, executed word-at-a-time in C instead of element-wise in Python,
* ``copy`` is a shallow list copy (ints are immutable).

The paper's model hands each player a *characteristic vector* over potential
edges; :class:`Graph` is the ground-truth union of those vectors, and
:mod:`repro.graphs.partition` produces the per-player views.

Bulk primitives (:meth:`Graph.neighbor_mask`, :meth:`Graph.common_neighbors`,
:meth:`Graph.add_edges`, :meth:`Graph.add_neighbors`, plus the module-level
:func:`iter_bits` / :func:`mask_of`) expose the masks directly so the
triangle layer, generators, bucketing, and the streaming reduction can stay
on the fast path without reaching into private state.  A pure-Python
``set``-based twin lives in :mod:`repro.graphs.reference` for differential
testing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Graph", "canonical_edge", "iter_bits", "mask_of"]

Edge = tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical representation of the undirected edge {u, v}."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(vertices: Iterable[int]) -> int:
    """The bitmask with exactly the bits in ``vertices`` set."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


class Graph:
    """Simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  Fixed at construction; the paper's model has a
        known vertex universe and only the edge set is distributed.
    edges:
        Optional iterable of edges (any orientation; canonicalized).
    """

    __slots__ = ("_n", "_adjacency", "_edge_count")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adjacency: list[int] = [0] * n
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert {u, v}; returns True if the edge was new."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        adjacency = self._adjacency
        if adjacency[u] >> v & 1:
            return False
        adjacency[u] |= 1 << v
        adjacency[v] |= 1 << u
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk insert; returns the number of edges that were new."""
        added = 0
        for u, v in edges:
            added += self.add_edge(u, v)
        return added

    def add_neighbors(self, u: int, mask: int) -> int:
        """Attach every vertex in ``mask`` to ``u``; returns #new edges.

        The bulk form generators use to commit a whole sampled row at
        once instead of edge-by-edge.
        """
        self._check_vertex(u)
        if mask < 0 or mask >> self._n:
            raise ValueError(
                f"neighbor mask has bits outside [0, {self._n})"
            )
        if mask >> u & 1:
            raise ValueError(f"self-loop ({u}, {u}) is not a valid edge")
        adjacency = self._adjacency
        new = mask & ~adjacency[u]
        if not new:
            return 0
        adjacency[u] |= new
        bit_u = 1 << u
        for v in iter_bits(new):
            adjacency[v] |= bit_u
        added = new.bit_count()
        self._edge_count += added
        return added

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete {u, v}; returns True if the edge was present."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        adjacency = self._adjacency
        if not adjacency[u] >> v & 1:
            return False
        adjacency[u] &= ~(1 << v)
        adjacency[v] &= ~(1 << u)
        self._edge_count -= 1
        return True

    def copy(self) -> "Graph":
        clone = Graph(self._n)
        clone._adjacency = self._adjacency.copy()
        clone._edge_count = self._edge_count
        return clone

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "Graph":
        return cls(n, edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(self._adjacency[u] >> v & 1)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return self._adjacency[v].bit_count()

    def neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(iter_bits(self._adjacency[v]))

    def neighbor_mask(self, v: int) -> int:
        """N(v) as a bitmask — the raw kernel word."""
        self._check_vertex(v)
        return self._adjacency[v]

    def adjacency_rows(self) -> list[int]:
        """The adjacency masks, indexed by vertex — treat as READ-ONLY.

        The hot loops (triangle layer, benchmarks) index this list
        directly to skip per-call bounds checks; mutating it would
        desynchronise the edge count and the symmetry invariant.
        """
        return self._adjacency

    def common_neighbors(self, u: int, v: int) -> int:
        """N(u) ∩ N(v) as a bitmask: one ``&`` of two ints."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._adjacency[u] & self._adjacency[v]

    def average_degree(self) -> float:
        """``2|E| / n`` — the ``d`` of the paper's complexity bounds."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._edge_count / self._n

    def edges(self) -> Iterator[Edge]:
        """All edges in canonical orientation, ascending."""
        for u, mask in enumerate(self._adjacency):
            upper = mask >> (u + 1)
            while upper:
                low = upper & -upper
                yield (u, u + low.bit_length())
                upper ^= low

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def degrees(self) -> list[int]:
        return [mask.bit_count() for mask in self._adjacency]

    def isolated_vertices(self) -> list[int]:
        return [v for v in range(self._n) if not self._adjacency[v]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph_edges(self, vertices: Iterable[int]) -> set[Edge]:
        """Edges with both endpoints in ``vertices`` (Section 3.1 primitive)."""
        vertex_mask = self._checked_mask(vertices)
        found: set[Edge] = set()
        for u in iter_bits(vertex_mask):
            inner = (self._adjacency[u] & vertex_mask) >> (u + 1)
            while inner:
                low = inner & -inner
                found.add((u, u + low.bit_length()))
                inner ^= low
        return found

    def edges_touching(self, vertices: Iterable[int]) -> set[Edge]:
        """Edges with at least one endpoint in ``vertices``."""
        vertex_mask = self._checked_mask(vertices)
        found: set[Edge] = set()
        for u in iter_bits(vertex_mask):
            for v in iter_bits(self._adjacency[u]):
                found.add((u, v) if u < v else (v, u))
        return found

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph, preserving vertex ids (others become isolated)."""
        vertex_mask = self._checked_mask(vertices)
        clone = Graph(self._n)
        total_degree = 0
        for u in iter_bits(vertex_mask):
            row = self._adjacency[u] & vertex_mask
            clone._adjacency[u] = row
            total_degree += row.bit_count()
        clone._edge_count = total_degree // 2
        return clone

    def union(self, other: "Graph") -> "Graph":
        if other.n != self._n:
            raise ValueError(
                f"vertex-count mismatch: {self._n} vs {other.n}"
            )
        merged = Graph(self._n)
        total_degree = 0
        for u in range(self._n):
            row = self._adjacency[u] | other._adjacency[u]
            merged._adjacency[u] = row
            total_degree += row.bit_count()
        merged._edge_count = total_degree // 2
        return merged

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adjacency == other._adjacency

    def __hash__(self) -> int:  # pragma: no cover - graphs used as dict keys rarely
        return hash((self._n, frozenset(self.edges())))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._edge_count})"

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (isolated vertices preserved)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} outside range [0, {self._n})")

    def _checked_mask(self, vertices: Iterable[int]) -> int:
        mask = 0
        for v in vertices:
            self._check_vertex(v)
            mask |= 1 << v
        return mask

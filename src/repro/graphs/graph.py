"""Compact undirected graph used throughout the reproduction.

Vertices are integers ``0 .. n-1``; edges are canonical ordered pairs
``(u, v)`` with ``u < v``.  The class is deliberately small and dependency
free — protocols manipulate millions of edge membership queries and the
adjacency-set representation keeps those O(1).

The paper's model hands each player a *characteristic vector* over potential
edges; :class:`Graph` is the ground-truth union of those vectors, and
:mod:`repro.graphs.partition` produces the per-player views.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Graph", "canonical_edge"]

Edge = tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical representation of the undirected edge {u, v}."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


class Graph:
    """Simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  Fixed at construction; the paper's model has a
        known vertex universe and only the edge set is distributed.
    edges:
        Optional iterable of edges (any orientation; canonicalized).
    """

    __slots__ = ("_n", "_adjacency", "_edge_count")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adjacency: list[set[int]] = [set() for _ in range(n)]
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert {u, v}; returns True if the edge was new."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edge_count += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete {u, v}; returns True if the edge was present."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1
        return True

    def copy(self) -> "Graph":
        clone = Graph(self._n)
        for u in range(self._n):
            clone._adjacency[u] = set(self._adjacency[u])
        clone._edge_count = self._edge_count
        return clone

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "Graph":
        return cls(n, edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adjacency[v])

    def neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(self._adjacency[v])

    def average_degree(self) -> float:
        """``2|E| / n`` — the ``d`` of the paper's complexity bounds."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._edge_count / self._n

    def edges(self) -> Iterator[Edge]:
        """All edges in canonical orientation, ascending."""
        for u in range(self._n):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def degrees(self) -> list[int]:
        return [len(adj) for adj in self._adjacency]

    def isolated_vertices(self) -> list[int]:
        return [v for v in range(self._n) if not self._adjacency[v]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph_edges(self, vertices: Iterable[int]) -> set[Edge]:
        """Edges with both endpoints in ``vertices`` (Section 3.1 primitive)."""
        vertex_set = set(vertices)
        found: set[Edge] = set()
        for u in vertex_set:
            self._check_vertex(u)
            for v in self._adjacency[u]:
                if v in vertex_set and u < v:
                    found.add((u, v))
        return found

    def edges_touching(self, vertices: Iterable[int]) -> set[Edge]:
        """Edges with at least one endpoint in ``vertices``."""
        vertex_set = set(vertices)
        found: set[Edge] = set()
        for u in vertex_set:
            self._check_vertex(u)
            for v in self._adjacency[u]:
                found.add(canonical_edge(u, v))
        return found

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph, preserving vertex ids (others become isolated)."""
        return Graph(self._n, self.induced_subgraph_edges(vertices))

    def union(self, other: "Graph") -> "Graph":
        if other.n != self._n:
            raise ValueError(
                f"vertex-count mismatch: {self._n} vs {other.n}"
            )
        merged = self.copy()
        for u, v in other.edges():
            merged.add_edge(u, v)
        return merged

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adjacency == other._adjacency

    def __hash__(self) -> int:  # pragma: no cover - graphs used as dict keys rarely
        return hash((self._n, frozenset(self.edges())))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._edge_count})"

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (isolated vertices preserved)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} outside range [0, {self._n})")

"""Compact undirected graph used throughout the reproduction.

Vertices are integers ``0 .. n-1``; edges are canonical ordered pairs
``(u, v)`` with ``u < v``.  The class is deliberately small and keeps
only the *semantics* — validation, edge counting, canonical orientation;
storage and bulk mask arithmetic live in a pluggable *mask kernel*
(:mod:`repro.graphs.kernels`), selected per instance:

* ``bigint`` — one arbitrary-precision Python int per vertex whose bit
  ``v`` is set iff edge ``{u, v}`` exists; ``has_edge`` is a
  shift-and-test, ``degree`` is ``int.bit_count()``, and a common
  neighbourhood is a single ``&`` executed word-at-a-time in C.
* ``packed`` — a numpy ``uint64`` matrix of shape ``(n, ceil(n/64))``
  with vectorized bulk ops and word-addressable bit probes; the
  n = 10^5+ backend.

``Graph(n, backend=...)`` picks explicitly; otherwise the
``REPRO_GRAPH_BACKEND`` environment variable, then the ``auto`` policy
(packed above :data:`repro.graphs.kernels.PACKED_AUTO_THRESHOLD`
vertices) decide — the same seam style as ``player_factory=`` and
``matcher=``.  Whatever the backend, every query speaks the Python-int
mask exchange format, so pinned-seed runs are byte-identical across
backends and callers never see which kernel is underneath.

The paper's model hands each player a *characteristic vector* over potential
edges; :class:`Graph` is the ground-truth union of those vectors, and
:mod:`repro.graphs.partition` produces the per-player views.

Bulk primitives (:meth:`Graph.neighbor_mask`, :meth:`Graph.common_neighbors`,
:meth:`Graph.add_edges`, :meth:`Graph.add_neighbors`,
:meth:`Graph.adjacency_rows`, :meth:`Graph.induced_subgraph_mask_rows`,
:meth:`Graph.edges_touching_mask`, plus the module-level
:func:`iter_bits` / :func:`mask_of`) expose the masks directly so the
triangle layer, generators, bucketing, and the streaming reduction can stay
on the fast path without reaching into private state.  A pure-Python
``set``-based twin lives in :mod:`repro.graphs.reference` for differential
testing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graphs.kernels.base import (
    Edge,
    MaskKernel,
    get_kernel,
    iter_bits,
    mask_of,
)

__all__ = ["Graph", "canonical_edge", "iter_bits", "mask_of"]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical representation of the undirected edge {u, v}."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


class Graph:
    """Simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  Fixed at construction; the paper's model has a
        known vertex universe and only the edge set is distributed.
    edges:
        Optional iterable of edges (any orientation; canonicalized).
    backend:
        Mask-kernel name (``"bigint"``, ``"packed"``, ``"csr"``,
        ``"auto"``) or ``None`` to defer to ``REPRO_GRAPH_BACKEND`` /
        the auto policy.
    expected_edges:
        Optional density hint for the ``auto`` policy (generators pass
        their expected edge count so large sparse hosts land on the
        csr kernel).  Never changes the edge set, only the storage.
    """

    __slots__ = ("_n", "_kernel", "_edge_count")

    def __init__(self, n: int, edges: Iterable[Edge] = (),
                 backend: str | None = None,
                 expected_edges: int | None = None) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._kernel: MaskKernel = get_kernel(backend, n, expected_edges)(n)
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    @classmethod
    def _wrap(cls, n: int, kernel: MaskKernel, edge_count: int) -> "Graph":
        graph = cls.__new__(cls)
        graph._n = n
        graph._kernel = kernel
        graph._edge_count = edge_count
        return graph

    # ------------------------------------------------------------------
    # Backend seam
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the mask kernel this instance runs on."""
        return self._kernel.name

    @property
    def kernel(self) -> MaskKernel:
        """The underlying mask kernel (for dispatch to native paths)."""
        return self._kernel

    def to_backend(self, backend: str) -> "Graph":
        """A copy of this graph on the named backend.

        Rows convert losslessly through the Python-int exchange format,
        so the result is == to the source whatever the two kernels.
        """
        cls = get_kernel(backend, self._n)
        kernel = cls.from_rows(self._n, self._kernel.rows())
        return Graph._wrap(self._n, kernel, self._edge_count)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert {u, v}; returns True if the edge was new."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if not self._kernel.set_edge(u, v):
            return False
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk insert; returns the number of edges that were new."""
        added = 0
        for u, v in edges:
            added += self.add_edge(u, v)
        return added

    def add_neighbors(self, u: int, mask: int) -> int:
        """Attach every vertex in ``mask`` to ``u``; returns #new edges.

        The bulk form generators use to commit a whole sampled row at
        once instead of edge-by-edge.
        """
        self._check_vertex(u)
        if mask < 0 or mask >> self._n:
            raise ValueError(
                f"neighbor mask has bits outside [0, {self._n})"
            )
        if mask >> u & 1:
            raise ValueError(f"self-loop ({u}, {u}) is not a valid edge")
        added = self._kernel.merge_row(u, mask)
        self._edge_count += added
        return added

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete {u, v}; returns True if the edge was present."""
        u, v = canonical_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if not self._kernel.clear_edge(u, v):
            return False
        self._edge_count -= 1
        return True

    def copy(self) -> "Graph":
        return Graph._wrap(self._n, self._kernel.copy(), self._edge_count)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "Graph":
        return cls(n, edges)

    @staticmethod
    def _canonical_edge_arrays(n: int, us, vs):
        """Validate and canonicalize numpy endpoint arrays.

        Returns sorted unique (lo, hi) int64 arrays with lo < hi — the
        contract every kernel's ``from_edge_array`` assumes.  Raises on
        shape mismatch, out-of-range vertices, and self-loops, matching
        the scalar :meth:`add_edge` checks.
        """
        import numpy as np

        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        if us.shape != vs.shape:
            raise ValueError(
                f"endpoint arrays differ in length: {us.size} vs {vs.size}"
            )
        if us.size == 0:
            return us, vs
        if int(us.min()) < 0 or int(vs.min()) < 0 \
                or int(us.max()) >= n or int(vs.max()) >= n:
            raise ValueError(f"edge endpoint outside range [0, {n})")
        if bool((us == vs).any()):
            loop = int(us[np.argmax(us == vs)])
            raise ValueError(f"self-loop ({loop}, {loop}) is not a valid edge")
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = np.unique(lo * n + hi)
        return keys // n, keys % n

    @classmethod
    def from_edge_arrays(cls, n: int, us, vs,
                         backend: str | None = None,
                         expected_edges: int | None = None) -> "Graph":
        """Bulk-build a graph from numpy endpoint arrays.

        The vectorized-generation entry point: endpoints may come in
        any orientation with duplicates; they are canonicalized,
        deduplicated, validated once, and handed to the kernel's
        ``from_edge_array`` — O(m log m) array work instead of m
        Python-level inserts.  The resulting graph equals
        ``Graph(n, zip(us, vs), backend=...)`` on every backend.

        ``expected_edges`` overrides the ``auto`` density hint (the
        deduplicated count is used when omitted), letting callers keep
        backend selection identical across scalar and vectorized paths.
        """
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        lo, hi = cls._canonical_edge_arrays(n, us, vs)
        if expected_edges is None:
            expected_edges = int(lo.size)
        kernel_cls = get_kernel(backend, n, expected_edges)
        maker = getattr(kernel_cls, "from_edge_array", None)
        if maker is not None:
            kernel = maker(n, lo, hi)
        else:  # registered third-party kernel without the bulk seam
            kernel = kernel_cls(n)
            for u, v in zip(lo.tolist(), hi.tolist()):
                kernel.set_edge(u, v)
        return cls._wrap(n, kernel, int(lo.size))

    def add_edge_arrays(self, us, vs) -> int:
        """Bulk insert from numpy endpoint arrays; returns #new edges.

        The array twin of :meth:`add_edges`, used by the planting paths
        when the edge count is large enough that per-edge Python calls
        dominate.  Kernels exposing ``merge_edge_array`` take it in one
        sorted merge; others fall back to per-edge inserts.
        """
        lo, hi = self._canonical_edge_arrays(self._n, us, vs)
        if lo.size == 0:
            return 0
        merge = getattr(self._kernel, "merge_edge_array", None)
        if merge is not None:
            added = int(merge(lo, hi))
        else:
            added = 0
            for u, v in zip(lo.tolist(), hi.tolist()):
                added += self._kernel.set_edge(u, v)
        self._edge_count += added
        return added

    @classmethod
    def complete(cls, n: int, backend: str | None = None) -> "Graph":
        """K_n in one bulk fill: the all-ones row mask is built once
        and each vertex's bit cleared out of it, instead of n bignum
        rebuilds."""
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        total = n * (n - 1) // 2
        full = (1 << n) - 1
        kernel = get_kernel(backend, n, total).from_rows(
            n, (full ^ (1 << u) for u in range(n))
        )
        return cls._wrap(n, kernel, total)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        return self._edge_count

    @property
    def nbytes(self) -> int:
        """Approximate adjacency-storage bytes of the active kernel.

        Delegates to the kernel's ``memory_bytes()``; third-party
        kernels without the seam report 0.  Surfaced per instance in
        ``InstanceCache.stats()`` so sweep logs show memory at scale.
        """
        probe = getattr(self._kernel, "memory_bytes", None)
        return int(probe()) if probe is not None else 0

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        self._check_vertex(u)
        self._check_vertex(v)
        return self._kernel.has_edge(u, v)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return self._kernel.popcount(v)

    def neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(iter_bits(self._kernel.row(v)))

    def neighbor_mask(self, v: int) -> int:
        """N(v) as a bitmask — the kernel row in exchange form."""
        self._check_vertex(v)
        return self._kernel.row(v)

    def adjacency_rows(self) -> list[int]:
        """The adjacency masks, indexed by vertex — treat as READ-ONLY.

        On the bigint backend this is the live kernel list (the hot
        loops index it directly to skip per-call bounds checks; mutating
        it would desynchronise the edge count and the symmetry
        invariant); on other backends it is a converted snapshot.
        """
        return self._kernel.rows()

    def common_neighbors(self, u: int, v: int) -> int:
        """N(u) ∩ N(v) as a bitmask: one kernel AND."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._kernel.row_and(u, v)

    def average_degree(self) -> float:
        """``2|E| / n`` — the ``d`` of the paper's complexity bounds."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._edge_count / self._n

    def edges(self) -> Iterator[Edge]:
        """All edges in canonical orientation, ascending."""
        return self._kernel.iter_edges()

    def edge_set(self) -> set[Edge]:
        """Compatibility wrapper: the edges as a plain set.

        Mask-native callers should iterate :meth:`edges` or take
        :meth:`adjacency_rows`; this survives for tests and callers that
        genuinely want set algebra.
        """
        return set(self.edges())

    def degrees(self) -> list[int]:
        return self._kernel.popcounts()

    def isolated_vertices(self) -> list[int]:
        return [
            v for v, deg in enumerate(self._kernel.popcounts()) if not deg
        ]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph_mask_rows(self, vertex_mask: int) -> list[int]:
        """Adjacency rows of the induced subgraph on a vertex *mask*.

        The mask-native form of the Section 3.1 primitive: row ``u`` of
        the result is ``N(u) ∩ vertex_mask`` for ``u`` in the mask and
        ``0`` elsewhere, ready for :func:`repro.graphs.triangles.\
find_triangle_in_rows` or the patterns matcher — no edge tuples are
        materialised.
        """
        self._check_mask(vertex_mask)
        rows = [0] * self._n
        kernel = self._kernel
        for u in iter_bits(vertex_mask):
            rows[u] = kernel.row(u) & vertex_mask
        return rows

    def edges_touching_mask(self, vertex_mask: int) -> list[int]:
        """Adjacency rows of the subgraph of edges meeting a vertex mask.

        Mask-native twin of :meth:`edges_touching`: the result contains
        exactly the edges with at least one endpoint in ``vertex_mask``,
        as symmetric per-vertex rows (outside endpoints keep only their
        bits towards the mask).
        """
        self._check_mask(vertex_mask)
        rows = [0] * self._n
        kernel = self._kernel
        for u in iter_bits(vertex_mask):
            row = kernel.row(u)
            rows[u] |= row
            bit_u = 1 << u
            for v in iter_bits(row & ~vertex_mask):
                rows[v] |= bit_u
        return rows

    def induced_subgraph_edges(self, vertices: Iterable[int]) -> set[Edge]:
        """Compatibility wrapper over :meth:`induced_subgraph_mask_rows`.

        Returns the induced edges as a set of canonical tuples; new
        callers should take the mask-rows form and stay on the kernel.
        """
        vertex_mask = self._checked_mask(vertices)
        found: set[Edge] = set()
        for u in iter_bits(vertex_mask):
            inner = (self._kernel.row(u) & vertex_mask) >> (u + 1)
            while inner:
                low = inner & -inner
                found.add((u, u + low.bit_length()))
                inner ^= low
        return found

    def edges_touching(self, vertices: Iterable[int]) -> set[Edge]:
        """Compatibility wrapper over :meth:`edges_touching_mask`.

        Returns the touching edges as a set of canonical tuples; new
        callers should take the mask-rows form and stay on the kernel.
        """
        vertex_mask = self._checked_mask(vertices)
        found: set[Edge] = set()
        for u in iter_bits(vertex_mask):
            for v in iter_bits(self._kernel.row(u)):
                found.add((u, v) if u < v else (v, u))
        return found

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph, preserving vertex ids (others become isolated)."""
        vertex_mask = self._checked_mask(vertices)
        kernel, edge_count = self._kernel.induced(vertex_mask)
        return Graph._wrap(self._n, kernel, edge_count)

    def union(self, other: "Graph") -> "Graph":
        if other.n != self._n:
            raise ValueError(
                f"vertex-count mismatch: {self._n} vs {other.n}"
            )
        other_kernel = other._kernel
        if type(other_kernel) is not type(self._kernel):
            other_kernel = type(self._kernel).from_rows(
                self._n, other_kernel.rows()
            )
        kernel, edge_count = self._kernel.union_with(other_kernel)
        return Graph._wrap(self._n, kernel, edge_count)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._n != other._n:
            return False
        if type(self._kernel) is type(other._kernel):
            return self._kernel.rows_equal(other._kernel)
        # Cross-backend: compare through the int exchange format.
        return self._kernel.rows() == other._kernel.rows()

    def __hash__(self) -> int:  # pragma: no cover - graphs used as dict keys rarely
        return hash((self._n, frozenset(self.edges())))

    def __repr__(self) -> str:
        return (
            f"Graph(n={self._n}, m={self._edge_count}, "
            f"backend={self._kernel.name!r})"
        )

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (isolated vertices preserved).

        networkx is the optional ``reference`` extra; no production path
        needs this method.
        """
        try:
            import networkx as nx
        except ImportError as exc:
            raise ImportError(
                "Graph.to_networkx needs networkx, an optional "
                "dependency used only for reference and differential "
                "paths; install it via `pip install -e '.[reference]'`"
            ) from exc

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} outside range [0, {self._n})")

    def _check_mask(self, mask: int) -> None:
        if mask < 0 or mask >> self._n:
            raise ValueError(
                f"vertex mask has bits outside [0, {self._n})"
            )

    def _checked_mask(self, vertices: Iterable[int]) -> int:
        mask = 0
        for v in vertices:
            self._check_vertex(v)
            mask |= 1 << v
        return mask

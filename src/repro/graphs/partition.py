"""Distributing a graph's edges among k players.

The model (Section 2): each player j receives a subset ``E_j ⊆ E``; the
logical OR of the players' characteristic vectors is ``E``.  Edges may be
*duplicated* (several players hold the same edge) and no vertex's incident
edges need to be co-located.  This module produces the per-player views under
several regimes the paper analyzes:

* ``partition_disjoint`` — the no-duplication variant (Corollaries 3.25,
  3.27, Lemma 3.2): each edge to exactly one player.
* ``partition_with_duplication`` — each edge to a random non-empty subset of
  players, the general model where e.g. exact degree costs Ω(k·d(v)).
* ``partition_all_to_all`` — worst-case duplication: everyone sees all edges.
* ``partition_adversarial_skew`` — most edges to one player; stresses the
  "relevant player" analysis of the degree-oblivious protocol (§3.4.3).
* ``partition_concentrate_edges`` — a *chosen* edge set (e.g. every
  planted-triangle edge) to one player, the rest spread over the others;
  the targeted adversary the failure-injection suite uses to probe
  soundness when no single other player can witness a triangle.
* ``partition_by_vertex`` — CONGEST-like vertex locality, as a contrast case
  explicitly *not* guaranteed by the model.

Each returns an :class:`EdgePartition` that remembers the ground truth and
checks the covering invariant (union of views == E) eagerly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "EdgePartition",
    "partition_disjoint",
    "partition_with_duplication",
    "partition_all_to_all",
    "partition_adversarial_skew",
    "partition_concentrate_edges",
    "partition_by_vertex",
]


#: Vertex count past which the covering check runs set-based.  The mask
#: check allocates an O(n/8)-byte row per vertex — O(n²/8) transient
#: bytes, ~125 GB at n = 10^6 — while the set comparison is O(m) and
#: density-independent.  Both report identical errors.
_SPARSE_CHECK_THRESHOLD = 1 << 17


@dataclass(frozen=True)
class EdgePartition:
    """Ground truth graph + the k per-player edge views."""

    graph: Graph
    views: tuple[frozenset[Edge], ...]

    def __post_init__(self) -> None:
        if self.graph.n >= _SPARSE_CHECK_THRESHOLD:
            self._check_covering_sparse()
        else:
            self._check_covering_masks()

    def _check_covering_masks(self) -> None:
        # Covering invariant via the bitset kernel: OR every view into
        # per-vertex masks and XOR against the ground truth's adjacency
        # rows — each mismatched edge shows up as two set bits.
        union_rows = [0] * self.graph.n
        out_of_universe: set[Edge] = set()
        for view in self.views:
            for u, v in view:
                u, v = canonical_edge(u, v)
                if u < 0 or v >= self.graph.n:
                    out_of_universe.add((u, v))  # spurious by definition
                    continue
                union_rows[u] |= 1 << v
                union_rows[v] |= 1 << u
        extra = 2 * len(out_of_universe)
        missing = 0
        for v, row in enumerate(union_rows):
            truth_row = self.graph.neighbor_mask(v)
            missing += (truth_row & ~row).bit_count()
            extra += (row & ~truth_row).bit_count()
        if missing or extra:
            raise ValueError(
                "partition does not cover the graph exactly: "
                f"{missing // 2} missing, {extra // 2} spurious edges"
            )

    def _check_covering_sparse(self) -> None:
        # Large-n twin of the mask check: O(m) canonical-edge sets, no
        # per-vertex bignums.  Same invariant, same error wording.
        n = self.graph.n
        union: set[Edge] = set()
        spurious = 0
        seen_out: set[Edge] = set()
        for view in self.views:
            for u, v in view:
                edge = canonical_edge(u, v)
                if edge[0] < 0 or edge[1] >= n:
                    seen_out.add(edge)
                else:
                    union.add(edge)
        truth = set(self.graph.edges())
        missing = len(truth - union)
        spurious = len(union - truth) + len(seen_out)
        if missing or spurious:
            raise ValueError(
                "partition does not cover the graph exactly: "
                f"{missing} missing, {spurious} spurious edges"
            )

    @property
    def k(self) -> int:
        return len(self.views)

    def adjacency_rows(self, player: int) -> list[int]:
        """Player ``player``'s view as per-vertex adjacency masks, cached.

        This is the bitset-kernel form of ``views[player]`` (one int per
        vertex, bit ``v`` of row ``u`` set iff {u, v} ∈ E_j) that
        :func:`~repro.comm.players.make_players` hands to the mask-native
        players.  Built once per player and memoized on the partition, so
        repeated protocol trials on the same partition never re-shred the
        edge views.  Treat the returned list as READ-ONLY — it is shared
        by every Player built from this partition.
        """
        return self._rows_and_count(player)[0]

    def view_edge_count(self, player: int) -> int:
        """Distinct-edge count of ``views[player]``, cached with the rows."""
        return self._rows_and_count(player)[1]

    def _rows_and_count(self, player: int) -> tuple[list[int], int]:
        cache: dict[int, tuple[list[int], int]] | None = getattr(
            self, "_rows_cache", None
        )
        if cache is None:
            cache = {}
            object.__setattr__(self, "_rows_cache", cache)
        entry = cache.get(player)
        if entry is None:
            rows = [0] * self.graph.n
            for u, v in self.views[player]:
                rows[u] |= 1 << v
                rows[v] |= 1 << u
            count = sum(row.bit_count() for row in rows) // 2
            entry = (rows, count)
            cache[player] = entry
        return entry

    @property
    def has_duplication(self) -> bool:
        total = sum(len(view) for view in self.views)
        return total > self.graph.num_edges

    def view(self, player: int) -> frozenset[Edge]:
        return self.views[player]

    def multiplicity(self, edge: Edge) -> int:
        """How many players hold ``edge``."""
        return sum(1 for view in self.views if edge in view)


def _require_players(k: int) -> None:
    if k < 1:
        raise ValueError(f"need at least one player, got k={k}")


def partition_disjoint(graph: Graph, k: int, seed: int = 0) -> EdgePartition:
    """Each edge assigned to exactly one uniformly random player."""
    _require_players(k)
    rng = random.Random(seed)
    buckets: list[set[Edge]] = [set() for _ in range(k)]
    for edge in graph.edges():
        buckets[rng.randrange(k)].add(edge)
    return EdgePartition(graph, tuple(frozenset(b) for b in buckets))


def partition_with_duplication(graph: Graph, k: int, seed: int = 0,
                               duplication_probability: float = 0.3
                               ) -> EdgePartition:
    """Each edge to one random owner, plus each other player w.p. ``p``.

    Guarantees coverage (the owner) while exercising the duplicated-input
    code paths (degree approximation, permutation-based unbiased sampling).
    """
    _require_players(k)
    if not 0.0 <= duplication_probability <= 1.0:
        raise ValueError(
            f"duplication probability must be in [0,1], "
            f"got {duplication_probability}"
        )
    rng = random.Random(seed)
    buckets: list[set[Edge]] = [set() for _ in range(k)]
    for edge in graph.edges():
        owner = rng.randrange(k)
        buckets[owner].add(edge)
        for other in range(k):
            if other != owner and rng.random() < duplication_probability:
                buckets[other].add(edge)
    return EdgePartition(graph, tuple(frozenset(b) for b in buckets))


def partition_all_to_all(graph: Graph, k: int) -> EdgePartition:
    """Maximal duplication: every player sees every edge."""
    _require_players(k)
    full = frozenset(graph.edges())
    return EdgePartition(graph, tuple(full for _ in range(k)))


def partition_adversarial_skew(graph: Graph, k: int, seed: int = 0,
                               heavy_fraction: float = 0.9) -> EdgePartition:
    """Player 0 gets ~``heavy_fraction`` of edges, the rest spread thin.

    Models the irrelevant-player regime of §3.4.3: most players observe a
    local average degree far below the global one.
    """
    _require_players(k)
    if not 0.0 < heavy_fraction <= 1.0:
        raise ValueError(
            f"heavy fraction must be in (0,1], got {heavy_fraction}"
        )
    rng = random.Random(seed)
    buckets: list[set[Edge]] = [set() for _ in range(k)]
    for edge in graph.edges():
        if k == 1 or rng.random() < heavy_fraction:
            buckets[0].add(edge)
        else:
            buckets[1 + rng.randrange(k - 1)].add(edge)
    return EdgePartition(graph, tuple(frozenset(b) for b in buckets))


def partition_concentrate_edges(graph: Graph, k: int,
                                focus_edges, seed: int = 0) -> EdgePartition:
    """Give all of ``focus_edges`` to player 0, the rest to players 1..k-1.

    The targeted adversary: concentrating e.g. every planted-triangle
    edge on a single player means no *other* player's view contains a
    full triangle, and cross-player detection paths carry the entire
    burden.  Protocols may lose completeness under this split (the
    planted structure hides in one view) but must stay sound — a
    guarantee the failure-injection suite asserts.

    ``focus_edges`` may list edges in either orientation; edges not in
    the graph are rejected (a typo'd focus set silently vanishing into
    player 0 would defang the adversary).  With ``k == 1`` every edge
    lands on player 0 and the split degenerates to all-to-one.
    """
    _require_players(k)
    focus: set[Edge] = set()
    for u, v in focus_edges:
        edge = canonical_edge(u, v)
        if not graph.has_edge(*edge):
            raise ValueError(f"focus edge {edge} is not in the graph")
        focus.add(edge)
    rng = random.Random(seed)
    buckets: list[set[Edge]] = [set() for _ in range(k)]
    for edge in graph.edges():
        if k == 1 or edge in focus:
            buckets[0].add(edge)
        else:
            buckets[1 + rng.randrange(k - 1)].add(edge)
    return EdgePartition(graph, tuple(frozenset(b) for b in buckets))


def partition_by_vertex(graph: Graph, k: int, seed: int = 0) -> EdgePartition:
    """Assign vertices to players; each edge to its lower endpoint's player.

    A CONGEST-flavoured locality pattern.  The paper's model explicitly does
    *not* promise this; it is provided as a contrast workload.
    """
    _require_players(k)
    rng = random.Random(seed)
    owner = [rng.randrange(k) for _ in range(graph.n)]
    buckets: list[set[Edge]] = [set() for _ in range(k)]
    for u, v in graph.edges():
        buckets[owner[u]].add((u, v))
    return EdgePartition(graph, tuple(frozenset(b) for b in buckets))

"""Workload generators.

Every experiment in the paper is parameterized by (n, d, epsilon) plus a
structural story about where the triangles live.  The generators here cover
each story the paper tells:

* ``gnp`` / ``gnd`` — plain random graphs (background noise, controls).
* ``planted_disjoint_triangles`` — the canonical epsilon-far instance: a
  packing of vertex-disjoint triangles planted by construction, optionally
  padded with triangle-sparse background edges to dial the density and
  epsilon independently.
* ``skewed_hub_graph`` — the Section 3.3 hard case for naive sampling: a few
  high-degree hubs are the sources of (almost) all triangle-vees, so a
  uniformly random vertex is useless and bucketing is required.
* ``tripartite_mu`` — the Section 4.2.1 lower-bound distribution µ: a
  tripartite graph U ∪ V1 ∪ V2 with each cross-part edge present iid with
  probability gamma/sqrt(n).
* ``bipartite_triangle_free`` — triangle-free control of a given density.
* ``powerlaw_host`` — Chung–Lu style heavy-tailed expected-degree host,
  the adversarial workload for degree-oblivious protocols.
* ``embed_in_larger_graph`` — the Lemma 4.17 embedding: a dense hard core
  plus isolated vertices, lowering the average degree without changing the
  problem.

All generators take an explicit ``seed`` and are deterministic given it,
and thread an optional ``backend=`` through to ``Graph`` — the sampled
edge set depends only on the seed, never on the kernel, so pinned-seed
instances are identical across backends.

The heavy samplers (``gnp``/``gnd``, ``tripartite_mu``,
``powerlaw_host``) additionally carry a ``vectorized`` knob in the
:class:`~repro.comm.randomness.SharedRandomness` style: ``None``
(default) takes a numpy edge-array path when the expected draw volume
clears :data:`_VECTOR_MIN_EXPECTED`, ``False`` forces the scalar
reference loop, ``True`` insists on numpy.  The vectorized paths
transplant the scalar generator's exact MT19937 state
(:func:`repro.comm.randomness._numpy_stream`) and replay the same
recurrences as array expressions, so the sampled edge set is
draw-for-draw identical across {scalar, vectorized} × every backend —
the knob only trades implementations, never outputs.
"""

from __future__ import annotations

import bisect
import logging
import math
import random
from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

try:  # vectorized generation is optional — scalar is always available
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into CI envs
    _np = None

__all__ = [
    "gnp",
    "gnd",
    "planted_disjoint_triangles",
    "planted_triangles_at_degree",
    "disjoint_cliques",
    "PlantedInstance",
    "far_instance",
    "skewed_hub_graph",
    "powerlaw_host",
    "tripartite_mu",
    "TripartiteParts",
    "mu_parts",
    "bipartite_triangle_free",
    "triangle_free_degree_spread",
    "embed_in_larger_graph",
]

#: Expected scalar work (selected edges for geometric skipping, raw
#: draws for dense Bernoulli sweeps) below which the scalar loop beats
#: the vectorized path — the MT19937 state transplant plus array setup
#: costs a fixed few tens of microseconds.
_VECTOR_MIN_EXPECTED = 1024

#: Uniform draws per numpy chunk on the dense Bernoulli paths; bounds
#: peak draw-buffer memory without changing any sampled value.
_DRAW_CHUNK = 1 << 20

#: Planted-copy count at which the triangle planting loop switches to
#: one bulk ``add_edge_arrays`` call.
_BULK_PLANT_MIN = 512


_LOGGER = logging.getLogger(__name__)


def _use_vectorized(vectorized: bool | None, expected_work: float,
                    generator: str = "") -> bool:
    if vectorized is None:
        chosen = _np is not None and expected_work >= _VECTOR_MIN_EXPECTED
    elif vectorized and _np is None:  # pragma: no cover - numpy baked in
        raise RuntimeError(
            "vectorized generation requested but numpy is missing"
        )
    else:
        chosen = bool(vectorized)
    path = "vectorized" if chosen else "scalar"
    obs_metrics.inc(f"generator.path.{path}")
    obs_trace.event("generator.path", generator=generator, path=path,
                    expected_work=expected_work,
                    forced=vectorized is not None)
    return chosen


def _transplanted_stream(rng: random.Random):
    """A numpy RandomState continuing ``rng``'s exact MT19937 stream.

    Imported lazily from the randomness module (call-time, so the
    graphs package never imports the comm package at module load).
    """
    from repro.comm.randomness import _numpy_stream

    return _numpy_stream(rng)


def _gnp_edge_arrays(rng: random.Random, n: int, log_q: float,
                     total_pairs: int, expected: int):
    """The scalar geometric-skipping recurrence as one vectorized pass.

    Chunked uniforms come from the transplanted stream; gaps and
    cumulative pair indices are array expressions with the same
    truncation and termination decisions as the scalar loop (a raw gap
    at or past ``total_pairs`` clamps to a terminating step, exactly
    where the scalar ``int()`` overshoot returns).  Unranking maps pair
    index to (u, v) through the precomputed row-start table
    ``S[u] = u(n-1) - u(u-1)/2`` with one ``searchsorted``.
    """
    stream = _transplanted_stream(rng)
    chunks: list["_np.ndarray"] = []
    index = -1
    chunk = max(32, int(expected * 1.1) + 32)
    while True:
        raw = _np.log(
            _np.maximum(stream.random_sample(chunk), 1e-300)
        ) / log_q
        steps = _np.minimum(raw, total_pairs).astype(_np.int64) + 1
        positions = index + _np.cumsum(steps)
        terminal = _np.nonzero(positions >= total_pairs)[0]
        if terminal.size:
            chunks.append(positions[: terminal[0]])
            break
        chunks.append(positions)
        index = int(positions[-1])
        chunk = 4096
    indices = chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)
    row = _np.arange(n, dtype=_np.int64)
    starts = row * (n - 1) - (row * (row - 1)) // 2
    us = _np.searchsorted(starts, indices, side="right") - 1
    vs = indices - starts[us] + us + 1
    return us, vs


def gnp(n: int, p: float, seed: int = 0,
        backend: str | None = None, *,
        vectorized: bool | None = None) -> Graph:
    """Erdős–Rényi G(n, p).

    Both execution paths sample by geometric skipping over the ordered
    upper-pair list; the vectorized one replays the identical
    recurrence on the transplanted RNG stream, so the edge set depends
    only on the seed (see the module docstring's contract).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    rng = random.Random(seed)
    if p == 0.0 or n < 2:
        return Graph(n, backend=backend)
    log_q = math.log1p(-p) if p < 1.0 else None
    total_pairs = n * (n - 1) // 2
    if log_q is None:
        # p == 1.0: K_n via one bulk fill — the all-ones mask is built
        # once, not rebuilt per vertex.
        return Graph.complete(n, backend=backend)
    expected = int(p * total_pairs)
    if _use_vectorized(vectorized, expected, "gnp"):
        us, vs = _gnp_edge_arrays(rng, n, log_q, total_pairs, expected)
        return Graph.from_edge_arrays(
            n, us, vs, backend=backend, expected_edges=expected
        )
    graph = Graph(n, backend=backend, expected_edges=expected)
    # Unranking state carried across hits: sampled indices are strictly
    # increasing, so (u, row_start, row_len) only ever move forward —
    # amortized O(1) per hit instead of O(n) re-unranking.
    index = -1
    u = 0
    row_start = 0
    row_len = n - 1
    while True:
        gap = int(math.log(max(rng.random(), 1e-300)) / log_q) + 1
        index += gap
        if index >= total_pairs:
            return graph
        while index - row_start >= row_len:
            row_start += row_len
            u += 1
            row_len -= 1
        graph.add_edge(u, u + 1 + (index - row_start))


def gnd(n: int, d: float, seed: int = 0,
        backend: str | None = None, *,
        vectorized: bool | None = None) -> Graph:
    """Random graph with expected average degree ``d``."""
    if n < 2:
        return Graph(n, backend=backend)
    p = min(1.0, d / (n - 1))
    return gnp(n, p, seed, backend=backend, vectorized=vectorized)


@dataclass(frozen=True)
class PlantedInstance:
    """An epsilon-far-by-construction instance with its certificate."""

    graph: Graph
    planted_triangles: tuple[tuple[int, int, int], ...]
    epsilon_certified: float
    """Certified farness: planted disjoint triangles / |E|."""


def planted_disjoint_triangles(n: int, num_triangles: int, seed: int = 0,
                               background_degree: float = 0.0,
                               backend: str | None = None
                               ) -> PlantedInstance:
    """Plant ``num_triangles`` vertex-disjoint triangles, plus background.

    The planted triangles are vertex-disjoint hence edge-disjoint, so the
    instance is certifiably ``num_triangles / |E|``-far from triangle-free
    regardless of what the background edges add (extra triangles only make
    the graph farther).  ``background_degree`` adds a G(n, p) layer of that
    expected average degree to dial d independently of epsilon.
    """
    if 3 * num_triangles > n:
        raise ValueError(
            f"cannot plant {num_triangles} vertex-disjoint triangles "
            f"on {n} vertices"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    graph = (
        gnd(n, background_degree, seed=seed + 1, backend=backend)
        if background_degree > 0
        else Graph(n, backend=backend)
    )
    planted: list[tuple[int, int, int]] = []
    if num_triangles >= _BULK_PLANT_MIN and _np is not None:
        # Large plants commit through one bulk edge-array insert; the
        # per-triangle sort matches the scalar loop, so the planted
        # tuples and the final edge set are identical either way.
        members = _np.sort(
            _np.array(
                vertices[: 3 * num_triangles], dtype=_np.int64
            ).reshape(-1, 3),
            axis=1,
        )
        graph.add_edge_arrays(
            members[:, (0, 0, 1)].ravel(), members[:, (1, 2, 2)].ravel()
        )
        planted = [tuple(row) for row in members.tolist()]
    else:
        for t in range(num_triangles):
            a, b, c = sorted(vertices[3 * t: 3 * t + 3])
            graph.add_edge(a, b)
            graph.add_edge(a, c)
            graph.add_edge(b, c)
            planted.append((a, b, c))
    epsilon = num_triangles / max(1, graph.num_edges)
    return PlantedInstance(graph, tuple(planted), epsilon)


def far_instance(n: int, d: float, epsilon: float, seed: int = 0,
                 strict: bool = False,
                 backend: str | None = None) -> PlantedInstance:
    """An instance with average degree ≈ d that is ≈ epsilon-far.

    Total edges ≈ nd/2; we plant ``epsilon * nd / 2`` disjoint triangles
    (3 edges each) and fill the remaining density with background noise.
    The returned certificate reports the farness actually achieved.

    Vertex-disjointness caps the plantable triangles at ``n // 3``, so at
    high ``epsilon * d`` the certified farness can undershoot the request.
    That shortfall used to be silent; now any certified epsilon below
    90% of the request logs a warning on this module's logger (mirrored
    into the active trace as an event — see :mod:`repro.obs.trace`), or
    raises ``ValueError`` under ``strict=True``.
    """
    if epsilon <= 0 or epsilon > 1:
        raise ValueError(f"epsilon must be in (0,1], got {epsilon}")
    target_edges = n * d / 2.0
    requested_triangles = max(1, int(epsilon * target_edges))
    num_triangles = min(requested_triangles, n // 3)
    triangle_edges = 3 * num_triangles
    leftover = max(0.0, target_edges - triangle_edges)
    background_degree = 2.0 * leftover / n
    instance = planted_disjoint_triangles(
        n, num_triangles, seed=seed, background_degree=background_degree,
        backend=backend,
    )
    if instance.epsilon_certified < 0.9 * epsilon:
        cause = (
            f"the vertex-disjointness cap is n//3={n // 3}"
            if num_triangles < requested_triangles
            else "background noise inflated the edge count"
        )
        message = (
            f"far_instance(n={n}, d={d}, epsilon={epsilon}) certifies only "
            f"epsilon={instance.epsilon_certified:.4f} "
            f"({num_triangles} disjoint triangles over "
            f"{instance.graph.num_edges} edges; {cause})"
        )
        if strict:
            raise ValueError(message)
        _LOGGER.warning(message)
    return instance


def skewed_hub_graph(n: int, num_hubs: int, vees_per_hub: int,
                     seed: int = 0, background_degree: float = 0.0,
                     backend: str | None = None) -> Graph:
    """A few high-degree hubs source all triangle-vees (§3.3 hard case).

    Each hub h is connected to ``2 * vees_per_hub`` distinct spoke vertices
    paired into vees; each vee's two spokes are joined by the closing edge.
    Uniform vertex sampling almost never hits a hub, which is exactly the
    situation degree bucketing is designed to rescue.
    """
    rng = random.Random(seed)
    if num_hubs < 1:
        raise ValueError(f"need at least one hub, got {num_hubs}")
    spokes_needed = 2 * vees_per_hub * num_hubs
    if num_hubs + spokes_needed > n:
        raise ValueError(
            f"n={n} too small for {num_hubs} hubs x {vees_per_hub} vees"
        )
    vertices = list(range(n))
    rng.shuffle(vertices)
    hubs = vertices[:num_hubs]
    spokes = vertices[num_hubs: num_hubs + spokes_needed]
    graph = (
        gnd(n, background_degree, seed=seed + 1, backend=backend)
        if background_degree > 0
        else Graph(n, backend=backend)
    )
    cursor = 0
    for hub in hubs:
        for _ in range(vees_per_hub):
            a, b = spokes[cursor], spokes[cursor + 1]
            cursor += 2
            graph.add_edge(hub, a)
            graph.add_edge(hub, b)
            graph.add_edge(a, b)
    return graph


def powerlaw_host(n: int, d: float, exponent: float = 2.5, seed: int = 0,
                  backend: str | None = None, *,
                  vectorized: bool | None = None) -> Graph:
    """Chung–Lu style heavy-tailed host with expected average degree ≈ d.

    Vertex ``i`` carries weight ``w_i ∝ (i + 1)^(-1/(exponent - 1))`` —
    the weight sequence whose realized degrees follow a power law with
    tail exponent ``exponent`` (2 < exponent < 3 is the scale-free
    regime; vertex 0 is the heaviest hub, deterministically, in the
    ``mu_parts`` spirit of fixed layouts).  ``round(n·d/2)`` candidate
    edges are sampled by drawing both endpoints from the
    weight-proportional distribution (inverse CDF over the cumulative
    weights); self-loops and duplicate pairs are dropped, so the
    realized average degree undershoots ``d`` slightly, vanishingly so
    as n grows.

    This is the adversarial-host workload the ROADMAP asks for: a few
    hubs concentrate most wedges, stressing the high/low split and
    degree-oblivious protocols — and at constant ``d`` it is the
    natural n = 10^6 sparse instance for the csr kernel.

    Deterministic given ``seed``; ``backend=`` threads through; the
    ``vectorized`` knob follows the module contract (identical edge
    sets on both paths).
    """
    if n < 0:
        raise ValueError(f"vertex count must be non-negative, got {n}")
    if d < 0:
        raise ValueError(f"average degree must be non-negative, got {d}")
    if exponent <= 1.0:
        raise ValueError(
            f"power-law exponent must exceed 1, got {exponent}"
        )
    draws = int(round(n * d / 2.0))
    if n < 2 or draws == 0:
        return Graph(n, backend=backend)
    alpha = 1.0 / (exponent - 1.0)
    rng = random.Random(seed)
    if _np is not None:
        cum = _np.cumsum(
            _np.arange(1, n + 1, dtype=_np.float64) ** (-alpha)
        )
        total = float(cum[-1])
    else:  # pragma: no cover - numpy baked into CI envs
        cum = []
        running = 0.0
        for i in range(n):
            running += (i + 1) ** (-alpha)
            cum.append(running)
        total = running
    if _use_vectorized(vectorized, 2 * draws, "powerlaw_host"):
        stream = _transplanted_stream(rng)
        targets = stream.random_sample(2 * draws) * total
        endpoints = _np.minimum(
            _np.searchsorted(cum, targets, side="right"), n - 1
        )
        us = endpoints[0::2]
        vs = endpoints[1::2]
        keep = us != vs
        return Graph.from_edge_arrays(
            n, us[keep], vs[keep], backend=backend, expected_edges=draws
        )
    edges: list[tuple[int, int]] = []
    for _ in range(draws):
        u = min(bisect.bisect_right(cum, rng.random() * total), n - 1)
        v = min(bisect.bisect_right(cum, rng.random() * total), n - 1)
        if u != v:
            edges.append((u, v))
    graph = Graph(n, backend=backend, expected_edges=draws)
    graph.add_edges(edges)
    return graph


@dataclass(frozen=True)
class TripartiteParts:
    """Vertex ranges of the three parts of a µ-distribution graph."""

    u_part: range
    v1_part: range
    v2_part: range

    @property
    def n(self) -> int:
        return len(self.u_part) + len(self.v1_part) + len(self.v2_part)


def mu_parts(part_size: int) -> TripartiteParts:
    """Part layout used by :func:`tripartite_mu`: U, V1, V2 contiguous."""
    return TripartiteParts(
        u_part=range(0, part_size),
        v1_part=range(part_size, 2 * part_size),
        v2_part=range(2 * part_size, 3 * part_size),
    )


def tripartite_mu(part_size: int, gamma: float, seed: int = 0,
                  backend: str | None = None, *,
                  vectorized: bool | None = None
                  ) -> tuple[Graph, TripartiteParts]:
    """Sample from the lower-bound distribution µ (Section 4.2.1).

    A tripartite graph on parts U, V1, V2 of ``part_size`` vertices each;
    every cross-part pair is an edge independently with probability
    ``gamma / sqrt(n)`` where ``n = 3 * part_size`` is the total vertex
    count.  The expected average degree is Θ(gamma * sqrt(n)).

    Every cross-part pair costs one uniform draw in row-major order on
    both paths — the vectorized one draws the same uniforms in chunks
    from the transplanted stream and keeps the ``< p`` comparison, so
    pinned seeds reproduce the exact scalar graphs.
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    parts = mu_parts(part_size)
    n = parts.n
    p = min(1.0, gamma / math.sqrt(n))
    rng = random.Random(seed)
    part_pairs = (
        (parts.u_part, parts.v1_part),
        (parts.u_part, parts.v2_part),
        (parts.v1_part, parts.v2_part),
    )
    total_draws = 3 * part_size * part_size
    expected_edges = int(p * total_draws)
    if _use_vectorized(vectorized, total_draws, "tripartite_mu"):
        stream = _transplanted_stream(rng)
        us_parts: list["_np.ndarray"] = []
        vs_parts: list["_np.ndarray"] = []
        for part_a, part_b in part_pairs:
            width = len(part_b)
            if width == 0:
                continue
            rows_per_chunk = max(1, _DRAW_CHUNK // width)
            for offset in range(0, len(part_a), rows_per_chunk):
                rows = min(rows_per_chunk, len(part_a) - offset)
                draws = stream.random_sample(rows * width)
                hits = _np.nonzero(draws < p)[0]
                if hits.size:
                    us_parts.append(part_a.start + offset + hits // width)
                    vs_parts.append(part_b.start + hits % width)
        if us_parts:
            us = _np.concatenate(us_parts)
            vs = _np.concatenate(vs_parts)
        else:
            us = vs = _np.empty(0, dtype=_np.int64)
        graph = Graph.from_edge_arrays(
            n, us, vs, backend=backend, expected_edges=expected_edges
        )
        return graph, parts
    graph = Graph(n, backend=backend, expected_edges=expected_edges)
    random_value = rng.random
    for part_a, part_b in part_pairs:
        for u in part_a:
            # Accumulate u's sampled row as one mask, committed in bulk;
            # the per-pair draw order is unchanged, so seeds reproduce
            # the exact graphs of the per-edge implementation.
            row = 0
            for v in part_b:
                if random_value() < p:
                    row |= 1 << v
            if row:
                graph.add_neighbors(u, row)
    return graph, parts


def bipartite_triangle_free(n: int, d: float, seed: int = 0,
                            backend: str | None = None) -> Graph:
    """A triangle-free control graph of average degree ≈ d (random bipartite)."""
    rng = random.Random(seed)
    half = n // 2
    graph = Graph(n, backend=backend)
    if half == 0 or n - half == 0:
        return graph
    p = min(1.0, n * d / (2.0 * half * (n - half)))
    random_value = rng.random
    for u in range(half):
        row = 0
        for v in range(half, n):
            if random_value() < p:
                row |= 1 << v
        if row:
            graph.add_neighbors(u, row)
    return graph


def planted_triangles_at_degree(n: int, num_triangles: int,
                                vertex_degree: int, seed: int = 0,
                                backend: str | None = None) -> Graph:
    """Plant disjoint triangles whose vertices all have a chosen degree.

    Each triangle vertex receives ``vertex_degree - 2`` extra leaf edges,
    pinning the minimal full bucket B_min at ``bucket(vertex_degree)``.
    This controls the Theorem 3.20 refined cost Õ(k·sqrt(d(B_min)) + k²):
    sweeping ``vertex_degree`` sweeps d(B_min) directly, with the planted
    triangles (and hence the far promise) held fixed.  Leaves have degree
    one, so no other bucket ever becomes full.
    """
    if vertex_degree < 2:
        raise ValueError(
            f"triangle vertices need degree >= 2, got {vertex_degree}"
        )
    leaves_per_vertex = vertex_degree - 2
    needed = num_triangles * 3 * (1 + leaves_per_vertex)
    if needed > n:
        raise ValueError(
            f"n={n} too small: {num_triangles} triangles at degree "
            f"{vertex_degree} need {needed} vertices"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    graph = Graph(n, backend=backend)
    cursor = 3 * num_triangles
    for t in range(num_triangles):
        a, b, c = vertices[3 * t: 3 * t + 3]
        graph.add_edge(a, b)
        graph.add_edge(a, c)
        graph.add_edge(b, c)
        for member in (a, b, c):
            for _ in range(leaves_per_vertex):
                graph.add_edge(member, vertices[cursor])
                cursor += 1
    return graph


def disjoint_cliques(n: int, clique_size: int, count: int,
                     seed: int = 0, backend: str | None = None) -> Graph:
    """``count`` vertex-disjoint copies of K_{clique_size}.

    Every clique vertex has degree ``clique_size - 1`` and a near-perfect
    matching of disjoint triangle-vees on its neighbourhood — the ideal
    *full vertex* population (α ≈ 1) at a pinned degree.  Used to measure
    the Theorem 3.20 found-path cost Õ(k·sqrt(d(B_min)) + k²), which
    presumes B_min's vertices carry Θ(ε·d) disjoint vees.
    """
    if clique_size < 3:
        raise ValueError(
            f"cliques need >= 3 vertices to hold triangles, "
            f"got {clique_size}"
        )
    if count * clique_size > n:
        raise ValueError(
            f"n={n} too small for {count} disjoint K_{clique_size}"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    graph = Graph(n, backend=backend)
    for index in range(count):
        members = vertices[index * clique_size: (index + 1) * clique_size]
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v)
    return graph


def triangle_free_degree_spread(n: int, d: float, max_degree: int,
                                seed: int = 0,
                                backend: str | None = None) -> Graph:
    """Triangle-free control with degrees spread across all buckets.

    A bipartite graph (hence triangle-free) whose left side contains
    vertices of degree ~3^i for every bucket i up to ``max_degree``, with
    roughly equal edge mass per bucket, totalling ≈ nd/2 edges.  This is
    the *worst-case driver* for the unrestricted protocol: a one-sided
    tester never finds a triangle here, so it pays its full bucket-loop
    cost, and every bucket up to d_h is populated so no iteration exits
    early — the measured cost is the Õ(k(nd)^{1/4} + k²) bound itself.
    """
    rng = random.Random(seed)
    half = n // 2
    if half < 2:
        return Graph(n, backend=backend)
    max_degree = min(max_degree, half - 1)
    bucket_degrees: list[int] = []
    degree = 1
    while degree <= max_degree:
        bucket_degrees.append(degree)
        degree *= 3
    if not bucket_degrees:
        bucket_degrees = [1]
    if bucket_degrees[-1] < max_degree:
        # Include the exact ceiling so the top bucket tracks max_degree
        # instead of the nearest power of 3 below it.
        bucket_degrees.append(max_degree)
    total_edges = n * d / 2.0
    per_bucket = total_edges / len(bucket_degrees)
    counts = [
        max(1, int(per_bucket / bucket_degree))
        for bucket_degree in bucket_degrees
    ]
    total_left = sum(counts)
    if total_left > half:
        shrink = half / total_left
        counts = [max(1, int(count * shrink)) for count in counts]
    graph = Graph(n, backend=backend)
    left_cursor = 0
    right = list(range(half, n))
    # Heavy buckets first, so the high-degree vertices always exist even
    # when the left side runs out of slots.
    for bucket_degree, count in sorted(
        zip(bucket_degrees, counts), reverse=True
    ):
        for _ in range(count):
            if left_cursor >= half:
                break
            v = left_cursor
            left_cursor += 1
            partners = rng.sample(right, min(bucket_degree, len(right)))
            for u in partners:
                graph.add_edge(v, u)
    return graph


def embed_in_larger_graph(core: Graph, total_n: int, seed: int = 0,
                          backend: str | None = None) -> Graph:
    """Lemma 4.17 embedding: the core plus isolated vertices, shuffled ids.

    Triangle structure and distance to triangle-freeness are exactly those
    of the core; only n (and hence the average degree) changes.
    """
    if total_n < core.n:
        raise ValueError(
            f"target size {total_n} smaller than core size {core.n}"
        )
    rng = random.Random(seed)
    relabel = list(range(total_n))
    rng.shuffle(relabel)
    graph = Graph(total_n, backend=backend)
    for u, v in core.edges():
        graph.add_edge(relabel[u], relabel[v])
    return graph

"""Triangle machinery: detection, enumeration, vees, packings, farness.

The paper's promise problem distinguishes triangle-free graphs from graphs
that are ``epsilon``-far from triangle-free, i.e. at least ``epsilon * |E|``
edges must be removed to destroy all triangles.  Exact distance is NP-hard in
general, but the paper only ever uses farness through one consequence
(Observation 3.3): an ``epsilon``-far graph contains at least
``epsilon * n * d`` *edge-disjoint* triangle-vees, equivalently
``epsilon * |E| / 3``-ish edge-disjoint triangles.  This module provides:

* exact triangle detection / enumeration / counting,
* triangle-vee utilities (Definition 2) and triangle edges (Definition 3),
* a greedy maximal edge-disjoint triangle packing, which certifies a lower
  bound on the distance (each packed triangle needs one removed edge),
* and a certified ``is_epsilon_far`` predicate built on the packing.

The packing lower bound is what generators use to *certify* that a produced
instance really satisfies the promise, so protocol correctness tests never
depend on an uncertified farness claim.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "find_triangle",
    "iter_triangles",
    "count_triangles",
    "triangle_edges",
    "is_triangle_free",
    "contains_triangle_among",
    "find_triangle_among",
    "iter_triangle_vees",
    "is_triangle_vee",
    "close_vee",
    "greedy_triangle_packing",
    "packing_distance_lower_bound",
    "is_epsilon_far_certified",
    "make_triangle_free_by_removal",
]

Triangle = tuple[int, int, int]


def _canonical_triangle(a: int, b: int, c: int) -> Triangle:
    x, y, z = sorted((a, b, c))
    return (x, y, z)


def find_triangle(graph: Graph) -> Triangle | None:
    """Return some triangle of ``graph`` or ``None``.

    Iterates edges and intersects endpoint neighbourhoods — O(sum of
    min-degree over edges), fine at reproduction scales.
    """
    for u, v in graph.edges():
        smaller, larger = (
            (u, v) if graph.degree(u) <= graph.degree(v) else (v, u)
        )
        for w in graph.neighbors(smaller):
            if w != larger and graph.has_edge(w, larger):
                return _canonical_triangle(u, v, w)
    return None


def iter_triangles(graph: Graph) -> Iterator[Triangle]:
    """Yield every triangle exactly once (vertices ascending)."""
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in common:
            if w > v:  # u < v < w guarantees uniqueness
                yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    return sum(1 for _ in iter_triangles(graph))


def is_triangle_free(graph: Graph) -> bool:
    return find_triangle(graph) is None


def triangle_edges(graph: Graph) -> set[Edge]:
    """All edges that participate in at least one triangle (Definition 3)."""
    result: set[Edge] = set()
    for a, b, c in iter_triangles(graph):
        result.add((a, b))
        result.add((a, c))
        result.add((b, c))
    return result


def contains_triangle_among(edges: Iterable[Edge]) -> bool:
    """Does this plain edge collection contain a triangle?

    Used by referees, which receive bags of edges rather than a graph.
    """
    return find_triangle_among(edges) is not None


def find_triangle_among(edges: Iterable[Edge]) -> Triangle | None:
    """Find a triangle inside a plain edge collection, or ``None``."""
    adjacency: dict[int, set[int]] = {}
    for u, v in edges:
        u, v = canonical_edge(u, v)
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    for u, neighbours in adjacency.items():
        for v in neighbours:
            if v < u:
                continue
            common = neighbours & adjacency[v]
            for w in common:
                return _canonical_triangle(u, v, w)
    return None


# ----------------------------------------------------------------------
# Triangle-vees (Definition 2)
# ----------------------------------------------------------------------
def is_triangle_vee(graph: Graph, e1: Edge, e2: Edge) -> bool:
    """Is the edge pair a triangle-vee, i.e. shares a vertex and closes?

    ``{{u,v},{v,w}}`` is a triangle-vee when ``{u,w}`` is also an edge.
    """
    shared = set(e1) & set(e2)
    if len(shared) != 1:
        return False
    (u,) = set(e1) - shared
    (w,) = set(e2) - shared
    return graph.has_edge(u, w)


def close_vee(graph: Graph, e1: Edge, e2: Edge) -> Edge | None:
    """The closing edge of the vee, if the pair is a vee and it closes."""
    shared = set(e1) & set(e2)
    if len(shared) != 1:
        return None
    (u,) = set(e1) - shared
    (w,) = set(e2) - shared
    if graph.has_edge(u, w):
        return canonical_edge(u, w)
    return None


def iter_triangle_vees(graph: Graph, source: int) -> Iterator[tuple[Edge, Edge]]:
    """All triangle-vees whose source (shared vertex) is ``source``."""
    neighbours = sorted(graph.neighbors(source))
    for i, u in enumerate(neighbours):
        for w in neighbours[i + 1:]:
            if graph.has_edge(u, w):
                yield (
                    canonical_edge(source, u),
                    canonical_edge(source, w),
                )


# ----------------------------------------------------------------------
# Packings and farness
# ----------------------------------------------------------------------
def greedy_triangle_packing(graph: Graph) -> list[Triangle]:
    """A maximal set of pairwise edge-disjoint triangles, greedily.

    Maximality implies the packing is a 3-approximation of the maximum
    packing, and each packed triangle certifies one necessary edge removal,
    so ``len(packing)`` lower-bounds the distance to triangle-freeness.
    """
    used_edges: set[Edge] = set()
    packing: list[Triangle] = []
    for a, b, c in iter_triangles(graph):
        edges = ((a, b), (a, c), (b, c))
        if any(edge in used_edges for edge in edges):
            continue
        used_edges.update(edges)
        packing.append((a, b, c))
    return packing


def packing_distance_lower_bound(graph: Graph) -> int:
    """Certified lower bound on #edges to remove for triangle-freeness."""
    return len(greedy_triangle_packing(graph))


def is_epsilon_far_certified(graph: Graph, epsilon: float) -> bool:
    """Certify ``epsilon``-farness via the greedy packing lower bound.

    Returns True only when the packing *proves* farness; a False does not
    prove closeness (the bound may simply be loose).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    required = epsilon * graph.num_edges
    return packing_distance_lower_bound(graph) >= required


def make_triangle_free_by_removal(graph: Graph) -> tuple[Graph, int]:
    """Destroy all triangles by repeated edge deletion; returns (graph, #removed).

    Greedy upper bound on the distance: repeatedly remove the edge that
    currently participates in the most triangles.  Used by tests to sandwich
    the true distance between the packing lower bound and this upper bound.
    """
    work = graph.copy()
    removed = 0
    while True:
        counts: dict[Edge, int] = {}
        for a, b, c in iter_triangles(work):
            for edge in ((a, b), (a, c), (b, c)):
                counts[edge] = counts.get(edge, 0) + 1
        if not counts:
            return work, removed
        busiest = max(counts, key=lambda edge: (counts[edge], edge))
        work.remove_edge(*busiest)
        removed += 1

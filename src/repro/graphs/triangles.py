"""Triangle machinery: detection, enumeration, vees, packings, farness.

The paper's promise problem distinguishes triangle-free graphs from graphs
that are ``epsilon``-far from triangle-free, i.e. at least ``epsilon * |E|``
edges must be removed to destroy all triangles.  Exact distance is NP-hard in
general, but the paper only ever uses farness through one consequence
(Observation 3.3): an ``epsilon``-far graph contains at least
``epsilon * n * d`` *edge-disjoint* triangle-vees, equivalently
``epsilon * |E| / 3``-ish edge-disjoint triangles.  This module provides:

* exact triangle detection / enumeration / counting,
* triangle-vee utilities (Definition 2) and triangle edges (Definition 3),
* a greedy maximal edge-disjoint triangle packing, which certifies a lower
  bound on the distance (each packed triangle needs one removed edge),
* and a certified ``is_epsilon_far`` predicate built on the packing.

The packing lower bound is what generators use to *certify* that a produced
instance really satisfies the promise, so protocol correctness tests never
depend on an uncertified farness claim.

Everything here runs on the bitset kernel: a common neighbourhood is one
``&`` of two adjacency masks, and enumeration walks set bits in ascending
order, so all outputs are deterministic (vertices ascending) and match the
order-normalized reference implementations in :mod:`repro.graphs.reference`
bit for bit.  Kernels with native triangle accelerators — the packed
kernel's word-level wedge scans, the CSR kernel's merge-intersection
sweeps over sorted adjacency arrays — are consulted first through
``_kernel_native`` and are contracted to return exactly what the generic
int-row algorithms would.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator

from repro.graphs.graph import Edge, Graph, canonical_edge, iter_bits

__all__ = [
    "find_triangle",
    "iter_triangles",
    "count_triangles",
    "triangle_edges",
    "is_triangle_free",
    "contains_triangle_among",
    "find_triangle_among",
    "find_triangle_in_rows",
    "iter_triangle_vees",
    "is_triangle_vee",
    "close_vee",
    "greedy_triangle_packing",
    "packing_distance_lower_bound",
    "clique_packing_density_floor",
    "is_epsilon_far_certified",
    "make_triangle_free_by_removal",
]

Triangle = tuple[int, int, int]


def _canonical_triangle(a: int, b: int, c: int) -> Triangle:
    x, y, z = sorted((a, b, c))
    return (x, y, z)


def _kernel_native(graph: Graph, name: str):
    """The kernel's native accelerator for ``name``, already evaluated.

    Kernels may implement ``count_triangles`` / ``find_triangle`` /
    ``greedy_triangle_packing`` natively (the packed kernel's wedge
    scans, the CSR kernel's merge-intersection sweeps); natives are
    contracted to return results identical to the
    generic int-row algorithms and may answer ``NotImplemented`` to
    decline (e.g. on dense graphs) — both "no native" and "declined"
    come back here as ``NotImplemented`` so callers fall through.
    """
    native = getattr(getattr(graph, "kernel", None), name, None)
    if native is None:
        return NotImplemented
    return native()


def find_triangle(graph: Graph) -> Triangle | None:
    """Return the first triangle in ascending order, or ``None``.

    Scans edges ascending; the first edge whose endpoints share a
    neighbour closes with the lowest such apex (equivalently: the
    lexicographically minimal canonical triple).
    """
    native = _kernel_native(graph, "find_triangle")
    if native is not NotImplemented:
        return native
    rows = graph.adjacency_rows()
    for u in range(graph.n):
        row_u = rows[u]
        upper = row_u >> (u + 1)
        while upper:
            low = upper & -upper
            v = u + low.bit_length()
            common = row_u & rows[v]
            if common:
                apex = common & -common
                return _canonical_triangle(u, v, apex.bit_length() - 1)
            upper ^= low
    return None


def iter_triangles(graph: Graph) -> Iterator[Triangle]:
    """Yield every triangle exactly once (vertices ascending)."""
    rows = graph.adjacency_rows()
    for u in range(graph.n):
        upper = rows[u] >> (u + 1)
        row_u = rows[u]
        while upper:
            low = upper & -upper
            v = u + low.bit_length()
            above = (row_u & rows[v]) >> (v + 1)
            while above:
                apex = above & -above
                yield (u, v, v + apex.bit_length())  # u < v < w: unique
                above ^= apex
            upper ^= low


def count_triangles(graph: Graph) -> int:
    """#triangles — one ``&`` + popcount per edge.

    Summing |N(u) ∩ N(v)| over canonical edges counts every triangle
    exactly three times (once per side), so no per-edge shift is needed
    to deduplicate — the single most-executed loop in the repo stays at
    two big-int ops per edge.
    """
    native = _kernel_native(graph, "count_triangles")
    if native is not NotImplemented:
        return native
    rows = graph.adjacency_rows()
    total = 0
    for u in range(graph.n):
        row_u = rows[u]
        upper = row_u >> (u + 1)
        while upper:
            low = upper & -upper
            total += (row_u & rows[u + low.bit_length()]).bit_count()
            upper ^= low
    return total // 3


def is_triangle_free(graph: Graph) -> bool:
    return find_triangle(graph) is None


def triangle_edges(graph: Graph) -> set[Edge]:
    """All edges that participate in at least one triangle (Definition 3).

    An edge lies on a triangle iff its endpoints share a neighbour, so
    one mask intersection per edge decides membership.
    """
    rows = graph.adjacency_rows()
    result: set[Edge] = set()
    for u in range(graph.n):
        row_u = rows[u]
        upper = row_u >> (u + 1)
        while upper:
            low = upper & -upper
            v = u + low.bit_length()
            if row_u & rows[v]:
                result.add((u, v))
            upper ^= low
    return result


def contains_triangle_among(edges: Iterable[Edge]) -> bool:
    """Does this plain edge collection contain a triangle?

    Used by referees, which receive bags of edges rather than a graph.
    """
    return find_triangle_among(edges) is not None


def find_triangle_among(edges: Iterable[Edge]) -> Triangle | None:
    """Find a triangle inside a plain edge collection, or ``None``."""
    adjacency: dict[int, int] = {}
    for u, v in edges:
        u, v = canonical_edge(u, v)
        adjacency[u] = adjacency.get(u, 0) | (1 << v)
        adjacency[v] = adjacency.get(v, 0) | (1 << u)
    for u, mask in adjacency.items():
        for v in iter_bits(mask >> (u + 1)):
            common = mask & adjacency[v + u + 1]
            if common:
                low = common & -common
                return _canonical_triangle(
                    u, v + u + 1, low.bit_length() - 1
                )
    return None


def find_triangle_in_rows(rows) -> Triangle | None:
    """First triangle (ascending) in raw per-vertex adjacency masks.

    The kernel form of :func:`find_triangle` for callers that hold bare
    rows rather than a :class:`Graph` — referees that union messages
    word-wide, the blackboard's posted-rows board.  Scans base edges
    ascending; the first edge whose endpoints share a neighbour closes
    with the lowest such apex, so the result is a deterministic function
    of the edge *set*, independent of any message or iteration order.
    """
    for u in range(len(rows)):
        row_u = rows[u]
        upper = row_u >> (u + 1)
        while upper:
            low = upper & -upper
            v = u + low.bit_length()
            common = row_u & rows[v]
            if common:
                apex = common & -common
                return _canonical_triangle(u, v, apex.bit_length() - 1)
            upper ^= low
    return None


# ----------------------------------------------------------------------
# Triangle-vees (Definition 2)
# ----------------------------------------------------------------------
def is_triangle_vee(graph: Graph, e1: Edge, e2: Edge) -> bool:
    """Is the edge pair a triangle-vee, i.e. shares a vertex and closes?

    ``{{u,v},{v,w}}`` is a triangle-vee when ``{u,w}`` is also an edge.
    """
    shared = set(e1) & set(e2)
    if len(shared) != 1:
        return False
    (u,) = set(e1) - shared
    (w,) = set(e2) - shared
    return graph.has_edge(u, w)


def close_vee(graph: Graph, e1: Edge, e2: Edge) -> Edge | None:
    """The closing edge of the vee, if the pair is a vee and it closes."""
    shared = set(e1) & set(e2)
    if len(shared) != 1:
        return None
    (u,) = set(e1) - shared
    (w,) = set(e2) - shared
    if graph.has_edge(u, w):
        return canonical_edge(u, w)
    return None


def iter_triangle_vees(graph: Graph, source: int) -> Iterator[tuple[Edge, Edge]]:
    """All triangle-vees whose source (shared vertex) is ``source``."""
    nmask = graph.neighbor_mask(source)
    for u in iter_bits(nmask):
        closing = (graph.neighbor_mask(u) & nmask) >> (u + 1)
        while closing:
            low = closing & -closing
            yield (
                canonical_edge(source, u),
                canonical_edge(source, u + low.bit_length()),
            )
            closing ^= low


# ----------------------------------------------------------------------
# Packings and farness
# ----------------------------------------------------------------------
def greedy_triangle_packing(graph: Graph) -> list[Triangle]:
    """A maximal set of pairwise edge-disjoint triangles, greedily.

    Maximality implies the packing is a 3-approximation of the maximum
    packing, and each packed triangle certifies one necessary edge removal,
    so ``len(packing)`` lower-bounds the distance to triangle-freeness.

    Scans triangles ascending, tracking used edges as per-vertex bitmasks:
    for a base edge {u, v} the viable apexes are
    ``common_neighbors(u, v) & ~(used[u] | used[v])`` in one expression,
    and at most one triangle per base edge can ever be packed.

    The scan is exactly lexicographic greedy over the canonical triangle
    list (the minimum viable apex *is* the lex-next triangle on a free
    base edge), which is the formulation kernel natives reproduce.
    """
    native = _kernel_native(graph, "greedy_triangle_packing")
    if native is not NotImplemented:
        return native
    rows = graph.adjacency_rows()
    used = [0] * graph.n
    packing: list[Triangle] = []
    for u in range(graph.n):
        row_u = rows[u]
        # Base edges still free at u: candidates can only shrink as the
        # packing grows, so the used-mask is folded in once per vertex
        # and again per hit.
        upper = (row_u & ~used[u]) >> (u + 1)
        while upper:
            low = upper & -upper
            upper ^= low  # consume the base edge before any refresh
            v = u + low.bit_length()
            common = row_u & rows[v]
            if not common:
                continue  # background edge: one & and out
            blocked = used[u] | used[v]
            viable = (common & ~blocked if blocked else common) >> (v + 1)
            if viable:
                apex = viable & -viable
                w = v + apex.bit_length()
                used[u] |= (1 << v) | (1 << w)
                used[v] |= (1 << u) | (1 << w)
                used[w] |= (1 << u) | (1 << v)
                packing.append((u, v, w))
                upper &= (~used[u]) >> (u + 1)
    return packing


def packing_distance_lower_bound(graph: Graph) -> int:
    """Certified lower bound on #edges to remove for triangle-freeness."""
    return len(greedy_triangle_packing(graph))


def clique_packing_density_floor(clique_size: int) -> Fraction:
    """Guaranteed packing/|E| of any *maximal* triangle packing of K_m.

    A maximal edge-disjoint packing leaves a triangle-free residue (a
    triangle of unused edges could still be packed), and by Turán the
    residue has at most ``m²/4`` edges per clique, so the packing holds
    at least ``(|E| - m²/4) / 3`` triangles — a density of exactly
    ``(m-2) / (6(m-1))`` of the clique's ``m(m-1)/2`` edges.  This is
    the instance-derived floor drivers on disjoint-``K_m`` families must
    use: the naive "greedy reaches the maximum's ~1/3" intuition fails
    for small cliques (K₉ measures 0.222), while this bound (7/48 for
    K₉) is guaranteed for every maximal packing and every seed.
    """
    if clique_size < 3:
        raise ValueError(
            f"clique_size must be >= 3 to hold a triangle, got {clique_size}"
        )
    return Fraction(clique_size - 2, 6 * (clique_size - 1))


def is_epsilon_far_certified(graph: Graph, epsilon: float) -> bool:
    """Certify ``epsilon``-farness via the greedy packing lower bound.

    Returns True only when the packing *proves* farness; a False does not
    prove closeness (the bound may simply be loose).

    The comparison is exact: ``epsilon`` is reconstructed as the simplest
    rational within one float ulp (so 0.1 means 1/10, not
    0.1000000000000000055...), and the packing is compared against
    ``epsilon * |E|`` by integer cross-multiplication.  A packing of
    exactly ``epsilon * |E|`` triangles therefore certifies, where the
    naive float product used to reject it by one ulp of drift.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    required = _exact_fraction(epsilon) * graph.num_edges
    return packing_distance_lower_bound(graph) >= required


def _exact_fraction(value: float) -> Fraction:
    """The simplest rational that rounds to ``value`` as a float."""
    exact = Fraction(value)
    simplest = exact.limit_denominator(10 ** 12)
    # Only accept the simplification when it is lossless as a float —
    # e.g. 0.1 -> 1/10 — so arbitrary epsilons keep their exact value.
    return simplest if float(simplest) == value else exact


def make_triangle_free_by_removal(graph: Graph) -> tuple[Graph, int]:
    """Destroy all triangles by repeated edge deletion; returns (graph, #removed).

    Greedy upper bound on the distance: repeatedly remove the edge that
    currently participates in the most triangles.  Used by tests to sandwich
    the true distance between the packing lower bound and this upper bound.

    Per-edge triangle counts are maintained *incrementally*: removing
    {u, v} only touches the counts of edges {u, w} / {v, w} for common
    neighbours w, instead of re-enumerating every triangle per removal.
    The busiest-edge choice (ties broken by canonical edge order) is
    identical to the full recount, so outputs match the reference.
    """
    work = graph.copy()
    counts: dict[Edge, int] = {}
    for a, b, c in iter_triangles(work):
        for edge in ((a, b), (a, c), (b, c)):
            counts[edge] = counts.get(edge, 0) + 1
    removed = 0
    while counts:
        busiest = max(counts, key=lambda edge: (counts[edge], edge))
        u, v = busiest
        for w in iter_bits(work.common_neighbors(u, v)):
            for edge in (canonical_edge(u, w), canonical_edge(v, w)):
                remaining = counts[edge] - 1
                if remaining:
                    counts[edge] = remaining
                else:
                    del counts[edge]
        del counts[busiest]
        work.remove_edge(u, v)
        removed += 1
    return work, removed

"""Section 4 lower-bound machinery, executable.

* :mod:`repro.lowerbounds.information` — entropy/KL/MI toolkit and the
  paper's information lemmas (4.2, 4.3, 4.13) as checkable statements;
* :mod:`repro.lowerbounds.distributions` — the hard distribution µ and its
  canonical 3-player split;
* :mod:`repro.lowerbounds.covered` — reported/covered edges and Δ_t sums by
  exact posterior enumeration (Definitions 10/11, Lemma 4.6);
* :mod:`repro.lowerbounds.boolean_matching` — BM_n and the Theorem 4.16
  reduction for d = Θ(1);
* :mod:`repro.lowerbounds.symmetrization` — the Theorem 4.15 k-player lift
  and its expected-cost identity;
* :mod:`repro.lowerbounds.embedding` — the Lemma 4.17 degree-downscaling
  embedding and the transferred Theorem 4.1 bounds.
"""

from repro.lowerbounds.boolean_matching import (
    BMInstance,
    bm_product,
    gadget_has_triangle,
    reduction_graph,
    reduction_partition,
    sample_bm_instance,
)
from repro.lowerbounds.covered import (
    PosteriorAnalysis,
    analyze_player,
    covered_edges,
    covered_probability,
    delta_sum,
    expected_total_divergence,
    message_entropy_bits,
    reported_edges,
    truncation_message,
)
from repro.lowerbounds.distributions import (
    MuDistribution,
    conditioned_error_bound,
    MuSample,
    estimate_far_probability,
    split_three_players,
)
from repro.lowerbounds.embedding import (
    EmbeddedInstance,
    core_size_for_degree,
    embed_mu_for_degree,
    transferred_oneway_bound,
    transferred_simultaneous_bound,
)
from repro.lowerbounds.information import (
    bernoulli_kl,
    binary_entropy,
    entropy,
    kl_divergence,
    lemma_4_3_holds,
    lemma_4_3_lower_bound,
    lemma_4_13_bound,
    mutual_information,
    mutual_information_from_joint,
    reported_edge_divergence,
    superadditivity_gap,
)
from repro.lowerbounds.oneway_analysis import (
    TranscriptStats,
    analyze_transcript,
    coverage_bound_rhs,
    delta_plus_sum,
    expected_transcript_stats,
)
from repro.lowerbounds.oneway_protocols import (
    OneWayCurvePoint,
    budget_success_curve,
    oneway_triangle_edge_protocol,
)
from repro.lowerbounds.symmetrization import (
    SymmetrizationReport,
    embed,
    sample_eta,
    verify_cost_identity,
)

__all__ = [
    "BMInstance",
    "bm_product",
    "gadget_has_triangle",
    "reduction_graph",
    "reduction_partition",
    "sample_bm_instance",
    "PosteriorAnalysis",
    "analyze_player",
    "covered_edges",
    "covered_probability",
    "delta_sum",
    "expected_total_divergence",
    "message_entropy_bits",
    "reported_edges",
    "truncation_message",
    "MuDistribution",
    "conditioned_error_bound",
    "MuSample",
    "estimate_far_probability",
    "split_three_players",
    "EmbeddedInstance",
    "core_size_for_degree",
    "embed_mu_for_degree",
    "transferred_oneway_bound",
    "transferred_simultaneous_bound",
    "bernoulli_kl",
    "binary_entropy",
    "entropy",
    "kl_divergence",
    "lemma_4_3_holds",
    "lemma_4_3_lower_bound",
    "lemma_4_13_bound",
    "mutual_information",
    "mutual_information_from_joint",
    "reported_edge_divergence",
    "superadditivity_gap",
    "TranscriptStats",
    "analyze_transcript",
    "coverage_bound_rhs",
    "delta_plus_sum",
    "expected_transcript_stats",
    "OneWayCurvePoint",
    "budget_success_curve",
    "oneway_triangle_edge_protocol",
    "SymmetrizationReport",
    "embed",
    "sample_eta",
    "verify_cost_identity",
]

"""Boolean Matching and the Theorem 4.16 reduction (degree-O(1) hardness).

The Boolean Matching problem BM_n (Definition 12): Alice holds a vector
``x ∈ {0,1}^{2n}``; Bob holds a perfect matching M on [2n] and a vector
``w ∈ {0,1}^n``; they must distinguish ``Mx ⊕ w = 0`` from ``Mx ⊕ w = 1``,
where ``(Mx)_i`` is the XOR of x over the i-th matching edge.  Its one-way
randomized complexity is Ω(sqrt(n)) ([28]/[36]).

Theorem 4.16's reduction turns a BM instance into a graph on
``1 + 4n`` vertices (a hub u plus two "sides" (j,0),(j,1) for each index
j ∈ [2n]):

* Alice connects the hub to side x_j of every column j;
* Bob, per matching edge {j1, j2}: parallel side edges when w_i = 0,
  crossed when w_i = 1.

The gadget at matching edge i contains a triangle iff ``(Mx ⊕ w)_i = 0``,
so the all-zeros case yields n edge-disjoint triangles (a 1-far graph of
average degree O(1)) and the all-ones case is triangle-free — giving the
Ω(sqrt(n)) one-way lower bound on testing triangle-freeness at d = Θ(1).

Everything here is executable: instance samplers for both promise cases,
the reduction graph with its 2-player (and padded 3-player) partition, and
exhaustive verification helpers used by the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.graph import Edge, Graph, iter_bits, mask_of
from repro.graphs.partition import EdgePartition

__all__ = [
    "BMInstance",
    "bm_product",
    "sample_bm_instance",
    "hub_vertex",
    "side_vertex",
    "reduction_graph",
    "reduction_partition",
    "gadget_has_triangle",
]


@dataclass(frozen=True)
class BMInstance:
    """One Boolean Matching input pair.

    ``x`` has length 2n; ``matching`` is a tuple of n disjoint index pairs
    covering [2n]; ``w`` has length n.
    """

    x: tuple[int, ...]
    matching: tuple[tuple[int, int], ...]
    w: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.matching)
        if len(self.x) != 2 * n:
            raise ValueError(
                f"|x| must be 2n = {2 * n}, got {len(self.x)}"
            )
        if len(self.w) != n:
            raise ValueError(f"|w| must be n = {n}, got {len(self.w)}")
        covered = [j for pair in self.matching for j in pair]
        if sorted(covered) != list(range(2 * n)):
            raise ValueError("matching is not a perfect matching on [2n]")
        if any(bit not in (0, 1) for bit in self.x + self.w):
            raise ValueError("x and w must be 0/1 vectors")

    @property
    def n(self) -> int:
        return len(self.matching)


def bm_product(instance: BMInstance) -> tuple[int, ...]:
    """The vector Mx ⊕ w."""
    return tuple(
        instance.x[j1] ^ instance.x[j2] ^ instance.w[i]
        for i, (j1, j2) in enumerate(instance.matching)
    )


def sample_bm_instance(n: int, promise: str, seed: int = 0) -> BMInstance:
    """A random BM instance with ``Mx ⊕ w`` all-zeros or all-ones.

    ``promise`` is ``"zeros"`` (graph 1-far from triangle-free) or
    ``"ones"`` (graph triangle-free); w is solved for after drawing x and
    a uniformly random perfect matching.
    """
    if promise not in ("zeros", "ones"):
        raise ValueError(f"promise must be 'zeros' or 'ones', got {promise!r}")
    rng = random.Random(seed)
    x = tuple(rng.randrange(2) for _ in range(2 * n))
    indices = list(range(2 * n))
    rng.shuffle(indices)
    matching = tuple(
        (min(indices[2 * i], indices[2 * i + 1]),
         max(indices[2 * i], indices[2 * i + 1]))
        for i in range(n)
    )
    target = 0 if promise == "zeros" else 1
    w = tuple(
        x[j1] ^ x[j2] ^ target for (j1, j2) in matching
    )
    return BMInstance(x=x, matching=matching, w=w)


# ----------------------------------------------------------------------
# Reduction graph layout
# ----------------------------------------------------------------------
def hub_vertex() -> int:
    """The hub u of the reduction graph."""
    return 0


def side_vertex(column: int, side: int) -> int:
    """Vertex (column, side) of the reduction graph; columns in [2n]."""
    if side not in (0, 1):
        raise ValueError(f"side must be 0 or 1, got {side}")
    return 1 + 2 * column + side


def reduction_graph(instance: BMInstance
                    ) -> tuple[Graph, set[Edge], set[Edge]]:
    """Build (graph, Alice's edges, Bob's edges) for the reduction.

    Vertices: hub 0 plus (j, b) for j in [2n], b in {0,1} — total 1 + 4n.

    Alice's view is one adjacency row — the hub's neighbour mask,
    committed in a single bulk :meth:`~repro.graphs.graph.Graph.add_neighbors`
    — and Bob's gadget edges accumulate as per-vertex rows (one bit per
    side edge, keyed at the lower endpoint) committed row by row, so the
    reduction is assembled on the mask kernel instead of edge-at-a-time.
    The returned edge sets are enumerated back from those rows.
    """
    n_vertices = 1 + 4 * instance.n
    graph = Graph(n_vertices)
    hub = hub_vertex()
    hub_row = 0
    for j, bit in enumerate(instance.x):
        hub_row |= 1 << side_vertex(j, bit)
    graph.add_neighbors(hub, hub_row)
    alice: set[Edge] = {(hub, v) for v in iter_bits(hub_row)}
    bob_rows: dict[int, int] = {}
    for i, (j1, j2) in enumerate(instance.matching):
        if instance.w[i] == 0:
            pairs = ((0, 0), (1, 1))
        else:
            pairs = ((0, 1), (1, 0))
        for b1, b2 in pairs:
            u, v = side_vertex(j1, b1), side_vertex(j2, b2)
            if v < u:
                u, v = v, u
            bob_rows[u] = bob_rows.get(u, 0) | (1 << v)
    bob: set[Edge] = set()
    for u, row in bob_rows.items():
        graph.add_neighbors(u, row)
        for v in iter_bits(row):
            bob.add((u, v))
    return graph, alice, bob


def reduction_partition(instance: BMInstance, k: int = 2) -> EdgePartition:
    """The reduction as an EdgePartition (extra players get empty views)."""
    if k < 2:
        raise ValueError(f"the reduction needs k >= 2, got {k}")
    graph, alice, bob = reduction_graph(instance)
    views = [frozenset(alice), frozenset(bob)]
    views.extend(frozenset() for _ in range(k - 2))
    return EdgePartition(graph, tuple(views))


def gadget_has_triangle(instance: BMInstance, i: int) -> bool:
    """Does the i-th matching gadget contain a triangle?

    Theorem 4.16's dichotomy predicts this is ``(Mx ⊕ w)_i == 0``; tests
    check the prediction against the actual graph.
    """
    graph, _, _ = reduction_graph(instance)
    j1, j2 = instance.matching[i]
    gadget_mask = mask_of((
        hub_vertex(),
        side_vertex(j1, 0), side_vertex(j1, 1),
        side_vertex(j2, 0), side_vertex(j2, 1),
    ))
    rows = graph.induced_subgraph_mask_rows(gadget_mask)
    from repro.graphs.triangles import find_triangle_in_rows

    return find_triangle_in_rows(rows) is not None

"""Symmetrization: lifting 3-player bounds to k players (Theorem 4.15).

Given a symmetric 3-player input distribution µ (each player's marginal is
identical), define the k-player distribution η: draw (X1, X2, X3) ~ µ, hand
X1 and X2 to two distinct random players other than player k, and X3 to
*every* remaining player.  Any k-player simultaneous protocol Π for η then
yields a 3-player one-way protocol Π′ for µ — Alice and Bob play the two
special roles, Charlie plays everyone else and the referee — with

    E_µ |Π′|  =  (2/k) · CC_η(Π),

because in a simultaneous protocol each player's message distribution
depends only on its own marginal, and under η all marginals agree.  A
C-bit 3-player lower bound therefore forces CC(Π) >= (k/2)·C.

This module implements the η sampler, the embedding, and an empirical
verification of the expected-cost identity for arbitrary simultaneous
protocol runners.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Callable

from repro.comm.simultaneous import SimultaneousRun
from repro.graphs.graph import Edge
from repro.graphs.partition import EdgePartition
from repro.lowerbounds.distributions import MuDistribution, MuSample

__all__ = [
    "embed",
    "sample_eta",
    "SymmetrizationReport",
    "verify_cost_identity",
]

ProtocolRunner = Callable[[EdgePartition, int], SimultaneousRun]


def embed(i: int, j: int, sample: MuSample, k: int) -> EdgePartition:
    """embed(i, j, X): the η input placing X1 at i, X2 at j, X3 elsewhere.

    ``i`` and ``j`` must be distinct and must not be the last player
    (index k-1), matching the theorem's construction.
    """
    if k < 3:
        raise ValueError(f"symmetrization needs k >= 3, got {k}")
    if i == j:
        raise ValueError("the two special players must be distinct")
    if not (0 <= i < k - 1 and 0 <= j < k - 1):
        raise ValueError(
            f"special players must be in [0, {k - 1}), got {i}, {j}"
        )
    views: list[frozenset[Edge]] = []
    for player in range(k):
        if player == i:
            views.append(sample.alice_edges)
        elif player == j:
            views.append(sample.bob_edges)
        else:
            views.append(sample.charlie_edges)
    return EdgePartition(sample.graph, tuple(views))


def sample_eta(mu: MuDistribution, k: int, seed: int = 0
               ) -> tuple[EdgePartition, int, int]:
    """One draw from η: a µ sample embedded at random special players."""
    rng = random.Random(seed)
    sample = mu.sample(seed=rng.randrange(2 ** 31))
    i, j = rng.sample(range(k - 1), 2)
    return embed(i, j, sample, k), i, j


@dataclass(frozen=True)
class SymmetrizationReport:
    """Empirical check of E|Π′| = (2/k)·CC(Π)."""

    k: int
    trials: int
    mean_special_bits: float
    """E over trials of (bits sent by the two special players) = E|Π′|."""
    mean_total_bits: float
    """E over trials of the full k-player communication = CC(Π)."""

    @property
    def measured_ratio(self) -> float:
        if self.mean_total_bits == 0:
            return 0.0
        return self.mean_special_bits / self.mean_total_bits

    @property
    def predicted_ratio(self) -> float:
        return 2.0 / self.k

    @property
    def relative_error(self) -> float:
        if self.predicted_ratio == 0:
            return 0.0
        return abs(self.measured_ratio - self.predicted_ratio) / (
            self.predicted_ratio
        )


def verify_cost_identity(mu: MuDistribution, k: int,
                         protocol: ProtocolRunner, trials: int,
                         seed: int = 0) -> SymmetrizationReport:
    """Run Π on η draws and compare special-player cost with (2/k)·CC(Π).

    ``protocol(partition, seed)`` must execute a *simultaneous* protocol
    and return its :class:`SimultaneousRun` (per-player bits are read off
    the ledger).  The identity holds exactly in expectation; the report's
    relative error shrinks with ``trials``.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    special_costs: list[float] = []
    total_costs: list[float] = []
    for trial in range(trials):
        partition, i, j = sample_eta(mu, k, seed=seed + 7919 * trial)
        run = protocol(partition, seed + trial)
        ledger = run.ledger
        special_costs.append(
            float(ledger.player_bits(i) + ledger.player_bits(j))
        )
        total_costs.append(float(ledger.upstream_bits))
    return SymmetrizationReport(
        k=k,
        trials=trials,
        mean_special_bits=statistics.fmean(special_costs),
        mean_total_bits=statistics.fmean(total_costs),
    )

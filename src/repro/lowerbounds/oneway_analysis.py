"""One-way transcript analysis: the Theorem 4.7 quantities, executable.

In the extended one-way model Charlie sees the *whole* Alice/Bob transcript
t, so the covered set C(t) (Definition 11) is driven by both messages
jointly.  Theorem 4.7's engine is a trade-off between two measurable
quantities:

* the **information spend** — the clipped posterior lifts
  ``Δ⁺_t(e) = max(0, Pr[X_e|t] − 2·prior)`` summed over each player's
  potential edges, which Lemmas 4.3/4.6 tie to the transcript length, and
* the **coverage** ``Σ_{(v1,v2)} Pr[Cov(v1,v2) | t]``, which union-bounding
  over the shared U-vertex and conditional independence bound by

      (ΣΔ⁺_A)(ΣΔ⁺_B) + 2p(|V2|·ΣΔ⁺_A + |V1|·ΣΔ⁺_B) + 4p²|U|·#pairs.

  The leading product is the *quadratic advantage* of one-way protocols —
  the reason the one-way bound is only Ω((nd)^{1/6}) while the
  simultaneous model, confined to the linear regime, gets Ω((nd)^{1/3}).

This module computes both sides exactly on small µ universes, per
transcript and in expectation, so tests and benchmarks can watch the
trade-off hold on real message functions.  The coverage bound above is a
theorem (union bound + posterior independence), so tests assert it on
*every* transcript of every analyzed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.lowerbounds.covered import (
    PosteriorAnalysis,
    covered_probability,
)

__all__ = [
    "TranscriptStats",
    "delta_plus_sum",
    "analyze_transcript",
    "expected_transcript_stats",
    "coverage_bound_rhs",
]


def delta_plus_sum(analysis: PosteriorAnalysis, message: Hashable,
                   prior_multiplier: float = 2.0) -> float:
    """Σ_e max(0, posterior − prior_multiplier·prior) for one message."""
    return sum(
        max(
            0.0,
            analysis.posterior(message, item)
            - prior_multiplier * analysis.prior,
        )
        for item in analysis.universe
    )


@dataclass(frozen=True)
class TranscriptStats:
    """The Theorem 4.7 quantities for one (m1, m2) transcript."""

    alice_message: Hashable
    bob_message: Hashable
    probability: float
    delta_plus_alice: float
    """Σ_e Δ⁺_t(e) over Alice's potential edges."""
    delta_plus_bob: float
    """Σ_e Δ⁺_t(e) over Bob's potential edges."""
    cover_mass: float
    """Σ_{(v1,v2)} Pr[Cov(v1,v2) | t]."""
    covered_count: int
    """|C(t)| at the 9/10 threshold."""

    @property
    def delta_plus_total(self) -> float:
        return self.delta_plus_alice + self.delta_plus_bob


def analyze_transcript(alice: PosteriorAnalysis, bob: PosteriorAnalysis,
                       alice_message: Hashable, bob_message: Hashable,
                       pairs: Sequence[tuple[int, int]],
                       u_part: Iterable[int],
                       threshold: float = 0.9) -> TranscriptStats:
    """Compute Δ⁺-spend and coverage for one joint transcript."""
    u_list = list(u_part)
    probability = (
        alice.message_probabilities[alice_message]
        * bob.message_probabilities[bob_message]
    )
    cover_mass = 0.0
    covered_count = 0
    for v1, v2 in pairs:
        cover = covered_probability(
            alice, bob, alice_message, bob_message, v1, v2, u_list
        )
        cover_mass += cover
        if cover >= threshold:
            covered_count += 1
    return TranscriptStats(
        alice_message=alice_message,
        bob_message=bob_message,
        probability=probability,
        delta_plus_alice=delta_plus_sum(alice, alice_message),
        delta_plus_bob=delta_plus_sum(bob, bob_message),
        cover_mass=cover_mass,
        covered_count=covered_count,
    )


def expected_transcript_stats(alice: PosteriorAnalysis,
                              bob: PosteriorAnalysis,
                              pairs: Sequence[tuple[int, int]],
                              u_part: Iterable[int],
                              threshold: float = 0.9
                              ) -> tuple[float, float, float]:
    """(E[ΣΔ⁺], E[cover mass], E[|C(t)|]) over the transcript distribution.

    By the tower rule the cover *mass* is budget-invariant; the Δ⁺-spend
    and the thresholded count are what communication buys.
    """
    expected_delta = 0.0
    expected_mass = 0.0
    expected_count = 0.0
    for m1 in alice.message_probabilities:
        for m2 in bob.message_probabilities:
            stats = analyze_transcript(
                alice, bob, m1, m2, pairs, u_part, threshold
            )
            expected_delta += stats.probability * stats.delta_plus_total
            expected_mass += stats.probability * stats.cover_mass
            expected_count += stats.probability * stats.covered_count
    return expected_delta, expected_mass, expected_count


def coverage_bound_rhs(delta_plus_alice: float, delta_plus_bob: float,
                       prior: float, num_u: int, num_v1: int,
                       num_v2: int) -> float:
    """Theorem 4.7's coverage bound (exact union-bound form).

    With posteriors written as Δ⁺ + 2·prior and the two inputs independent
    given the transcript,

        Σ_{v1,v2} Pr[Cov] <= (ΣΔ⁺_A)(ΣΔ⁺_B)
                             + 2·prior·(|V2|·ΣΔ⁺_A + |V1|·ΣΔ⁺_B)
                             + 4·prior²·|U|·|V1|·|V2|.

    The (ΣΔ⁺)² leading term is the quadratic advantage.
    """
    return (
        delta_plus_alice * delta_plus_bob
        + 2.0 * prior * (
            num_v2 * delta_plus_alice + num_v1 * delta_plus_bob
        )
        + 4.0 * prior ** 2 * num_u * num_v1 * num_v2
    )

"""Reference ``set``-based one-way protocol, kept for differential testing.

This is the pre-mask implementation of
:func:`repro.lowerbounds.oneway_protocols.oneway_triangle_edge_protocol`,
preserved verbatim as an executable specification (the same pattern as
:class:`repro.comm.reference.SetPlayer` and
:class:`repro.graphs.reference.SetGraph`): Alice's and Bob's messages are
assembled from per-edge ``frozenset`` views, and Charlie's intersection
probes nested dict-of-set structures edge by edge.

* ``tests/test_oneway_protocols.py`` asserts the mask-native rewrite
  produces byte-identical :class:`~repro.comm.oneway.OneWayRun`s
  (output, transcript payloads, charged bits) across seeds and budgets,
* ``benchmarks/bench_mask_migration.py`` measures whole one-way trials
  against this baseline.

Nothing in the production code imports this module.
"""

from __future__ import annotations

from repro.comm.encoding import edge_bits
from repro.comm.oneway import OneWayRun, run_extended_oneway
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.graphs.graph import Edge
from repro.lowerbounds.distributions import MuSample

__all__ = ["oneway_triangle_edge_protocol_reference"]


def oneway_triangle_edge_protocol_reference(sample: MuSample,
                                            alice_budget: int,
                                            seed: int = 0) -> OneWayRun:
    """The original per-edge sample-and-intersect protocol on one µ input."""
    if alice_budget < 0:
        raise ValueError(f"budget must be non-negative, got {alice_budget}")
    n = sample.graph.n
    players = make_players(sample.partition)

    def conversation(alice, bob, shared: SharedRandomness, transcript):
        ordered = shared.shuffled(
            sorted(alice.edges, key=lambda e: (e[0], e[1])), tag=1
        )
        alice_sample = sorted(ordered[:alice_budget])
        transcript.append(
            0, alice_sample, max(1, len(alice_sample) * edge_bits(n))
        )
        seeded_us = {min(edge) for edge in alice_sample}
        bob_reply = sorted(
            edge for edge in bob.edges if min(edge) in seeded_us
        )[: max(1, alice_budget)]
        transcript.append(
            1, bob_reply, max(1, len(bob_reply) * edge_bits(n))
        )

    def charlie_output(charlie, transcript, shared) -> Edge | None:
        alice_sample, bob_reply = transcript.payloads()
        # Per U-vertex: which V1 / V2 partners did Alice / Bob certify?
        v1_by_u: dict[int, set[int]] = {}
        for edge in alice_sample:
            u, v1 = min(edge), max(edge)
            v1_by_u.setdefault(u, set()).add(v1)
        v2_by_u: dict[int, set[int]] = {}
        for edge in bob_reply:
            u, v2 = min(edge), max(edge)
            v2_by_u.setdefault(u, set()).add(v2)
        for v1, v2 in sorted(charlie.edges):
            for u in v1_by_u:
                if v1 in v1_by_u[u] and v2 in v2_by_u.get(u, ()):
                    return (v1, v2)
        return None

    return run_extended_oneway(
        players[0], players[1], players[2],
        conversation, charlie_output,
        shared=SharedRandomness(seed),
    )

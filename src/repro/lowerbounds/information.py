"""Information-theory toolkit for the Section 4 lower bounds.

The paper's lower bounds rest on a handful of exact information-theoretic
facts; this module implements each one so tests can verify them numerically
and the covered/reported-edge machinery can evaluate them on real posterior
distributions:

* Shannon entropy, KL divergence (general and Bernoulli), mutual
  information from a joint distribution;
* super-additivity of information for independent coordinates (Lemma 4.2),
  checkable on explicit joint tables;
* Lemma 4.3: ``D(q || p) >= q - 2p`` for ``p < 1/2`` — the inequality that
  converts posterior lift (Δ_t) into divergence and hence into transcript
  bits (Lemma 4.6);
* Lemma 4.13: a reported edge (posterior >= 9/10 against a prior of
  γ/sqrt(n)) costs at least ``(9/40) log n`` divergence — the "each
  reported edge is a little expensive" step behind Corollary 4.14.

All distributions are plain mappings or numpy arrays; logarithms are base 2
(bits) throughout, as in the paper.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "entropy",
    "binary_entropy",
    "kl_divergence",
    "bernoulli_kl",
    "mutual_information",
    "mutual_information_from_joint",
    "superadditivity_gap",
    "lemma_4_3_lower_bound",
    "lemma_4_3_holds",
    "reported_edge_divergence",
    "lemma_4_13_bound",
]


def entropy(distribution: Mapping | Sequence[float]) -> float:
    """Shannon entropy in bits; ignores zero-probability outcomes."""
    probabilities = _as_probabilities(distribution)
    return float(
        -sum(p * math.log2(p) for p in probabilities if p > 0.0)
    )


def binary_entropy(p: float) -> float:
    """H(p) for a Bernoulli(p) variable."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def kl_divergence(mu: Mapping, eta: Mapping) -> float:
    """D(mu || eta) in bits over a shared discrete support.

    Infinite when mu puts mass where eta has none; that is reported as
    ``math.inf`` rather than an exception, matching the convention that a
    transcript ruling out an input carries unbounded pointwise information.
    """
    total = 0.0
    for outcome, p in mu.items():
        if p <= 0.0:
            continue
        q = eta.get(outcome, 0.0)
        if q <= 0.0:
            return math.inf
        total += p * math.log2(p / q)
    return total


def bernoulli_kl(q: float, p: float) -> float:
    """D(Bernoulli(q) || Bernoulli(p)) in bits."""
    for name, value in (("q", q), ("p", p)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0,1], got {value}")
    return kl_divergence({1: q, 0: 1.0 - q}, {1: p, 0: 1.0 - p})


def mutual_information_from_joint(joint: np.ndarray) -> float:
    """I(X; Y) in bits from a joint probability matrix P[x, y]."""
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValueError(f"joint must be 2-D, got shape {joint.shape}")
    if not math.isclose(float(joint.sum()), 1.0, abs_tol=1e-9):
        raise ValueError("joint probabilities must sum to 1")
    marginal_x = joint.sum(axis=1, keepdims=True)
    marginal_y = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (marginal_x * marginal_y)
        terms = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    return float(terms.sum())


def mutual_information(joint: Mapping[tuple, float]) -> float:
    """I(X; Y) from a sparse joint mapping {(x, y): probability}."""
    xs = sorted({x for x, _ in joint})
    ys = sorted({y for _, y in joint})
    matrix = np.zeros((len(xs), len(ys)))
    x_index = {x: i for i, x in enumerate(xs)}
    y_index = {y: i for i, y in enumerate(ys)}
    for (x, y), p in joint.items():
        matrix[x_index[x], y_index[y]] += p
    return mutual_information_from_joint(matrix)


def superadditivity_gap(joint: Mapping[tuple, float]) -> float:
    """I(X1,...,Xm ; Y) − Σ_i I(X_i ; Y) for independent X_i (Lemma 4.2).

    ``joint`` maps ``((x1, ..., xm), y)`` to probability.  The X_i must be
    independent under the marginal for the lemma to apply; the returned gap
    is then guaranteed non-negative, which tests assert.
    """
    keys = list(joint)
    if not keys:
        return 0.0
    m = len(keys[0][0])
    joint_xy = {
        (tuple(x), y): p for (x, y), p in joint.items()
    }
    total_information = mutual_information(joint_xy)
    coordinate_sum = 0.0
    for i in range(m):
        marginal = {}
        for (x, y), p in joint.items():
            key = (x[i], y)
            marginal[key] = marginal.get(key, 0.0) + p
        coordinate_sum += mutual_information(marginal)
    return total_information - coordinate_sum


def lemma_4_3_lower_bound(q: float, p: float) -> float:
    """The claimed lower bound q − 2p of Lemma 4.3."""
    return q - 2.0 * p


def lemma_4_3_holds(q: float, p: float) -> bool:
    """Check D(q || p) >= q − 2p for p < 1/2 (Lemma 4.3)."""
    if not 0.0 < p < 0.5:
        raise ValueError(f"Lemma 4.3 requires p in (0, 1/2), got {p}")
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0,1), got {q}")
    return bernoulli_kl(q, p) >= lemma_4_3_lower_bound(q, p) - 1e-12


def reported_edge_divergence(n: int, gamma: float,
                             posterior: float = 0.9) -> float:
    """Divergence paid to report an edge: D(posterior || γ/sqrt(n))."""
    if n < 4:
        raise ValueError(f"n too small for the asymptotic regime, got {n}")
    prior = gamma / math.sqrt(n)
    if prior >= posterior:
        raise ValueError(
            f"prior {prior} not below posterior {posterior}; "
            f"increase n or decrease gamma"
        )
    return bernoulli_kl(posterior, prior)


def lemma_4_13_bound(n: int) -> float:
    """The paper's lower bound (9/40) log₂ n on a reported edge's cost."""
    return 9.0 * math.log2(n) / 40.0


def _as_probabilities(distribution: Mapping | Sequence[float]) -> list[float]:
    if isinstance(distribution, Mapping):
        values = list(distribution.values())
    else:
        values = list(distribution)
    if any(v < 0 for v in values):
        raise ValueError("probabilities must be non-negative")
    total = sum(values)
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return values

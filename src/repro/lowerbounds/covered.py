"""Covered and reported edges: the Section 4.2 posterior machinery.

The lower bounds reason about what a transcript does to the posterior
distribution of the input:

* an edge is **reported** by a message when its posterior probability of
  being in the sender's input reaches 9/10 (Definition 10);
* a V1×V2 pair is **covered** by Alice's and Bob's messages when the
  posterior probability that some u ∈ U forms a vee over it reaches 9/10
  (Definition 11);
* ``Δ_t(e)`` is the posterior lift ``Pr[X_e = 1 | t] − 2γ/sqrt(n)``, and
  Lemma 4.6 bounds ``E_t Σ_e Δ_t(e)`` by the transcript length.

On small universes all of these are *exactly computable* by enumerating
the 2^|universe| possible inputs, which is what this module does — turning
the paper's proof objects into measurable quantities.  Tests verify
Lemma 4.6's information bound and Lemma 4.11/4.13-style statements on real
message functions; benchmarks sweep message budgets and watch the covered
set (and protocol success) collapse below the predicted thresholds.

Message functions must be deterministic maps from an input edge set to a
hashable message; :func:`truncation_message` builds the canonical
communication-starved family (send the first ``t`` edges under a fixed
order), whose message space directly reflects its bit budget.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.lowerbounds.information import bernoulli_kl

__all__ = [
    "PosteriorAnalysis",
    "analyze_player",
    "delta_sum",
    "reported_edges",
    "expected_total_divergence",
    "covered_probability",
    "covered_edges",
    "truncation_message",
    "message_entropy_bits",
]

Item = tuple[int, int]
MessageFn = Callable[[frozenset], Hashable]

_MAX_UNIVERSE = 22
"""Exact enumeration cap: 2^22 ≈ 4M inputs is the practical ceiling."""


@dataclass(frozen=True)
class PosteriorAnalysis:
    """Exact posterior analysis of one player's message function.

    The player's input is an iid-Bernoulli(p) subset of ``universe``; the
    analysis enumerates every subset, groups by message, and records the
    conditional input distribution and per-item posteriors.
    """

    universe: tuple[Item, ...]
    prior: float
    message_probabilities: dict[Hashable, float]
    posteriors: dict[Hashable, dict[Item, float]]
    inputs_by_message: dict[Hashable, list[tuple[frozenset, float]]]
    """message -> [(input set, conditional probability)]."""

    def posterior(self, message: Hashable, item: Item) -> float:
        return self.posteriors[message].get(item, 0.0)

    def messages(self) -> list[Hashable]:
        return sorted(
            self.message_probabilities, key=lambda m: repr(m)
        )


def analyze_player(universe: Sequence[Item], prior: float,
                   message_of: MessageFn) -> PosteriorAnalysis:
    """Enumerate all inputs over ``universe`` and compute posteriors."""
    if not 0.0 < prior < 1.0:
        raise ValueError(f"prior must be in (0,1), got {prior}")
    if len(universe) > _MAX_UNIVERSE:
        raise ValueError(
            f"universe of {len(universe)} items exceeds the exact "
            f"enumeration cap of {_MAX_UNIVERSE}"
        )
    universe = tuple(universe)
    message_probabilities: dict[Hashable, float] = {}
    mass_with_item: dict[Hashable, dict[Item, float]] = {}
    inputs_by_message: dict[Hashable, list[tuple[frozenset, float]]] = {}
    for size in range(len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            subset = frozenset(combo)
            probability = (
                prior ** len(subset)
                * (1.0 - prior) ** (len(universe) - len(subset))
            )
            message = message_of(subset)
            message_probabilities[message] = (
                message_probabilities.get(message, 0.0) + probability
            )
            per_item = mass_with_item.setdefault(message, {})
            for item in subset:
                per_item[item] = per_item.get(item, 0.0) + probability
            inputs_by_message.setdefault(message, []).append(
                (subset, probability)
            )
    posteriors: dict[Hashable, dict[Item, float]] = {}
    for message, total in message_probabilities.items():
        posteriors[message] = {
            item: mass / total
            for item, mass in mass_with_item.get(message, {}).items()
        }
        inputs_by_message[message] = [
            (subset, probability / total)
            for subset, probability in inputs_by_message[message]
        ]
    return PosteriorAnalysis(
        universe=universe,
        prior=prior,
        message_probabilities=message_probabilities,
        posteriors=posteriors,
        inputs_by_message=inputs_by_message,
    )


def delta_sum(analysis: PosteriorAnalysis, message: Hashable,
              prior_multiplier: float = 2.0) -> float:
    """Σ_e Δ_t(e) = Σ_e (posterior − prior_multiplier · prior) for one t."""
    return sum(
        analysis.posterior(message, item)
        - prior_multiplier * analysis.prior
        for item in analysis.universe
    )


def reported_edges(analysis: PosteriorAnalysis, message: Hashable,
                   threshold: float = 0.9) -> set[Item]:
    """Rep(t): items whose posterior reaches the threshold (Def. 10)."""
    return {
        item
        for item in analysis.universe
        if analysis.posterior(message, item) >= threshold
    }


def expected_total_divergence(analysis: PosteriorAnalysis) -> float:
    """E_t Σ_e D(posterior_e || prior) — Lemma 4.6's left-hand side.

    Super-additivity bounds this by the message entropy, hence by any bit
    budget that can realize the message function.
    """
    total = 0.0
    for message, message_probability in (
        analysis.message_probabilities.items()
    ):
        inner = sum(
            bernoulli_kl(analysis.posterior(message, item), analysis.prior)
            for item in analysis.universe
        )
        total += message_probability * inner
    return total


def message_entropy_bits(analysis: PosteriorAnalysis) -> float:
    """Entropy of the message — the information budget actually used."""
    return -sum(
        p * math.log2(p)
        for p in analysis.message_probabilities.values()
        if p > 0.0
    )


def covered_probability(alice: PosteriorAnalysis, bob: PosteriorAnalysis,
                        alice_message: Hashable, bob_message: Hashable,
                        v1: int, v2: int,
                        u_part: Iterable[int]) -> float:
    """Pr[∃u ∈ U: (u,v1) ∈ E1 ∧ (u,v2) ∈ E2 | messages] — exactly.

    Alice's universe must contain the (u, v1) pairs and Bob's the (u, v2)
    pairs, as *ordered* tuples with the U-vertex first — (0, 1) means
    "u=0 paired with v=1", distinct from (1, 0).  Conditioned on the
    messages the two inputs stay independent (simultaneous/one-way
    protocols), so the joint is a product over the two conditional input
    distributions.
    """
    u_list = list(u_part)
    alice_inputs = alice.inputs_by_message[alice_message]
    bob_inputs = bob.inputs_by_message[bob_message]

    def vee_profile(subset: frozenset, v: int) -> tuple[bool, ...]:
        return tuple((u, v) in subset for u in u_list)

    alice_profiles: dict[tuple[bool, ...], float] = {}
    for subset, probability in alice_inputs:
        profile = vee_profile(subset, v1)
        alice_profiles[profile] = alice_profiles.get(profile, 0.0) + probability
    bob_profiles: dict[tuple[bool, ...], float] = {}
    for subset, probability in bob_inputs:
        profile = vee_profile(subset, v2)
        bob_profiles[profile] = bob_profiles.get(profile, 0.0) + probability

    covered = 0.0
    for profile_a, pa in alice_profiles.items():
        for profile_b, pb in bob_profiles.items():
            if any(a and b for a, b in zip(profile_a, profile_b)):
                covered += pa * pb
    return covered


def covered_edges(alice: PosteriorAnalysis, bob: PosteriorAnalysis,
                  alice_message: Hashable, bob_message: Hashable,
                  pairs: Iterable[tuple[int, int]],
                  u_part: Iterable[int],
                  threshold: float = 0.9) -> set[tuple[int, int]]:
    """C(t): the V1×V2 pairs covered at the threshold (Definition 11)."""
    u_list = list(u_part)
    return {
        (v1, v2)
        for v1, v2 in pairs
        if covered_probability(
            alice, bob, alice_message, bob_message, v1, v2, u_list
        ) >= threshold
    }


def truncation_message(budget: int) -> MessageFn:
    """The canonical starved message: the first ``budget`` edges, sorted.

    With budget t over a universe of m potential edges the message space
    has size O(m^t), i.e. ~t log m bits — sweeping t sweeps the protocol's
    bit budget while keeping the function deterministic and analyzable.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")

    def message_of(subset: frozenset) -> tuple:
        return tuple(sorted(subset)[:budget])

    return message_of

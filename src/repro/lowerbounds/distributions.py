"""The hard input distribution µ of Section 4.2.1, and its 3-player split.

µ samples a tripartite graph on parts U, V1, V2 with every cross-part edge
present independently with probability γ/sqrt(n).  The canonical 3-player
split gives Alice the U×V1 edges (E1), Bob the U×V2 edges (E2), and Charlie
the V1×V2 edges (E3) — Charlie must output one of *his* edges that closes a
triangle with a U-vertex, which is exactly the triangle-edge-finding task
``T^ε_{n,d}`` of Theorem 4.1.

Lemma 4.5 — for small γ, a µ-sample is Ω(1)-far from triangle-free with
probability at least 1/2 — is made checkable by
:func:`estimate_far_probability`, which certifies farness with the greedy
edge-disjoint triangle packing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.generators import TripartiteParts, tripartite_mu
from repro.graphs.graph import Edge, Graph
from repro.graphs.partition import EdgePartition
from repro.graphs.triangles import greedy_triangle_packing

__all__ = [
    "MuDistribution",
    "MuSample",
    "split_three_players",
    "estimate_far_probability",
    "conditioned_error_bound",
]


def conditioned_error_bound(error_on_mu: float,
                            probability_of_condition: float) -> float:
    """Observation 4.4: error on µ|Y is at most error(µ) / Pr[Y].

    A protocol with error δ on µ has error at most δ / Pr[Y] on µ
    conditioned on any event Y — how hardness on µ transfers to the
    far-conditioned distribution µ' (with Pr[far] >= 1/2 by Lemma 4.5,
    the bound only doubles).
    """
    if not 0.0 <= error_on_mu <= 1.0:
        raise ValueError(f"error must be in [0,1], got {error_on_mu}")
    if not 0.0 < probability_of_condition <= 1.0:
        raise ValueError(
            "condition probability must be in (0,1], got "
            f"{probability_of_condition}"
        )
    return min(1.0, error_on_mu / probability_of_condition)


@dataclass(frozen=True)
class MuSample:
    """One draw from µ with its part structure and 3-player split."""

    graph: Graph
    parts: TripartiteParts
    partition: EdgePartition
    """Three players: E1 = U×V1, E2 = U×V2, E3 = V1×V2."""

    @property
    def alice_edges(self) -> frozenset[Edge]:
        return self.partition.views[0]

    @property
    def bob_edges(self) -> frozenset[Edge]:
        return self.partition.views[1]

    @property
    def charlie_edges(self) -> frozenset[Edge]:
        return self.partition.views[2]


@dataclass(frozen=True)
class MuDistribution:
    """µ with fixed part size and γ; ``sample(seed)`` draws instances."""

    part_size: int
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.part_size < 1:
            raise ValueError(
                f"part_size must be positive, got {self.part_size}"
            )
        if self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")

    @property
    def n(self) -> int:
        return 3 * self.part_size

    @property
    def edge_probability(self) -> float:
        return min(1.0, self.gamma / math.sqrt(self.n))

    def expected_average_degree(self) -> float:
        """Θ(γ sqrt(n)): each vertex sees 2·part_size potential partners."""
        return 2.0 * self.part_size * self.edge_probability

    def expected_triangles(self) -> float:
        """part_size³ · p³ — the E[|T|] of Lemma 4.5 (up to its constants)."""
        return self.part_size ** 3 * self.edge_probability ** 3

    def sample(self, seed: int = 0) -> MuSample:
        graph, parts = tripartite_mu(self.part_size, self.gamma, seed=seed)
        return MuSample(
            graph=graph,
            parts=parts,
            partition=split_three_players(graph, parts),
        )

    def sample_far(self, seed: int = 0, min_packing: int = 1,
                   max_tries: int = 200) -> MuSample:
        """µ conditioned on farness (µ' in the paper's notation).

        Rejection-samples until the greedy packing certifies at least
        ``min_packing`` edge-disjoint triangles — the distribution
        Observation 4.4 transfers hardness to.  Raises ``RuntimeError``
        when the condition looks unreachable (e.g. γ far too small).
        """
        for attempt in range(max_tries):
            sample = self.sample(seed=seed + attempt)
            if len(greedy_triangle_packing(sample.graph)) >= min_packing:
                return sample
        raise RuntimeError(
            f"no µ sample met packing >= {min_packing} in "
            f"{max_tries} tries (gamma={self.gamma}, n={self.n})"
        )


def split_three_players(graph: Graph, parts: TripartiteParts
                        ) -> EdgePartition:
    """The Section 4.2 split: (U×V1, U×V2, V1×V2) to (Alice, Bob, Charlie)."""
    u_set = set(parts.u_part)
    v1_set = set(parts.v1_part)
    v2_set = set(parts.v2_part)
    alice: set[Edge] = set()
    bob: set[Edge] = set()
    charlie: set[Edge] = set()
    for u, v in graph.edges():
        endpoints = {u, v}
        if endpoints & u_set and endpoints & v1_set:
            alice.add((u, v))
        elif endpoints & u_set and endpoints & v2_set:
            bob.add((u, v))
        elif endpoints & v1_set and endpoints & v2_set:
            charlie.add((u, v))
        else:
            raise ValueError(
                f"edge {(u, v)} is not cross-part; not a µ graph"
            )
    return EdgePartition(
        graph, (frozenset(alice), frozenset(bob), frozenset(charlie))
    )


def estimate_far_probability(distribution: MuDistribution, trials: int,
                             farness_constant: float = 1.0 / 48.0,
                             seed: int = 0) -> float:
    """Empirical Pr[µ-sample has >= c·γ³·n^{3/2} disjoint triangles].

    Lemma 4.5's quantitative claim: with c₁ = γ³/48 (the paper's constant),
    the packing exceeds c₁ n^{3/2} with probability at least a constant;
    the packing certifies Ω(1)-farness because |E| = Θ(γ n^{3/2}) too.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    threshold = (
        farness_constant * distribution.gamma ** 3
        * distribution.n ** 1.5
    )
    hits = 0
    for trial in range(trials):
        sample = distribution.sample(seed=seed + trial)
        packing = greedy_triangle_packing(sample.graph)
        if len(packing) >= threshold:
            hits += 1
    return hits / trials

"""Degree-downscaling embedding (Lemma 4.17).

A lower bound proved for graphs of n' vertices and average degree Θ((n')^c)
transfers to any lower degree d' by padding: take the hard n'-vertex core
and add isolated vertices until the average degree falls to d'.  Triangles,
farness and the communication problem are untouched — any protocol for the
padded family solves the core family.  Choosing ``n' = (d'·n)^{1/(1+c)}``
makes the padded graph have n vertices and average degree Θ(d'), which is
how the paper converts its d = Θ(sqrt(n)) bounds (c = 1/2) into the
Ω((nd)^{1/6}) / Ω((nd)^{1/3}) forms of Theorem 4.1.

This module computes the embedding sizes, builds padded µ instances, and
restates the transferred bounds so benchmarks can tabulate them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.generators import embed_in_larger_graph
from repro.graphs.graph import Graph
from repro.lowerbounds.distributions import MuDistribution

__all__ = [
    "core_size_for_degree",
    "EmbeddedInstance",
    "embed_mu_for_degree",
    "transferred_oneway_bound",
    "transferred_simultaneous_bound",
]


def core_size_for_degree(n: int, target_degree: float,
                         core_exponent: float = 0.5) -> int:
    """n' = (d'·n)^{1/(1+c)}: core size so the padded graph has degree d'.

    With core degree (n')^c, total edges ≈ n'·(n')^c / 2, so the padded
    average degree is (n')^{1+c} / n = d' exactly when n' is as above.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if target_degree <= 0:
        raise ValueError(
            f"target degree must be positive, got {target_degree}"
        )
    if not 0.0 < core_exponent < 1.0:
        raise ValueError(
            f"core exponent must be in (0,1), got {core_exponent}"
        )
    size = (target_degree * n) ** (1.0 / (1.0 + core_exponent))
    return max(3, min(n, int(round(size))))


@dataclass(frozen=True)
class EmbeddedInstance:
    """A padded hard instance with its provenance."""

    graph: Graph
    core_size: int
    core_average_degree: float
    target_degree: float

    @property
    def achieved_degree(self) -> float:
        return self.graph.average_degree()


def embed_mu_for_degree(n: int, target_degree: float, gamma: float = 0.5,
                        seed: int = 0) -> EmbeddedInstance:
    """A µ core of degree Θ(sqrt(n')) padded to n vertices, degree ≈ d'."""
    core_n = core_size_for_degree(n, target_degree, core_exponent=0.5)
    part_size = max(1, core_n // 3)
    mu = MuDistribution(part_size=part_size, gamma=gamma)
    sample = mu.sample(seed=seed)
    padded = embed_in_larger_graph(sample.graph, n, seed=seed + 1)
    return EmbeddedInstance(
        graph=padded,
        core_size=sample.graph.n,
        core_average_degree=sample.graph.average_degree(),
        target_degree=target_degree,
    )


def transferred_oneway_bound(n: int, d: float) -> float:
    """Ω((nd)^{1/6}): the one-way bound after embedding (Theorem 4.1)."""
    return (n * d) ** (1.0 / 6.0)


def transferred_simultaneous_bound(n: int, d: float) -> float:
    """Ω((nd)^{1/3}): the 3-player simultaneous bound after embedding."""
    return (n * d) ** (1.0 / 3.0)


def bound_at_core(core_n: int, exponent: float) -> float:
    """The core bound f(n') = (n')^exponent, for table rows."""
    return float(core_n) ** exponent


__all__.append("bound_at_core")

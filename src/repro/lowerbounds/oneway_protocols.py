"""Concrete one-way protocols for triangle-edge finding on µ.

Theorem 4.7 lower-bounds *every* extended one-way protocol for the task
``T^ε_{n,d}``: Charlie must output one of his V1×V2 edges that closes a
triangle with some U-vertex.  This module implements the natural upper-
bound family the theorem squeezes:

* Alice sends (a public-coin-selected sample of) her U×V1 edges;
* Bob, seeing Alice's message, sends the U×V2 edges sharing a U-vertex
  with Alice's sample (the back-and-forth the "extended" model permits);
* Charlie intersects: any of his edges (v1, v2) with a common u in both
  samples is a certified triangle edge.

Messages are assembled from the partition's cached adjacency rows
(:meth:`~repro.graphs.partition.EdgePartition.adjacency_rows`): Alice's
pool and Bob's reply are row enumerations (ascending canonical order —
exactly the ``sorted(...)`` order the set-based predecessor imposed, so
transcripts are byte-identical, including the ``shuffled`` draw
sequence), and Charlie's intersection is one per-U-vertex mask ``&``
per candidate edge instead of nested dict-of-set probes.  The per-edge
predecessor survives as
:func:`repro.lowerbounds.reference.oneway_triangle_edge_protocol_reference`.

Success provably needs Alice's sample to seed Ω(1) complete vees, so the
budget/success curve measured by :func:`budget_success_curve` is exactly
the trade-off the Ω(n^{1/4}) bound constrains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.encoding import edge_bits
from repro.comm.oneway import OneWayRun, run_extended_oneway
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.graphs.graph import Edge, iter_bits
from repro.graphs.triangles import triangle_edges
from repro.lowerbounds.distributions import MuDistribution, MuSample
from repro.runtime import (
    Executor,
    InstanceCache,
    TrialResult,
    TrialSpec,
    default_executor,
)

__all__ = [
    "oneway_triangle_edge_protocol",
    "OneWayCurvePoint",
    "budget_success_curve",
]


def oneway_triangle_edge_protocol(sample: MuSample, alice_budget: int,
                                  seed: int = 0) -> OneWayRun:
    """Run the sample-and-intersect one-way protocol on one µ input.

    ``alice_budget`` caps the number of edges Alice forwards; Bob's reply
    is capped at the same count (his relevant edges rarely exceed it).
    Output: one of Charlie's edges certified to close a triangle, or None.
    """
    if alice_budget < 0:
        raise ValueError(f"budget must be non-negative, got {alice_budget}")
    n = sample.graph.n
    # Players wrap the partition's cached adjacency rows, so every row
    # read below is the partition mask itself, built once per sample.
    players = make_players(sample.partition)

    def conversation(alice, bob, shared: SharedRandomness, transcript):
        # Alice's pool in ascending canonical order — the row enumeration
        # equals the predecessor's sorted frozenset, so the public
        # shuffle consumes the identical draw.
        ordered = shared.shuffled(alice.sorted_edges(), tag=1)
        alice_sample = sorted(ordered[:alice_budget])
        transcript.append(
            0, alice_sample, max(1, len(alice_sample) * edge_bits(n))
        )
        # Bob forwards his edges at the seeded U-vertices.  µ-split edges
        # have their U-endpoint as the canonical minimum, so walking the
        # seeded vertices ascending and each row's upper partners emits
        # the reply already sorted; the cap truncates the same prefix.
        seeded_mask = 0
        for u, _v1 in alice_sample:
            seeded_mask |= 1 << u
        reply_cap = max(1, alice_budget)
        bob_reply: list[Edge] = []
        for u in iter_bits(seeded_mask):
            if len(bob_reply) >= reply_cap:
                break
            partners = bob.local_neighbor_mask(u) >> (u + 1)
            while partners:
                low = partners & -partners
                bob_reply.append((u, u + low.bit_length()))
                if len(bob_reply) >= reply_cap:
                    break
                partners ^= low
        transcript.append(
            1, bob_reply, max(1, len(bob_reply) * edge_bits(n))
        )

    def charlie_output(charlie, transcript, shared) -> Edge | None:
        alice_sample, bob_reply = transcript.payloads()
        # Per V-vertex: the mask of U-vertices Alice / Bob certified for
        # it.  An edge (v1, v2) closes a triangle iff the two masks
        # intersect — one ``&`` per candidate edge.
        u_by_v1: dict[int, int] = {}
        for u, v1 in alice_sample:
            u_by_v1[v1] = u_by_v1.get(v1, 0) | (1 << u)
        u_by_v2: dict[int, int] = {}
        for u, v2 in bob_reply:
            u_by_v2[v2] = u_by_v2.get(v2, 0) | (1 << u)
        for v1, mask_v1 in sorted(u_by_v1.items()):
            partners = charlie.local_neighbor_mask(v1) >> (v1 + 1)
            while partners:
                low = partners & -partners
                v2 = v1 + low.bit_length()
                if mask_v1 & u_by_v2.get(v2, 0):
                    return (v1, v2)
                partners ^= low
        return None

    return run_extended_oneway(
        players[0], players[1], players[2],
        conversation, charlie_output,
        shared=SharedRandomness(seed),
    )


@dataclass(frozen=True)
class OneWayCurvePoint:
    """One budget level of the success curve."""

    alice_budget: int
    mean_bits: float
    success_rate: float
    """Fraction of far inputs where the output is a genuine triangle edge."""


def budget_success_curve(mu: MuDistribution, budgets: list[int],
                         trials: int = 8, seed: int = 0, *,
                         workers: int | None = None,
                         executor: Executor | None = None
                         ) -> list[OneWayCurvePoint]:
    """Success probability of the protocol per Alice-budget, on far inputs.

    Outputs are verified against the ground truth (the edge must really be
    a triangle edge) so the curve measures *correct* solutions of the
    paper's task, not lucky guesses.

    Trials are executed through the experiment runtime: serial by
    default, or fanned out over a process pool with ``workers=`` /
    ``executor=`` (the PR 1 seam).  Every trial's randomness is fully
    determined by ``seed`` and its trial index, so serial and parallel
    sweeps return byte-identical curves.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    cache = InstanceCache(max_entries=max(8, trials))

    def build_sample_with_truth(trial: int):
        sample = mu.sample_far(seed=seed + 1009 * trial, min_packing=1)
        return sample, triangle_edges(sample.graph)

    def far_sample_with_truth(trial: int):
        return cache.get_or_build(
            ("mu-far", trial), lambda: build_sample_with_truth(trial)
        )

    def run_one(spec: TrialSpec) -> TrialResult:
        sample, truth = far_sample_with_truth(spec.trial_index)
        run = oneway_triangle_edge_protocol(
            sample, budgets[spec.point_index], seed=spec.seed
        )
        success = run.output is not None and run.output in truth
        return TrialResult.from_outcome(
            spec, bits=run.total_bits, found=success
        )

    specs = [
        TrialSpec(
            point_index=point, trial_index=trial, n=mu.n,
            d=float(budget), k=3, seed=seed + trial,
        )
        for point, budget in enumerate(budgets)
        for trial in range(trials)
    ]
    chosen = executor if executor is not None else default_executor(workers)
    results = chosen.run_trials(run_one, specs)

    points: list[OneWayCurvePoint] = []
    for point, budget in enumerate(budgets):
        rows = [r for r in results if r.point_index == point]
        points.append(
            OneWayCurvePoint(
                alice_budget=budget,
                mean_bits=sum(r.bits for r in rows) / trials,
                success_rate=sum(1 for r in rows if r.found) / trials,
            )
        )
    return points

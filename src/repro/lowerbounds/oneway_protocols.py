"""Concrete one-way protocols for triangle-edge finding on µ.

Theorem 4.7 lower-bounds *every* extended one-way protocol for the task
``T^ε_{n,d}``: Charlie must output one of his V1×V2 edges that closes a
triangle with some U-vertex.  This module implements the natural upper-
bound family the theorem squeezes:

* Alice sends (a public-coin-selected sample of) her U×V1 edges;
* Bob, seeing Alice's message, sends the U×V2 edges sharing a U-vertex
  with Alice's sample (the back-and-forth the "extended" model permits);
* Charlie intersects: any of his edges (v1, v2) with a common u in both
  samples is a certified triangle edge.

Success provably needs Alice's sample to seed Ω(1) complete vees, so the
budget/success curve measured by :func:`budget_success_curve` is exactly
the trade-off the Ω(n^{1/4}) bound constrains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.encoding import edge_bits
from repro.comm.oneway import OneWayRun, run_extended_oneway
from repro.comm.randomness import SharedRandomness
from repro.graphs.graph import Edge
from repro.graphs.triangles import triangle_edges
from repro.lowerbounds.distributions import MuDistribution, MuSample

__all__ = [
    "oneway_triangle_edge_protocol",
    "OneWayCurvePoint",
    "budget_success_curve",
]


def oneway_triangle_edge_protocol(sample: MuSample, alice_budget: int,
                                  seed: int = 0) -> OneWayRun:
    """Run the sample-and-intersect one-way protocol on one µ input.

    ``alice_budget`` caps the number of edges Alice forwards; Bob's reply
    is capped at the same count (his relevant edges rarely exceed it).
    Output: one of Charlie's edges certified to close a triangle, or None.
    """
    if alice_budget < 0:
        raise ValueError(f"budget must be non-negative, got {alice_budget}")
    n = sample.graph.n
    players = _players_of(sample)

    def conversation(alice, bob, shared: SharedRandomness, transcript):
        ordered = shared.shuffled(
            sorted(alice.edges, key=lambda e: (e[0], e[1])), tag=1
        )
        alice_sample = sorted(ordered[:alice_budget])
        transcript.append(
            0, alice_sample, max(1, len(alice_sample) * edge_bits(n))
        )
        seeded_us = {min(edge) for edge in alice_sample}
        bob_reply = sorted(
            edge for edge in bob.edges if min(edge) in seeded_us
        )[: max(1, alice_budget)]
        transcript.append(
            1, bob_reply, max(1, len(bob_reply) * edge_bits(n))
        )

    def charlie_output(charlie, transcript, shared) -> Edge | None:
        alice_sample, bob_reply = transcript.payloads()
        # Per U-vertex: which V1 / V2 partners did Alice / Bob certify?
        v1_by_u: dict[int, set[int]] = {}
        for edge in alice_sample:
            u, v1 = min(edge), max(edge)
            v1_by_u.setdefault(u, set()).add(v1)
        v2_by_u: dict[int, set[int]] = {}
        for edge in bob_reply:
            u, v2 = min(edge), max(edge)
            v2_by_u.setdefault(u, set()).add(v2)
        for v1, v2 in sorted(charlie.edges):
            for u in v1_by_u:
                if v1 in v1_by_u[u] and v2 in v2_by_u.get(u, ()):
                    return (v1, v2)
        return None

    return run_extended_oneway(
        players[0], players[1], players[2],
        conversation, charlie_output,
        shared=SharedRandomness(seed),
    )


def _players_of(sample: MuSample):
    from repro.comm.players import make_players

    return make_players(sample.partition)


@dataclass(frozen=True)
class OneWayCurvePoint:
    """One budget level of the success curve."""

    alice_budget: int
    mean_bits: float
    success_rate: float
    """Fraction of far inputs where the output is a genuine triangle edge."""


def budget_success_curve(mu: MuDistribution, budgets: list[int],
                         trials: int = 8, seed: int = 0
                         ) -> list[OneWayCurvePoint]:
    """Success probability of the protocol per Alice-budget, on far inputs.

    Outputs are verified against the ground truth (the edge must really be
    a triangle edge) so the curve measures *correct* solutions of the
    paper's task, not lucky guesses.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    points: list[OneWayCurvePoint] = []
    samples = []
    for trial in range(trials):
        sample = mu.sample_far(seed=seed + 1009 * trial, min_packing=1)
        samples.append((sample, triangle_edges(sample.graph)))
    for budget in budgets:
        bits = 0.0
        successes = 0
        for trial, (sample, truth) in enumerate(samples):
            run = oneway_triangle_edge_protocol(
                sample, budget, seed=seed + trial
            )
            bits += run.total_bits
            if run.output is not None and run.output in truth:
                successes += 1
        points.append(
            OneWayCurvePoint(
                alice_budget=budget,
                mean_bits=bits / trials,
                success_rate=successes / trials,
            )
        )
    return points

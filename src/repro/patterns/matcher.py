"""Rows-native monomorphism engine: H-copy search on adjacency masks.

This is the pattern generalization of the triangle kernel's
:func:`~repro.graphs.triangles.find_triangle_in_rows`.  The host lives as
per-vertex adjacency masks (the bitset kernel's native form — a referee's
rows union, a :class:`~repro.graphs.graph.Graph`'s rows, a player view);
the search is a backtracking walk over H's vertices in the pattern's
static :attr:`~repro.patterns.catalog.SubgraphPattern.matching_order`:

* because the order is connectivity-respecting, every pattern vertex
  after the first has at least one already-mapped neighbour, so its
  candidate set is an *adjacency-mask intersection* —
  ``AND of rows[image of mapped neighbours] & ~used_mask`` — one big-int
  ``&`` per mapped neighbour, executed word-at-a-time in C;
* candidates are pre-filtered by degree (a host vertex standing in for
  pattern vertex ``p`` needs ``deg >= deg_H(p)``), with one shared
  degree-threshold mask per distinct pattern degree;
* enumeration is deterministic ascending (lowest set bit first), so the
  returned copy is **canonical-first**: the lexicographically least
  image sequence with respect to the pattern's matching order, a pure
  function of the host edge *set* — independent of message order,
  hashing, or Python version.  Automorphism-heavy patterns (C4, K4)
  always report the same copy of the same union.

Monomorphism semantics match the referee's need (and the VF2 reference
in :mod:`repro.patterns.reference`): images are injective and every
pattern edge must be present in the host; extra host edges among image
vertices are allowed (K4 contains C4).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.graph import Edge, Graph, canonical_edge, iter_bits
from repro.patterns.catalog import SubgraphPattern

__all__ = [
    "find_copy_in_rows",
    "find_copy",
    "find_copy_among",
    "has_copy_in_rows",
    "is_copy_in_rows",
]


def find_copy_in_rows(rows: Sequence[int], pattern: SubgraphPattern
                      ) -> tuple[int, ...] | None:
    """The canonical-first monomorphic copy of H, or ``None``.

    ``rows`` are per-vertex adjacency masks indexed by vertex (treated
    read-only).  Returns the image vertices in *pattern-vertex* order:
    ``result[p]`` is the host vertex standing in for pattern vertex ``p``.
    """
    n = len(rows)
    h = pattern.num_vertices
    if h > n:
        return None
    order = pattern.matching_order
    pattern_rows = pattern.rows
    degrees = pattern.degrees

    # One degree-threshold mask per distinct pattern degree: bit v set
    # iff host vertex v has enough neighbours to play that role.  The
    # single popcount pass doubles as the trivial-host early exit.
    thresholds = sorted(set(degrees))
    masks = [0] * len(thresholds)
    for v, row in enumerate(rows):
        if not row:
            continue
        host_degree = row.bit_count()
        for i, needed in enumerate(thresholds):
            if host_degree >= needed:
                masks[i] |= 1 << v
            else:
                break
    threshold_masks = dict(zip(thresholds, masks))

    required = [threshold_masks[degrees[v]] for v in order]
    # Positions (in the matching order) of each vertex's already-placed
    # pattern neighbours: the rows whose intersection is the candidate set.
    position_of = {v: i for i, v in enumerate(order)}
    earlier_neighbors = [
        tuple(sorted(
            position_of[u] for u in iter_bits(pattern_rows[v])
            if position_of[u] < i
        ))
        for i, v in enumerate(order)
    ]

    image = [0] * h          # host vertex chosen at each order position
    candidates = [0] * h     # remaining candidate mask per position
    candidates[0] = required[0]
    used = 0
    depth = 0
    while True:
        remaining = candidates[depth]
        if remaining:
            low = remaining & -remaining
            candidates[depth] = remaining ^ low
            v = low.bit_length() - 1
            image[depth] = v
            if depth == h - 1:
                return tuple(image[position_of[p]] for p in range(h))
            used |= low
            nxt = depth + 1
            cand = required[nxt] & ~used
            for j in earlier_neighbors[nxt]:
                cand &= rows[image[j]]
                if not cand:
                    break
            candidates[nxt] = cand
            depth = nxt
        else:
            depth -= 1
            if depth < 0:
                return None
            used &= ~(1 << image[depth])


def find_copy(graph: Graph, pattern: SubgraphPattern
              ) -> tuple[int, ...] | None:
    """Canonical-first copy of H in a :class:`Graph` host."""
    return find_copy_in_rows(graph.adjacency_rows(), pattern)


def find_copy_among(edges: Iterable[Edge], pattern: SubgraphPattern,
                    n: int | None = None) -> tuple[int, ...] | None:
    """Canonical-first copy of H in a plain edge bag, or ``None``.

    The referee-facing form: folds the bag into adjacency rows (any
    orientation, duplicates collapse) and runs the rows matcher.  ``n``
    defaults to ``max endpoint + 1``.
    """
    max_vertex = -1
    pairs: list[Edge] = []
    for u, v in edges:
        pairs.append(canonical_edge(u, v))
        if v > max_vertex:
            max_vertex = v
        if u > max_vertex:
            max_vertex = u
    size = (max_vertex + 1) if n is None else n
    if len(pairs) < pattern.num_edges or size < pattern.num_vertices:
        return None
    rows = [0] * size
    for u, v in pairs:
        rows[u] |= 1 << v
        rows[v] |= 1 << u
    return find_copy_in_rows(rows, pattern)


def has_copy_in_rows(rows: Sequence[int], pattern: SubgraphPattern) -> bool:
    return find_copy_in_rows(rows, pattern) is not None


def is_copy_in_rows(rows: Sequence[int], pattern: SubgraphPattern,
                    image: Sequence[int]) -> bool:
    """Validate a claimed image: injective, in-range, all pattern edges
    present.  The checker benchmarks and tests use to certify witnesses
    from *any* matcher without trusting its search order."""
    n = len(rows)
    if len(image) != pattern.num_vertices:
        return False
    if len(set(image)) != len(image):
        return False
    if any(not 0 <= v < n for v in image):
        return False
    return all(
        rows[image[u]] >> image[v] & 1 for u, v in pattern.edges
    )

"""The networkx VF2 reference matcher — differential seam, not a hot path.

Until this subsystem existed, ``find_copy_among`` delegated the H-copy
search to networkx's generic VF2 matcher.  That implementation survives
here as the executable specification the differential tests pin the mask
matcher against, and as the ``matcher=`` seam value for reference runs
of :func:`repro.core.subgraph_detection.find_subgraph_simultaneous`.

networkx is an *optional* dependency (the ``reference`` extra in
``pyproject.toml``): no production code path imports this module, and
importing it without networkx raises a pointed error rather than a bare
``ModuleNotFoundError``.

VF2 reports whichever copy its own search order reaches first — NOT the
mask matcher's canonical-first copy — so differential tests compare
found/not-found and *validate* reported copies (via
:func:`repro.patterns.matcher.is_copy_in_rows`) instead of comparing
images bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.graph import Edge
from repro.patterns.catalog import SubgraphPattern

__all__ = [
    "networkx_available",
    "find_copy_among_reference",
    "find_copy_in_rows_reference",
]


def networkx_available() -> bool:
    """True when the optional ``reference`` dependency is importable."""
    try:
        import networkx  # noqa: F401
    except ImportError:
        return False
    return True


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - depends on env
        raise ImportError(
            "repro.patterns.reference needs networkx, an optional "
            "dependency used only for differential testing; install it "
            "via `pip install -e '.[reference]'`"
        ) from exc
    return nx


def find_copy_among_reference(edges: Iterable[Edge],
                              pattern: SubgraphPattern
                              ) -> tuple[int, ...] | None:
    """A monomorphic copy of H in a plain edge bag via VF2, or None.

    Returns the image vertices in pattern-vertex order.  The copy is
    whichever VF2 finds first; only found/not-found is specified.
    """
    nx = _require_networkx()
    from networkx.algorithms import isomorphism

    host = nx.Graph()
    host.add_edges_from(edges)
    if host.number_of_edges() < pattern.num_edges:
        return None
    matcher = isomorphism.GraphMatcher(host, pattern.to_networkx())
    for mapping in matcher.subgraph_monomorphisms_iter():
        inverse = {pattern_v: host_v for host_v, pattern_v in mapping.items()}
        return tuple(inverse[i] for i in range(pattern.num_vertices))
    return None


def find_copy_in_rows_reference(rows: Sequence[int],
                                pattern: SubgraphPattern
                                ) -> tuple[int, ...] | None:
    """Rows-interface twin of :func:`find_copy_among_reference`.

    Unpacks the adjacency masks into an edge list and runs VF2 — the
    drop-in ``matcher=`` seam value for reference referee runs.
    """
    edges = []
    for u, mask in enumerate(rows):
        upper = mask >> (u + 1)
        while upper:
            low = upper & -upper
            edges.append((u, u + low.bit_length()))
            upper ^= low
    return find_copy_among_reference(edges, pattern)

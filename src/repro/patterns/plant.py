"""Scenario generators for H-diverse workloads.

Three instance families, all built on the bitset kernel's bulk row
primitives (:meth:`~repro.graphs.graph.Graph.add_neighbors`) rather than
per-edge inserts:

* :func:`planted_disjoint_subgraphs` — vertex-disjoint planted copies of
  one pattern H over an optional G(n, d) background.  Vertex-disjoint
  copies are edge-disjoint, so the instance is certifiably
  ``copies / |E|``-far from H-freeness (each removal kills at most one
  copy).  Moved here from ``repro.core.subgraph_detection`` and rebuilt
  on bulk row inserts; the RNG draw sequence and the produced graph are
  identical to the historical per-edge construction (pinned by tests).
* :func:`planted_mixed_patterns` — one instance carrying vertex-disjoint
  planted copies of *several* patterns at once (all blocks mutually
  disjoint), for workloads that interleave pattern families.
* :func:`subgraph_free_by_removal` — the control side: destroy every
  copy of H by repeated deterministic edge deletion, yielding a
  certified H-free graph plus a removal count that upper-bounds the
  distance to H-freeness (the planted-copies count lower-bounds it, so
  the two sandwich the true distance exactly like the triangle layer's
  packing/removal pair).
* :func:`incidence_c4_free` — the C4-free control that removal cannot
  build at benchmark sizes: the point-line incidence graph of the
  projective plane PG(2, q), girth 6 (two points share exactly one
  line, so no four-cycle), (q+1)-regular — the Kővári–Sós–Turán
  extremal C4-free family, far denser than any removal residue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.graphs.graph import Graph
from repro.patterns.catalog import SubgraphPattern
from repro.patterns.matcher import find_copy_in_rows

__all__ = [
    "PlantedSubgraphInstance",
    "MixedPatternInstance",
    "planted_disjoint_subgraphs",
    "planted_mixed_patterns",
    "subgraph_free_by_removal",
    "incidence_c4_free",
]


@dataclass(frozen=True)
class PlantedSubgraphInstance:
    """An instance far from H-freeness by construction."""

    graph: Graph
    pattern: SubgraphPattern
    planted_copies: tuple[tuple[int, ...], ...]
    epsilon_certified: float


@dataclass(frozen=True)
class MixedPatternInstance:
    """One instance with disjoint planted copies of several patterns."""

    graph: Graph
    placements: tuple[tuple[SubgraphPattern, tuple[tuple[int, ...], ...]], ...]

    def copies_of(self, pattern: SubgraphPattern
                  ) -> tuple[tuple[int, ...], ...]:
        for planted_pattern, images in self.placements:
            if planted_pattern == pattern:
                return images
        return ()

    def epsilon_certified(self, pattern: SubgraphPattern) -> float:
        """copies / |E| — the farness the planted copies certify."""
        return len(self.copies_of(pattern)) / max(1, self.graph.num_edges)


#: Planted-edge count at which `_plant_images` switches from int-mask
#: row inserts to one bulk edge-array call (mask rows at large n cost
#: O(n/8) bytes each; the array path stays O(edges)).
_BULK_PLANT_EDGES = 2048


def _plant_images(graph: Graph, pattern: SubgraphPattern,
                  images: Sequence[tuple[int, ...]]) -> None:
    """Commit planted copies through bulk inserts.

    Small plants attach every edge from its lower endpoint with one
    ``add_neighbors`` call per touched vertex (symmetry and the edge
    count are the kernel's job; ascending vertex order keeps the
    construction deterministic).  Large plants route through
    :meth:`~repro.graphs.graph.Graph.add_edge_arrays` instead — same
    resulting edge set, no O(n)-bit masks, which is what keeps planting
    viable on n = 10^6 hosts.  Neither path draws randomness.
    """
    total_edges = len(images) * len(pattern.edges)
    if total_edges >= _BULK_PLANT_EDGES:
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy baked into CI envs
            np = None
        if np is not None:
            members = np.asarray(images, dtype=np.int64)
            src = [u for u, _ in pattern.edges]
            dst = [v for _, v in pattern.edges]
            graph.add_edge_arrays(
                members[:, src].ravel(), members[:, dst].ravel()
            )
            return
    planted_rows: dict[int, int] = {}
    for image in images:
        for u, v in pattern.edges:
            a, b = image[u], image[v]
            if a > b:
                a, b = b, a
            planted_rows[a] = planted_rows.get(a, 0) | (1 << b)
    for u in sorted(planted_rows):
        graph.add_neighbors(u, planted_rows[u])


def planted_disjoint_subgraphs(n: int, pattern: SubgraphPattern,
                               copies: int, seed: int = 0,
                               background_degree: float = 0.0,
                               backend: str | None = None
                               ) -> PlantedSubgraphInstance:
    """Plant vertex-disjoint copies of H (plus optional background).

    Vertex-disjoint copies are edge-disjoint, so destroying all of them
    requires >= ``copies`` edge removals: the instance is certifiably
    ``copies / |E|``-far from H-freeness.
    """
    h = pattern.num_vertices
    if copies * h > n:
        raise ValueError(
            f"cannot plant {copies} disjoint {pattern.name} copies on "
            f"{n} vertices"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    from repro.graphs.generators import gnd

    graph = (
        gnd(n, background_degree, seed=seed + 1, backend=backend)
        if background_degree > 0
        else Graph(n, backend=backend)
    )
    planted = tuple(
        tuple(vertices[index * h: (index + 1) * h])
        for index in range(copies)
    )
    _plant_images(graph, pattern, planted)
    return PlantedSubgraphInstance(
        graph=graph,
        pattern=pattern,
        planted_copies=planted,
        epsilon_certified=copies / max(1, graph.num_edges),
    )


def planted_mixed_patterns(n: int,
                           specs: Sequence[tuple[SubgraphPattern, int]],
                           seed: int = 0,
                           background_degree: float = 0.0,
                           backend: str | None = None
                           ) -> MixedPatternInstance:
    """Plant vertex-disjoint copies of several patterns in one instance.

    ``specs`` is ``[(pattern, copies), ...]``; all planted blocks across
    all patterns are mutually vertex-disjoint (hence edge-disjoint), so
    each pattern's farness certificate holds simultaneously.
    """
    needed = sum(pattern.num_vertices * copies for pattern, copies in specs)
    if needed > n:
        raise ValueError(
            f"cannot plant {needed} block vertices on {n} vertices"
        )
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    from repro.graphs.generators import gnd

    graph = (
        gnd(n, background_degree, seed=seed + 1, backend=backend)
        if background_degree > 0
        else Graph(n, backend=backend)
    )
    placements: list[tuple[SubgraphPattern, tuple[tuple[int, ...], ...]]] = []
    cursor = 0
    for pattern, copies in specs:
        h = pattern.num_vertices
        images = tuple(
            tuple(vertices[cursor + index * h: cursor + (index + 1) * h])
            for index in range(copies)
        )
        cursor += copies * h
        _plant_images(graph, pattern, images)
        placements.append((pattern, images))
    return MixedPatternInstance(graph=graph, placements=tuple(placements))


def subgraph_free_by_removal(
    graph: Graph, pattern: SubgraphPattern, *,
    matcher: Callable = find_copy_in_rows,
) -> tuple[Graph, int]:
    """Destroy all copies of H by edge deletion; returns (graph, #removed).

    The generalization of the triangle layer's
    :func:`~repro.graphs.triangles.make_triangle_free_by_removal`:
    repeatedly find the canonical-first copy and delete its canonically
    smallest edge.  Each deletion destroys at least the found copy, so
    the loop terminates and the removal count upper-bounds the distance
    to H-freeness (any certified planted-copies count lower-bounds it).

    Deterministic: the matcher's canonical-first copy plus the fixed
    edge choice make the output a pure function of the input graph.
    """
    work = graph.copy()
    removed = 0
    rows = work.adjacency_rows()
    while True:
        copy = matcher(rows, pattern)
        if copy is None:
            return work, removed
        u, v = min(
            (min(copy[a], copy[b]), max(copy[a], copy[b]))
            for a, b in pattern.edges
        )
        work.remove_edge(u, v)
        removed += 1


def _projective_points(q: int) -> list[tuple[int, int, int]]:
    """Canonical representatives of PG(2, q): one per projective point."""
    points = [(1, a, b) for a in range(q) for b in range(q)]
    points.extend((0, 1, a) for a in range(q))
    points.append((0, 0, 1))
    return points


def incidence_c4_free(q: int, backend: str | None = None) -> Graph:
    """Point-line incidence graph of PG(2, q) — girth 6, hence C4-free.

    ``q`` must be prime (arithmetic is mod q).  Vertices: the
    ``N = q^2 + q + 1`` projective points (ids ``0 .. N-1``) and the N
    lines (ids ``N .. 2N-1``, by duality the same coordinate set); point
    P lies on line L iff ``P·L = 0 (mod q)``.  Any two points share
    exactly one line, so no two vertices have two common neighbours —
    i.e. no C4 — while every vertex has degree q+1: the densest C4-free
    graphs there are (Kővári–Sós–Turán tight).
    """
    if q < 2 or any(q % p == 0 for p in range(2, int(q ** 0.5) + 1)):
        raise ValueError(f"q must be prime, got {q}")
    points = _projective_points(q)
    count = len(points)
    graph = Graph(2 * count, backend=backend)
    for line_index, (a, b, c) in enumerate(points):
        incident = 0
        for point_index, (x, y, z) in enumerate(points):
            if (a * x + b * y + c * z) % q == 0:
                incident |= 1 << point_index
        graph.add_neighbors(count + line_index, incident)
    return graph

"""Pattern library: small connected H with matcher-ready metadata.

The H-freeness extension (Section 5's "wider class of subgraphs") needs
its patterns in one place: :class:`SubgraphPattern` is the validated,
immutable description of a pattern graph H on vertices ``0 .. h-1``, and
the constructors below (:func:`clique`, :func:`cycle`, :func:`path`,
:func:`star`, :func:`from_edges`) build the families the protocols,
generators, and benchmarks sweep over.  This module supersedes the
ad-hoc pattern constants that used to live in
``repro.core.subgraph_detection`` (they are re-exported from there for
compatibility).

Patterns are *connected* by construction: the farness argument behind
the generalized tester counts edge-disjoint copies — "each removal kills
at most one disjoint copy" — and a disconnected H breaks that accounting
silently (one removal can wound a copy without destroying any connected
piece shared with another).  ``__post_init__`` therefore validates
connectivity (and rejects isolated vertices) instead of letting such
patterns through.

Beyond the raw edge tuple, a pattern carries the derived metadata the
mask matcher and the analysis layer need, each computed once and cached:

* :attr:`~SubgraphPattern.rows` — H's own adjacency masks, the pattern-
  side twin of the host's bitset kernel rows;
* :attr:`~SubgraphPattern.matching_order` — a static connectivity-
  respecting vertex order (every vertex after the first is adjacent to
  an earlier one), which is what lets the matcher express every
  candidate set as an intersection of already-mapped neighbours' host
  rows;
* :attr:`~SubgraphPattern.automorphism_count` — |Aut(H)| by brute force
  (h <= 8 throughout the catalog), the overcount factor between labelled
  monomorphisms and subgraph copies;
* :attr:`~SubgraphPattern.density` — 2e_H / (h(h-1)), the knob that
  drives the sample probability p = c (2 e_H / (eps n d))^{1/h}.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import permutations

from repro.graphs.graph import Edge, canonical_edge, iter_bits

__all__ = [
    "SubgraphPattern",
    "clique",
    "cycle",
    "path",
    "star",
    "from_edges",
    "TRIANGLE",
    "FOUR_CLIQUE",
    "FOUR_CYCLE",
    "FIVE_CYCLE",
    "DEFAULT_CATALOG",
]


@dataclass(frozen=True)
class SubgraphPattern:
    """A small connected pattern graph H on vertices ``0 .. h-1``.

    Edges are canonicalized to ``(u, v)`` with ``u < v`` and sorted, so
    two patterns with the same edge set compare equal regardless of the
    orientation or order they were written in.
    """

    name: str
    num_vertices: int
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        canonical = []
        for u, v in self.edges:
            if u == v or not (0 <= u < self.num_vertices
                              and 0 <= v < self.num_vertices):
                raise ValueError(
                    f"invalid pattern edge ({u}, {v}) for h={self.num_vertices}"
                )
            canonical.append(canonical_edge(u, v))
        if self.num_vertices < 2 or not canonical:
            raise ValueError("pattern must have >= 2 vertices and an edge")
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"duplicate pattern edges in {canonical}")
        object.__setattr__(self, "edges", tuple(sorted(canonical)))
        self._validate_connected()

    def _validate_connected(self) -> None:
        """Reject disconnected H (see module docstring for why)."""
        rows = [0] * self.num_vertices
        for u, v in self.edges:
            rows[u] |= 1 << v
            rows[v] |= 1 << u
        reached = 1
        frontier = rows[0]
        while frontier & ~reached:
            fresh = frontier & ~reached
            reached |= fresh
            frontier = 0
            for v in iter_bits(fresh):
                frontier |= rows[v]
        if reached != (1 << self.num_vertices) - 1:
            missing = [v for v in range(self.num_vertices)
                       if not reached >> v & 1]
            raise ValueError(
                f"pattern {self.name!r} is disconnected (vertices {missing} "
                "unreachable from 0); the edge-disjoint-copies farness "
                "argument requires connected H"
            )

    # ------------------------------------------------------------------
    # Derived metadata (computed once, cached on the instance)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def density(self) -> float:
        """2 e_H / (h (h-1)) — edge density relative to the clique."""
        h = self.num_vertices
        return 2.0 * self.num_edges / (h * (h - 1))

    @cached_property
    def rows(self) -> tuple[int, ...]:
        """H's own per-vertex adjacency masks (pattern-side kernel rows)."""
        rows = [0] * self.num_vertices
        for u, v in self.edges:
            rows[u] |= 1 << v
            rows[v] |= 1 << u
        return tuple(rows)

    @cached_property
    def degrees(self) -> tuple[int, ...]:
        return tuple(row.bit_count() for row in self.rows)

    @cached_property
    def matching_order(self) -> tuple[int, ...]:
        """Static connectivity-respecting vertex order for the matcher.

        Starts at a maximum-degree vertex (ties: lowest id) and greedily
        appends the unplaced vertex with the most already-placed
        neighbours (ties: higher degree, then lowest id).  Connectivity
        guarantees every position after the first has at least one
        earlier neighbour, so the matcher's candidate sets are always
        adjacency-mask intersections — never a full-universe scan.
        """
        rows = self.rows
        degrees = self.degrees
        first = max(range(self.num_vertices),
                    key=lambda v: (degrees[v], -v))
        order = [first]
        placed = 1 << first
        while len(order) < self.num_vertices:
            best = max(
                (v for v in range(self.num_vertices) if not placed >> v & 1),
                key=lambda v: ((rows[v] & placed).bit_count(),
                               degrees[v], -v),
            )
            order.append(best)
            placed |= 1 << best
        return tuple(order)

    @cached_property
    def automorphism_count(self) -> int:
        """|Aut(H)| by brute force over vertex permutations (h <= 8)."""
        edge_set = set(self.edges)
        count = 0
        for sigma in permutations(range(self.num_vertices)):
            if all(canonical_edge(sigma[u], sigma[v]) in edge_set
                   for u, v in self.edges):
                count += 1
        return count

    def to_networkx(self):
        """The networkx twin, for the VF2 reference matcher."""
        from repro.patterns.reference import _require_networkx

        nx = _require_networkx()
        pattern = nx.Graph()
        pattern.add_nodes_from(range(self.num_vertices))
        pattern.add_edges_from(self.edges)
        return pattern


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def clique(k: int) -> SubgraphPattern:
    """K_k — the complete graph on k vertices."""
    if k < 2:
        raise ValueError(f"clique needs k >= 2, got {k}")
    return SubgraphPattern(
        f"K{k}", k,
        tuple((u, v) for u in range(k) for v in range(u + 1, k)),
    )


def cycle(k: int) -> SubgraphPattern:
    """C_k — the cycle on k vertices."""
    if k < 3:
        raise ValueError(f"cycle needs k >= 3, got {k}")
    return SubgraphPattern(
        f"C{k}", k,
        tuple((i, (i + 1) % k) for i in range(k)),
    )


def path(k: int) -> SubgraphPattern:
    """P_k — the path on k vertices (k-1 edges)."""
    if k < 2:
        raise ValueError(f"path needs k >= 2 vertices, got {k}")
    return SubgraphPattern(
        f"P{k}", k, tuple((i, i + 1) for i in range(k - 1))
    )


def star(leaves: int) -> SubgraphPattern:
    """K_{1,k} — a centre (vertex 0) joined to ``leaves`` leaves."""
    if leaves < 1:
        raise ValueError(f"star needs >= 1 leaf, got {leaves}")
    return SubgraphPattern(
        f"K1,{leaves}", leaves + 1,
        tuple((0, i) for i in range(1, leaves + 1)),
    )


def from_edges(name: str, edges, num_vertices: int | None = None
               ) -> SubgraphPattern:
    """Build a pattern from an arbitrary edge list.

    ``num_vertices`` defaults to ``max endpoint + 1``; pass it explicitly
    only to assert the intended vertex count (isolated extra vertices are
    rejected by the connectivity check either way).
    """
    edge_tuple = tuple(edges)
    if not edge_tuple:
        raise ValueError("pattern must have an edge")
    inferred = max(max(u, v) for u, v in edge_tuple) + 1
    return SubgraphPattern(name, num_vertices or inferred, edge_tuple)


TRIANGLE = clique(3)
FOUR_CLIQUE = clique(4)
FOUR_CYCLE = cycle(4)
FIVE_CYCLE = cycle(5)

#: The patterns the benchmarks and the Table-1-style sweep row run over:
#: cliques, cycles, a path and a star — one representative per family,
#: spanning densities from 2/h to 1.
DEFAULT_CATALOG: tuple[SubgraphPattern, ...] = (
    TRIANGLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    FIVE_CYCLE,
    path(4),
    star(3),
)

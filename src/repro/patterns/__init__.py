"""Mask-native subgraph pattern matching.

The subsystem that closes the mask migration and opens pattern-diverse
workloads:

* :mod:`repro.patterns.catalog` — validated connected patterns with
  matcher-ready metadata (K_k, C_k, P_k, K_{1,k}, ``from_edges``);
* :mod:`repro.patterns.matcher` — the rows-native backtracking
  monomorphism engine (:func:`find_copy_in_rows` and friends), the
  pattern generalization of the triangle kernel's ascending scan;
* :mod:`repro.patterns.plant` — planted / mixed / free-by-removal
  scenario generators on the bulk row primitives;
* :mod:`repro.patterns.reference` — the networkx VF2 matcher, preserved
  as the optional-dependency differential seam.
"""

from repro.patterns.catalog import (
    DEFAULT_CATALOG,
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    TRIANGLE,
    SubgraphPattern,
    clique,
    cycle,
    from_edges,
    path,
    star,
)
from repro.patterns.matcher import (
    find_copy,
    find_copy_among,
    find_copy_in_rows,
    has_copy_in_rows,
    is_copy_in_rows,
)
from repro.patterns.plant import (
    MixedPatternInstance,
    PlantedSubgraphInstance,
    incidence_c4_free,
    planted_disjoint_subgraphs,
    planted_mixed_patterns,
    subgraph_free_by_removal,
)

__all__ = [
    "SubgraphPattern",
    "clique",
    "cycle",
    "path",
    "star",
    "from_edges",
    "TRIANGLE",
    "FOUR_CLIQUE",
    "FOUR_CYCLE",
    "FIVE_CYCLE",
    "DEFAULT_CATALOG",
    "find_copy",
    "find_copy_among",
    "find_copy_in_rows",
    "has_copy_in_rows",
    "is_copy_in_rows",
    "PlantedSubgraphInstance",
    "MixedPatternInstance",
    "planted_disjoint_subgraphs",
    "planted_mixed_patterns",
    "subgraph_free_by_removal",
    "incidence_c4_free",
]

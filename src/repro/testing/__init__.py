"""Query-model property-testing substrate (baselines for contrast)."""

from repro.testing.oracle import QueryBudgetExceeded, QueryCounter, QueryOracle
from repro.testing.testers import (
    QueryTestResult,
    dense_triple_tester,
    induced_sample_tester,
    sparse_vee_tester,
)

__all__ = [
    "QueryBudgetExceeded",
    "QueryCounter",
    "QueryOracle",
    "QueryTestResult",
    "dense_triple_tester",
    "induced_sample_tester",
    "sparse_vee_tester",
]

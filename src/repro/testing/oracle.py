"""Query-model oracle with query accounting.

The classical property-testing model accesses the graph only through local
queries; testers are charged per query.  This oracle is the baseline the
paper contrasts its communication model against (Section 1: "does the fact
that players are not restricted to local queries make the problem easier?").
Three query types, matching the general graph-testing model of [3]:

* ``edge_query(u, v)`` — is {u, v} an edge? (dense-model primitive);
* ``degree_query(v)`` — deg(v) (general-model auxiliary query);
* ``neighbor_query(v, i)`` — the i-th neighbour of v (sparse-model
  primitive, adjacency-list access).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.graph import Graph

__all__ = ["QueryBudgetExceeded", "QueryCounter", "QueryOracle"]


class QueryBudgetExceeded(RuntimeError):
    """Raised when a tester exceeds its declared query budget."""


@dataclass
class QueryCounter:
    edge_queries: int = 0
    degree_queries: int = 0
    neighbor_queries: int = 0
    log: list[tuple] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.edge_queries + self.degree_queries + self.neighbor_queries


class QueryOracle:
    """Charged query access to a hidden graph."""

    def __init__(self, graph: Graph, budget: int | None = None,
                 record_log: bool = False) -> None:
        self._graph = graph
        self._budget = budget
        self._record_log = record_log
        self.counter = QueryCounter()

    @property
    def n(self) -> int:
        """The vertex count is public (part of the model)."""
        return self._graph.n

    def edge_query(self, u: int, v: int) -> bool:
        self._charge(("edge", u, v))
        self.counter.edge_queries += 1
        return self._graph.has_edge(u, v)

    def degree_query(self, v: int) -> int:
        self._charge(("degree", v))
        self.counter.degree_queries += 1
        return self._graph.degree(v)

    def neighbor_query(self, v: int, i: int) -> int | None:
        """The i-th neighbour of v in sorted order, or None out of range."""
        self._charge(("neighbor", v, i))
        self.counter.neighbor_queries += 1
        neighbours = sorted(self._graph.neighbors(v))
        if 0 <= i < len(neighbours):
            return neighbours[i]
        return None

    def _charge(self, entry: tuple) -> None:
        if self._budget is not None and self.counter.total >= self._budget:
            raise QueryBudgetExceeded(
                f"query budget {self._budget} exhausted"
            )
        if self._record_log:
            self.counter.log.append(entry)

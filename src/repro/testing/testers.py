"""Query-model triangle-freeness testers (the [2]/[3] baselines).

Implemented for contrast with the communication protocols: the same
sampling strategies cost |S|² *queries* here but only |E ∩ S²| *sent edges*
there (the paper's key observation about Algorithm 7).  All testers have
one-sided error and return the triangle found, mirroring
:class:`~repro.core.results.DetectionResult` semantics with a query count
in place of a bit count.

* :func:`dense_triple_tester` — sample random vertex triples, query the
  three pairs of each; the classical dense-model tester.
* :func:`induced_sample_tester` — sample a vertex set S and query all of
  S²; the query-model analogue of Algorithm 7 (cost Θ(|S|²)).
* :func:`sparse_vee_tester` — sample a vertex, grab two random incident
  edges via neighbour queries, query the closing pair; the sparse-model
  birthday-style tester.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.testing.oracle import QueryOracle

__all__ = [
    "QueryTestResult",
    "dense_triple_tester",
    "induced_sample_tester",
    "sparse_vee_tester",
]


@dataclass(frozen=True)
class QueryTestResult:
    found: bool
    triangle: tuple[int, int, int] | None
    queries: int

    def verdict_triangle_free(self) -> bool:
        return not self.found


def dense_triple_tester(oracle: QueryOracle, num_triples: int,
                        seed: int = 0) -> QueryTestResult:
    """Sample ``num_triples`` vertex triples; 3 edge queries each."""
    rng = random.Random(seed)
    n = oracle.n
    if n < 3:
        return QueryTestResult(False, None, oracle.counter.total)
    for _ in range(num_triples):
        a, b, c = rng.sample(range(n), 3)
        if (
            oracle.edge_query(a, b)
            and oracle.edge_query(a, c)
            and oracle.edge_query(b, c)
        ):
            x, y, z = sorted((a, b, c))
            return QueryTestResult(True, (x, y, z), oracle.counter.total)
    return QueryTestResult(False, None, oracle.counter.total)


def induced_sample_tester(oracle: QueryOracle, sample_size: int,
                          seed: int = 0) -> QueryTestResult:
    """Sample S, query all of S² — Θ(|S|²) queries (vs Alg 7's edges)."""
    rng = random.Random(seed)
    n = oracle.n
    sample = rng.sample(range(n), min(sample_size, n))
    adjacency: dict[int, set[int]] = {v: set() for v in sample}
    for i, u in enumerate(sample):
        for v in sample[i + 1:]:
            if oracle.edge_query(u, v):
                adjacency[u].add(v)
                adjacency[v].add(u)
    for i, u in enumerate(sample):
        for v in sample[i + 1:]:
            if v in adjacency[u]:
                for w in adjacency[u] & adjacency[v]:
                    if w > v:
                        return QueryTestResult(
                            True, (u, v, w), oracle.counter.total
                        )
    return QueryTestResult(False, None, oracle.counter.total)


def sparse_vee_tester(oracle: QueryOracle, num_probes: int,
                      seed: int = 0) -> QueryTestResult:
    """Sample a vertex, two random incident edges, query the closer.

    The sparse-model strategy: at a triangle-rich vertex, two random
    incident edges form a vee that closes with decent probability.
    """
    rng = random.Random(seed)
    n = oracle.n
    for _ in range(num_probes):
        v = rng.randrange(n)
        degree = oracle.degree_query(v)
        if degree < 2:
            continue
        i, j = rng.sample(range(degree), 2)
        u = oracle.neighbor_query(v, i)
        w = oracle.neighbor_query(v, j)
        if u is None or w is None or u == w:
            continue
        if oracle.edge_query(u, w):
            a, b, c = sorted((v, u, w))
            return QueryTestResult(True, (a, b, c), oracle.counter.total)
    return QueryTestResult(False, None, oracle.counter.total)

"""Render a human-readable run report from a recorded trace.

``python -m repro.obs summarize <trace.jsonl | dir>`` loads one trace
file — or every ``*.jsonl`` in a directory, stitching the per-worker
sibling files a forked run leaves behind — and prints:

- the run's wall clock (duration of the root span),
- a per-phase breakdown by span name using **self time** (a span's
  duration minus its children's), which partitions the root span
  exactly, so the table always sums to the run's wall clock up to
  clock-read jitter,
- retry/fault/degrade event counts,
- cache effectiveness, backend mix, and generator-path mix, read from
  the end-of-run ``metrics`` snapshot event when one was recorded.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .trace import TRACE_MAGIC

__all__ = ["load_trace", "summarize", "main"]


def load_trace(path: str | Path) -> list[dict]:
    """Parse a trace file, or every ``*.jsonl`` in a directory.

    Unparseable lines (a torn tail from a killed process) are skipped.
    Raises ``ValueError`` if no file carries the trace header.
    """
    path = Path(path)
    files = sorted(path.glob("*.jsonl")) if path.is_dir() else [path]
    if not files:
        raise ValueError(f"no *.jsonl trace files under {path}")
    records: list[dict] = []
    saw_header = False
    for file in files:
        with open(file, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if record.get("trace") == TRACE_MAGIC:
                    saw_header = True
                    continue
                if record.get("type") in ("span", "event"):
                    records.append(record)
    if not saw_header:
        raise ValueError(f"{path} is not a repro trace (missing header)")
    return records


def _phase_rows(spans: list[dict]) -> tuple[list[tuple], float, float]:
    """Aggregate spans by name; returns (rows, root_dur, covered).

    ``rows`` are ``(name, count, total_dur, self_dur)`` sorted by self
    time; ``root_dur`` sums the durations of parentless spans;
    ``covered`` sums self time over spans reachable from a root, which
    equals ``root_dur`` when every span closed cleanly.
    """
    child_dur: dict[str, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) + record["dur"]
    by_name: dict[str, list[float]] = {}
    root_dur = 0.0
    covered = 0.0
    for record in spans:
        self_dur = max(0.0, record["dur"] - child_dur.get(record["id"], 0.0))
        entry = by_name.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record["dur"]
        entry[2] += self_dur
        covered += self_dur
        if record.get("parent") is None:
            root_dur += record["dur"]
    rows = sorted(
        ((name, count, total, self_dur)
         for name, (count, total, self_dur) in by_name.items()),
        key=lambda row: -row[3],
    )
    return rows, root_dur, covered


def _counter_block(counters: dict, prefix: str) -> list[tuple[str, float]]:
    hits = [(name[len(prefix):], value)
            for name, value in sorted(counters.items())
            if name.startswith(prefix)]
    return hits


def summarize(records: list[dict]) -> str:
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]
    pids = sorted({r["pid"] for r in records})
    lines: list[str] = []

    rows, root_dur, covered = _phase_rows(spans)
    lines.append(
        f"Trace summary: {len(spans)} spans, {len(events)} events, "
        f"{len(pids)} process(es)"
    )
    if root_dur > 0:
        lines.append(
            f"Run wall clock: {root_dur:.3f}s "
            f"(phase self-times cover {100 * covered / root_dur:.1f}%)"
        )
    lines.append("")
    lines.append("Phase breakdown (self time):")
    header = f"  {'phase':<22} {'count':>7} {'total s':>10} {'self s':>10} {'% run':>7}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for name, count, total, self_dur in rows:
        pct = 100 * self_dur / root_dur if root_dur > 0 else 0.0
        lines.append(
            f"  {name:<22} {count:>7} {total:>10.3f} {self_dur:>10.3f} {pct:>6.1f}%"
        )

    fault_names = (
        "retry", "timeout", "pool_rebuild", "degrade_serial",
        "worker_lost", "journal.truncated",
    )
    event_counts: dict[str, int] = {}
    log_counts: dict[str, int] = {}
    for record in events:
        name = record["name"]
        if name == "log":
            level = (record.get("attrs") or {}).get("level", "?")
            log_counts[level] = log_counts.get(level, 0) + 1
        else:
            event_counts[name] = event_counts.get(name, 0) + 1
    lines.append("")
    lines.append("Faults and retries:")
    parts = [f"{name}={event_counts.get(name, 0)}" for name in fault_names]
    lines.append("  " + "  ".join(parts))
    if log_counts:
        rendered = "  ".join(
            f"log[{level}]={count}" for level, count in sorted(log_counts.items())
        )
        lines.append("  " + rendered)
    other = {
        name: count for name, count in sorted(event_counts.items())
        if name not in fault_names and name not in ("metrics",)
    }
    if other:
        lines.append(
            "  other: " + "  ".join(f"{n}={c}" for n, c in other.items())
        )

    # The driver stamps a final "metrics" event carrying the merged
    # registry snapshot; mine it for the effectiveness sections.
    snapshot = None
    for record in events:
        if record["name"] == "metrics":
            snapshot = (record.get("attrs") or {}).get("snapshot")
    if snapshot:
        counters = snapshot.get("counters", {})
        hits = counters.get("cache.hit", 0)
        misses = counters.get("cache.miss", 0)
        lines.append("")
        lines.append("Cache effectiveness:")
        if hits or misses:
            rate = 100 * hits / (hits + misses)
            lines.append(
                f"  hits={hits:g}  misses={misses:g}  hit_rate={rate:.1f}%  "
                f"disk_hits={counters.get('cache.disk_hit', 0):g}  "
                f"builds={counters.get('cache.build', 0):g}  "
                f"build_s={counters.get('cache.build_seconds', 0):.3f}  "
                f"quarantined={counters.get('cache.quarantined', 0):g}"
            )
        else:
            lines.append("  (no cache activity recorded)")
        backends = _counter_block(counters, "kernel.select.")
        lines.append("")
        lines.append("Backend mix:")
        if backends:
            lines.append(
                "  " + "  ".join(f"{name}={value:g}" for name, value in backends)
            )
        else:
            lines.append("  (no kernel selections recorded)")
        paths = _counter_block(counters, "generator.path.")
        lines.append("Generator paths:")
        if paths:
            lines.append(
                "  " + "  ".join(f"{name}={value:g}" for name, value in paths)
            )
        else:
            lines.append("  (no generator calls recorded)")
        trials = counters.get("trial.ok", 0)
        if trials:
            lines.append("")
            lines.append(
                f"Trials: ok={trials:g}  error={counters.get('trial.error', 0):g}  "
                f"retries={counters.get('retry.attempts', 0):g}"
            )
    else:
        lines.append("")
        lines.append("(no metrics snapshot in trace — run with metrics enabled"
                     " for cache/backend sections)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.obs summarize <trace.jsonl | trace-dir>")
        return 0 if argv else 2
    if argv[0] == "summarize":
        argv = argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.obs summarize <trace.jsonl | trace-dir>",
              file=sys.stderr)
        return 2
    try:
        records = load_trace(argv[0])
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summarize(records))
    return 0

"""Per-trial cost profiles: where one trial's wall clock went.

A profile splits a trial into coarse phases — ``build`` (instance
construction or cache fetch), ``stream`` (edge-stream construction),
``protocol`` (player execution + referee), and ``referee`` (the
referee's share, nested inside ``protocol``) — and attaches the
per-phase seconds to ``TrialResult.extras["profile"]``.

Profiles are **opt-in** (``run_sweep(profile=True)`` /
``TrialTask(profile=True)``) precisely because they change the record:
an extras dict with timings in it can never be byte-identical across
runs.  Tracing and metrics stay record-invariant; the profile is the
one observability surface that deliberately is not, so it lives behind
its own flag.

Mechanics: the executor opens a :func:`profile_scope` around each
trial; instrumented code calls :func:`charge` (or wraps work in
:func:`phase`) to add seconds to the innermost open scope of the
current thread.  With no scope open and no metrics registry installed,
:func:`phase` returns a shared null context — the instrumented path
costs a thread-local read and a ``None`` check.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

from . import metrics as _metrics

__all__ = ["profile_scope", "charge", "phase", "active"]

_TLS = threading.local()


def active() -> bool:
    """True when a profile scope is open on the calling thread."""
    return getattr(_TLS, "acc", None) is not None


@contextlib.contextmanager
def profile_scope() -> Iterator[dict]:
    """Open a fresh accumulator; yields the dict charges land in."""
    previous = getattr(_TLS, "acc", None)
    acc: dict[str, float] = {}
    _TLS.acc = acc
    try:
        yield acc
    finally:
        _TLS.acc = previous


def charge(phase_name: str, seconds: float) -> None:
    """Add ``seconds`` to ``phase_name`` in the open scope (if any)
    and to the ``phase.<name>`` metrics histogram (if metrics are on)."""
    acc = getattr(_TLS, "acc", None)
    if acc is not None:
        acc[phase_name] = acc.get(phase_name, 0.0) + seconds
    _metrics.observe(f"phase.{phase_name}", seconds)


class _PhaseTimer:
    __slots__ = ("name", "start")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_PhaseTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        charge(self.name, time.perf_counter() - self.start)
        return False


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_PHASE = _NullPhase()


def phase(name: str):
    """Time the enclosed block into the open profile scope and the
    metrics histograms — free when both are off."""
    if getattr(_TLS, "acc", None) is None and _metrics.get_metrics() is None:
        return _NULL_PHASE
    return _PhaseTimer(name)

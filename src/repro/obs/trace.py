"""Structured trace recording: JSONL spans and events.

A :class:`TraceRecorder` writes one JSON object per line to a trace
file.  Two record types:

``span``
    A named interval with a monotonic-clock start offset and duration,
    a process-unique id, and the id of its parent span (``None`` for a
    root).  Spans nest via a thread-local stack, so the serial
    watchdog's daemon-thread trials and the driver thread each keep
    coherent parent/child chains.

``event``
    A point-in-time occurrence (a retry, a timeout, a journal
    truncation, a log warning) attached to the innermost open span of
    the emitting thread, if any.

As with metrics, the recorder is installed as a module global
(:func:`set_recorder` / :func:`use_recorder`, or
``run_sweep(trace=...)``).  When no recorder is installed —
the default — :func:`span` returns a shared null context manager and
:func:`event` returns immediately, so instrumentation costs one global
load plus a ``None`` check.  Nothing in this module reads or seeds a
random number generator; tracing cannot perturb any record.

File layout: the first line is a header
``{"trace": "repro-trace-v1", "pid": ..., "start": ...}``.  ``t0``/``t``
offsets are seconds since that header's monotonic ``start``, so
durations are immune to wall-clock steps.  A recorder detects running
in a forked child (pid change) and transparently reopens a sibling file
``<stem>-p<pid><suffix>`` so each process appends only to its own file;
``python -m repro.obs summarize`` accepts a directory and stitches the
family back together.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Iterator

__all__ = [
    "TraceRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "span",
    "event",
]

TRACE_MAGIC = "repro-trace-v1"


class _SpanHandle:
    """An open span; a context manager that writes the record on exit."""

    __slots__ = ("recorder", "name", "span_id", "parent_id", "t0", "attrs")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 span_id: str, parent_id: str | None,
                 t0: float, attrs: dict | None) -> None:
        self.recorder = recorder
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            attrs = dict(self.attrs or {})
            attrs["error"] = exc_type.__name__
            self.attrs = attrs
        self.recorder._close_span(self)
        return False


class _NullSpan:
    """The span handle used when tracing is off — a shared do-nothing
    context manager, so disabled instrumentation allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Writes span/event JSONL records to ``path``.

    Thread-safe: a lock serialises writes, and the span stack is
    thread-local so concurrent threads nest independently.  Close with
    :meth:`close` (or use as a context manager); records are flushed on
    every write, so even an abandoned recorder leaves a readable file.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._requested_path = Path(path)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._counter = 0
        self._pid = -1  # force open on first write
        self._file: io.TextIOBase | None = None
        self._start = time.monotonic()
        self._open_for_pid()

    # -- file management -----------------------------------------------

    def _path_for_pid(self, pid: int) -> Path:
        if self._pid == -1 or pid == self._root_pid:
            return self._requested_path
        stem = self._requested_path.stem
        suffix = self._requested_path.suffix or ".jsonl"
        return self._requested_path.with_name(f"{stem}-p{pid}{suffix}")

    def _open_for_pid(self) -> None:
        pid = os.getpid()
        if self._pid == -1:
            self._root_pid = pid
        path = self._path_for_pid(pid)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")
        self._pid = pid
        self.path = path
        header = {"trace": TRACE_MAGIC, "pid": pid,
                  "start": self._start, "wall": time.time()}
        self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
        self._file.flush()

    def _write(self, record: dict) -> None:
        with self._lock:
            if os.getpid() != self._pid:
                # Forked child inherited the recorder: its thread-local
                # stack and file handle belong to the parent.  Reopen a
                # per-pid sibling file and start a fresh stack so the
                # child's spans never interleave into the parent's file.
                self._tls = threading.local()
                self._start = time.monotonic()
                self._open_for_pid()
            file = self._file
            if file is None or file.closed:
                return
            file.write(json.dumps(record, separators=(",", ":")) + "\n")
            file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # -- span / event API ----------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{os.getpid():x}-{self._counter:x}"

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a named span as a context manager; nests under the
        innermost open span of the calling thread."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        handle = _SpanHandle(
            self, name, self._next_id(), parent_id,
            time.monotonic() - self._start, attrs or None,
        )
        stack.append(handle)
        return handle

    def _close_span(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        # Exits normally come in LIFO order; tolerate a mismatched exit
        # (e.g. a generator span collected late) by removing wherever
        # the handle sits rather than corrupting the stack.
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:
            stack.remove(handle)
        record = {
            "type": "span",
            "name": handle.name,
            "id": handle.span_id,
            "parent": handle.parent_id,
            "pid": os.getpid(),
            "t0": round(handle.t0, 9),
            "dur": round(time.monotonic() - self._start - handle.t0, 9),
        }
        if handle.attrs:
            record["attrs"] = handle.attrs
        self._write(record)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event under the current span."""
        stack = self._stack()
        record = {
            "type": "event",
            "name": name,
            "span": stack[-1].span_id if stack else None,
            "pid": os.getpid(),
            "t": round(time.monotonic() - self._start, 9),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)


# ----------------------------------------------------------------------
# The active recorder (module global, mirrors obs.metrics)
# ----------------------------------------------------------------------
_RECORDER: TraceRecorder | None = None


def get_recorder() -> TraceRecorder | None:
    """The currently installed recorder, or ``None`` (tracing off)."""
    return _RECORDER


def set_recorder(recorder: TraceRecorder | None) -> TraceRecorder | None:
    """Install ``recorder`` as the active one; returns the previous.

    Also attaches/detaches the log bridge: while any recorder is
    active, WARNING-and-above records from the ``repro`` logger tree
    are mirrored into the trace as ``log`` events, so the runtime's
    diagnostics land in the same timeline as the spans they interrupt.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    _sync_log_bridge()
    return previous


@contextlib.contextmanager
def use_recorder(recorder: TraceRecorder | None) -> Iterator[None]:
    """Install ``recorder`` for the duration of the block."""
    previous = set_recorder(recorder)
    try:
        yield
    finally:
        set_recorder(previous)


def span(name: str, **attrs):
    """Open a span on the active recorder — free when tracing is off."""
    if _RECORDER is None:
        return _NULL_SPAN
    return _RECORDER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Emit an event on the active recorder — free when tracing is off."""
    if _RECORDER is not None:
        _RECORDER.event(name, **attrs)


# ----------------------------------------------------------------------
# Log bridge: repro.* logging records -> trace events
# ----------------------------------------------------------------------
import logging  # noqa: E402  (kept at the bottom with its sole consumer)


class TraceLogHandler(logging.Handler):
    """Mirrors ``repro`` log records into the active trace as events."""

    def emit(self, record: logging.LogRecord) -> None:
        recorder = _RECORDER
        if recorder is None:
            return
        try:
            recorder.event(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
            )
        except Exception:  # never let tracing break the logged path
            self.handleError(record)


_LOG_BRIDGE = TraceLogHandler(level=logging.WARNING)


def _sync_log_bridge() -> None:
    logger = logging.getLogger("repro")
    if _RECORDER is not None:
        if _LOG_BRIDGE not in logger.handlers:
            logger.addHandler(_LOG_BRIDGE)
    else:
        if _LOG_BRIDGE in logger.handlers:
            logger.removeHandler(_LOG_BRIDGE)

"""Process-local metrics: counters, gauges, and timing histograms.

A :class:`MetricsRegistry` is a plain in-process accumulator — no
threads, no sockets, no background flushing.  Instrumented code calls
the module-level helpers (:func:`inc`, :func:`gauge`, :func:`observe`,
:func:`timer`), which are no-ops costing one global load and a ``None``
check unless a registry has been installed via :func:`set_metrics` /
:func:`use_metrics` (or ``run_sweep(metrics=...)``).  Nothing here ever
touches a random number generator, so enabling metrics cannot perturb
any record.

Cross-process story: registries do not magically span processes.
Instead :meth:`MetricsRegistry.snapshot` renders the whole registry as
a JSON-faithful dict and :meth:`MetricsRegistry.merge` folds such a
snapshot back in, so parallel workers ship their registries back to the
driver alongside their ``TrialResult``s (the executors do this
automatically whenever metrics are active) and the driver aggregates.
Histogram merging is bucket-count addition — associative and
commutative, so the merge order across workers never changes the
aggregate (asserted in ``tests/test_obs.py``).

Timing histograms use power-of-two second buckets (``math.frexp``
exponents): ``observe("x", dt)`` increments the bucket whose range
covers ``dt`` and tracks count/sum/min/max exactly.  Coarse by design —
the histogram answers "where did the time go", the trace answers "in
which call".
"""

from __future__ import annotations

import contextlib
import math
import os
import time
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "inc",
    "gauge",
    "observe",
    "timer",
]


class MetricsRegistry:
    """Counters, gauges, and timing histograms with snapshot/merge."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}
        self._pid = os.getpid()

    # -- recording -----------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins on merge)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into timing histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {
                "count": 0, "sum": 0.0,
                "min": math.inf, "max": -math.inf,
                "buckets": {},
            }
        hist["count"] += 1
        hist["sum"] += seconds
        if seconds < hist["min"]:
            hist["min"] = seconds
        if seconds > hist["max"]:
            hist["max"] = seconds
        # Bucket = binary exponent of the duration: bucket e covers
        # [2^(e-1), 2^e) seconds.  Zero/negative land in a dedicated
        # underflow bucket so merge stays total.
        exp = math.frexp(seconds)[1] if seconds > 0.0 else None
        key = str(exp) if exp is not None else "underflow"
        buckets = hist["buckets"]
        buckets[key] = buckets.get(key, 0) + 1

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing the enclosed wall-clock duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a JSON-faithful dict (deep copy)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "count": h["count"], "sum": h["sum"],
                    "min": h["min"], "max": h["max"],
                    "buckets": dict(h["buckets"]),
                }
                for name, h in self.histograms.items()
            },
        }

    def merge(self, snapshot: "dict | MetricsRegistry") -> None:
        """Fold a snapshot (or another registry) into this one.

        Counters and histogram counts/sums add; gauges take the
        incoming value (last write wins); histogram min/max widen.
        Addition of counts is associative, so merging worker snapshots
        in any grouping yields the same aggregate.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snapshot.get("gauges", {}))
        for name, incoming in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = {
                    "count": 0, "sum": 0.0,
                    "min": math.inf, "max": -math.inf,
                    "buckets": {},
                }
            hist["count"] += incoming["count"]
            hist["sum"] += incoming["sum"]
            hist["min"] = min(hist["min"], incoming["min"])
            hist["max"] = max(hist["max"], incoming["max"])
            buckets = hist["buckets"]
            for key, count in incoming["buckets"].items():
                buckets[key] = buckets.get(key, 0) + count

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def reset(self) -> None:
        """Zero every counter, gauge, and histogram."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)})"
        )


# ----------------------------------------------------------------------
# The active registry: one module global, read by every instrumented
# call site.  ``None`` (the default) short-circuits everything.
# ----------------------------------------------------------------------
_ACTIVE: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` (metrics off)."""
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry | None) -> Iterator[None]:
    """Install ``registry`` for the duration of the block."""
    previous = set_metrics(registry)
    try:
        yield
    finally:
        set_metrics(previous)


def inc(name: str, value: float = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.inc(name, value)


def gauge(name: str, value: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.observe(name, seconds)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def timer(name: str):
    """A timing context — free when metrics are off."""
    if _ACTIVE is None:
        return _NULL_TIMER
    return _ACTIVE.timer(name)


# ----------------------------------------------------------------------
# Worker-process hooks used by the executors
# ----------------------------------------------------------------------

def worker_sync() -> None:
    """Reconcile an inherited registry with the current process.

    A fork-started worker inherits the driver's active registry
    (copy-on-write), including every count the driver accumulated
    before the fork; shipping that back would double-count.  Called at
    worker-task entry: the first call in a child process resets the
    inherited copy, so the worker accumulates (and ships) only its own
    deltas.  A no-op in the driver and on every later call.
    """
    registry = _ACTIVE
    if registry is not None and registry._pid != os.getpid():
        registry.reset()
        registry._pid = os.getpid()


def ship() -> dict | None:
    """Snapshot-and-reset the worker's registry for the trip home.

    Returns ``None`` when metrics are off (the common case — nothing
    extra crosses the pipe).  Resetting after the snapshot makes the
    shipped snapshots *deltas*: the driver merges every one of them and
    the totals come out exact regardless of chunking.
    """
    registry = _ACTIVE
    if registry is None:
        return None
    snapshot = registry.snapshot()
    registry.reset()
    return snapshot


def absorb(snapshot: dict | None) -> None:
    """Driver-side: merge a worker-shipped snapshot into the active
    registry (no-op for ``None`` or when metrics are off)."""
    if snapshot is not None and _ACTIVE is not None:
        _ACTIVE.merge(snapshot)

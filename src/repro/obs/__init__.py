"""Run-level observability: trace spans, metrics, per-trial profiles.

Three layers, all zero-RNG-impact and all off by default:

- :mod:`repro.obs.trace` — :class:`TraceRecorder`, structured JSONL
  span/event records with monotonic durations and parent/child ids.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, process-local
  counters/gauges/timing histograms with snapshot/merge so parallel
  workers ship their numbers home.
- :mod:`repro.obs.profile` — opt-in per-trial phase cost profiles
  attached to ``TrialResult.extras["profile"]``.

``python -m repro.obs summarize <trace.jsonl|dir>`` renders a run
report from a recorded trace (phase breakdown, retry/fault counts,
cache effectiveness, backend/path mix).
"""

from .metrics import (
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from .trace import (
    TraceRecorder,
    event,
    get_recorder,
    set_recorder,
    span,
    use_recorder,
)

__all__ = [
    "MetricsRegistry",
    "TraceRecorder",
    "event",
    "get_metrics",
    "get_recorder",
    "set_metrics",
    "set_recorder",
    "span",
    "use_metrics",
    "use_recorder",
]

"""repro — multiparty communication complexity of testing triangle-freeness.

A complete, executable reproduction of Fischer, Gershtein and Oshman,
"On the Multiparty Communication Complexity of Testing Triangle-Freeness"
(PODC 2017): the coordinator / simultaneous / one-way / blackboard
communication models with exact bit accounting, every protocol of
Section 3, every lower-bound construction of Section 4, the streaming
corollary, and a benchmark harness regenerating the paper's Table 1 as
measured scaling exponents.

Quickstart::

    from repro.graphs import far_instance, partition_disjoint
    from repro.core import find_triangle_sim_low, SimLowParams

    instance = far_instance(n=3000, d=4.0, epsilon=0.2, seed=1)
    partition = partition_disjoint(instance.graph, k=4, seed=2)
    result = find_triangle_sim_low(partition, SimLowParams(epsilon=0.2))
    print(result.found, result.total_bits)

Subpackages
-----------
``repro.comm``
    Communication-model substrate (players, ledgers, shared coins).
``repro.graphs``
    Graphs, edge partitions, triangle machinery, degree bucketing,
    workload generators.
``repro.core``
    The paper's protocols (Section 3) and the exact baseline.
``repro.testing``
    Query-model property testers, for query-vs-communication contrast.
``repro.lowerbounds``
    Section 4: the µ distribution, covered/reported edge analysis,
    Boolean Matching reduction, symmetrization, degree embedding,
    information-theory toolkit.
``repro.streaming``
    Data-stream runtime and the one-way <-> streaming reductions.
``repro.analysis``
    Scaling sweeps, exponent fits, and the Table 1 regeneration harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Communication accounting for multiparty protocols.

The :class:`CommunicationLedger` records every message exchanged between the
players and the coordinator (or referee): direction, bit cost, and an
optional label describing which sub-procedure sent it.  Protocol complexity
claims are then checked against :meth:`CommunicationLedger.total_bits`.

The ledger also counts *rounds* in the coordinator model's sense: a round is
one coordinator->player message followed by the player's response.  For
simultaneous protocols, every player speaks exactly once and the round count
is one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["MessageRecord", "CostSummary", "CommunicationLedger"]

COORDINATOR = -1
"""Pseudo player id for the coordinator / referee."""


@dataclass(frozen=True)
class MessageRecord:
    """One message: who sent it, who receives it, how many bits, and why."""

    sender: int
    receiver: int
    bits: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError(f"message cost must be non-negative, got {self.bits}")


@dataclass
class CostSummary:
    """Aggregated view of a protocol run's communication."""

    total_bits: int
    upstream_bits: int
    downstream_bits: int
    rounds: int
    messages: int
    bits_by_label: dict[str, int] = field(default_factory=dict)
    bits_by_player: dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"CostSummary(total={self.total_bits}b, up={self.upstream_bits}b, "
            f"down={self.downstream_bits}b, rounds={self.rounds}, "
            f"messages={self.messages})"
        )


class CommunicationLedger:
    """Mutable record of all communication in one protocol execution."""

    def __init__(self) -> None:
        self._records: list[MessageRecord] = []
        self._rounds = 0
        self._label_stack: list[str] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def charge_upstream(self, player: int, bits: int, label: str = "") -> None:
        """Record a player -> coordinator message of ``bits`` bits."""
        self._records.append(
            MessageRecord(player, COORDINATOR, bits, label or self._current_label())
        )

    def charge_downstream(self, player: int, bits: int, label: str = "") -> None:
        """Record a coordinator -> player message of ``bits`` bits."""
        self._records.append(
            MessageRecord(COORDINATOR, player, bits, label or self._current_label())
        )

    def charge_broadcast(self, num_players: int, bits: int, label: str = "") -> None:
        """Record the coordinator sending the same ``bits``-bit message to all.

        In the coordinator model a broadcast costs ``num_players * bits``
        (separate private channels); this helper charges exactly that.
        """
        for j in range(num_players):
            self.charge_downstream(j, bits, label)

    def begin_round(self) -> None:
        """Mark the start of one coordinator-model communication round."""
        self._rounds += 1

    # ------------------------------------------------------------------
    # Labelled scopes (attribute costs to sub-procedures)
    # ------------------------------------------------------------------
    class _LabelScope:
        def __init__(self, ledger: "CommunicationLedger", label: str) -> None:
            self._ledger = ledger
            self._label = label

        def __enter__(self) -> "CommunicationLedger":
            self._ledger._label_stack.append(self._label)
            return self._ledger

        def __exit__(self, *exc_info: object) -> None:
            self._ledger._label_stack.pop()

    def scope(self, label: str) -> "CommunicationLedger._LabelScope":
        """Context manager attributing contained messages to ``label``."""
        return CommunicationLedger._LabelScope(self, label)

    def _current_label(self) -> str:
        return self._label_stack[-1] if self._label_stack else ""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        return sum(record.bits for record in self._records)

    @property
    def upstream_bits(self) -> int:
        return sum(r.bits for r in self._records if r.receiver == COORDINATOR)

    @property
    def downstream_bits(self) -> int:
        return sum(r.bits for r in self._records if r.sender == COORDINATOR)

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def records(self) -> tuple[MessageRecord, ...]:
        return tuple(self._records)

    def player_bits(self, player: int) -> int:
        """Bits sent *by* ``player`` (upstream only)."""
        return sum(
            r.bits for r in self._records
            if r.sender == player and r.receiver == COORDINATOR
        )

    def summary(self) -> CostSummary:
        by_label: Counter[str] = Counter()
        by_player: Counter[int] = Counter()
        for record in self._records:
            by_label[record.label or "(unlabelled)"] += record.bits
            if record.sender != COORDINATOR:
                by_player[record.sender] += record.bits
        return CostSummary(
            total_bits=self.total_bits,
            upstream_bits=self.upstream_bits,
            downstream_bits=self.downstream_bits,
            rounds=self._rounds,
            messages=len(self._records),
            bits_by_label=dict(by_label),
            bits_by_player=dict(by_player),
        )

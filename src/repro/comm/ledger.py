"""Communication accounting for multiparty protocols.

The :class:`CommunicationLedger` accounts for every message exchanged
between the players and the coordinator (or referee): direction, bit cost,
and an optional label describing which sub-procedure sent it.  Protocol
complexity claims are then checked against
:meth:`CommunicationLedger.total_bits`.

Accounting is *aggregate-first*: the ledger maintains running counters
(total / upstream / downstream bits, per-label and per-player totals,
message and round counts), so every ``charge_*`` call is O(1), a broadcast
is one arithmetic update regardless of audience size, and the reporting
properties read a counter instead of re-summing a record list.  Retaining
the full per-message transcript is an opt-in mode
(``CommunicationLedger(record_messages=True)``) for tests and transcript
consumers such as
:func:`~repro.comm.messagepassing.message_passing_cost_of_coordinator_run`;
the default protocol hot path allocates nothing per message.

The ledger also counts *rounds* in the coordinator model's sense: a round is
one coordinator->player message followed by the player's response.  For
simultaneous protocols, every player speaks exactly once and the round count
is one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["MessageRecord", "CostSummary", "CommunicationLedger"]

COORDINATOR = -1
"""Pseudo player id for the coordinator / referee."""

_UNLABELLED = "(unlabelled)"


@dataclass(frozen=True)
class MessageRecord:
    """One message: who sent it, who receives it, how many bits, and why."""

    sender: int
    receiver: int
    bits: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError(f"message cost must be non-negative, got {self.bits}")


@dataclass
class CostSummary:
    """Aggregated view of a protocol run's communication."""

    total_bits: int
    upstream_bits: int
    downstream_bits: int
    rounds: int
    messages: int
    bits_by_label: dict[str, int] = field(default_factory=dict)
    bits_by_player: dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"CostSummary(total={self.total_bits}b, up={self.upstream_bits}b, "
            f"down={self.downstream_bits}b, rounds={self.rounds}, "
            f"messages={self.messages})"
        )


class CommunicationLedger:
    """Mutable account of all communication in one protocol execution.

    Parameters
    ----------
    record_messages:
        When True, every charge additionally appends a
        :class:`MessageRecord` to :attr:`records`.  Off by default — the
        aggregate counters answer every reporting query in O(1), and the
        per-message transcript only matters to tests and to transcript
        replays.
    """

    def __init__(self, record_messages: bool = False) -> None:
        self._records: list[MessageRecord] | None = (
            [] if record_messages else None
        )
        self._rounds = 0
        self._label_stack: list[str] = []
        self._total_bits = 0
        self._upstream_bits = 0
        self._downstream_bits = 0
        self._messages = 0
        self._bits_by_label: Counter[str] = Counter()
        self._bits_by_player: Counter[int] = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _charge(self, sender: int, receiver: int, bits: int,
                label: str) -> None:
        """The shared counter-update protocol behind both directions."""
        if bits < 0:
            raise ValueError(f"message cost must be non-negative, got {bits}")
        label = label or self._current_label()
        self._total_bits += bits
        self._messages += 1
        self._bits_by_label[label or _UNLABELLED] += bits
        if receiver == COORDINATOR:
            self._upstream_bits += bits
            if sender != COORDINATOR:
                self._bits_by_player[sender] += bits
        else:
            self._downstream_bits += bits
        if self._records is not None:
            self._records.append(MessageRecord(sender, receiver, bits, label))

    def charge_upstream(self, player: int, bits: int, label: str = "") -> None:
        """Record a player -> coordinator message of ``bits`` bits."""
        self._charge(player, COORDINATOR, bits, label)

    def charge_downstream(self, player: int, bits: int, label: str = "") -> None:
        """Record a coordinator -> player message of ``bits`` bits."""
        self._charge(COORDINATOR, player, bits, label)

    def charge_broadcast(self, num_players: int, bits: int, label: str = "") -> None:
        """Record the coordinator sending the same ``bits``-bit message to all.

        In the coordinator model a broadcast costs ``num_players * bits``
        (separate private channels); this helper charges exactly that, as
        a single O(1) counter update.
        """
        if bits < 0:
            raise ValueError(f"message cost must be non-negative, got {bits}")
        if num_players < 0:
            raise ValueError(
                f"audience size must be non-negative, got {num_players}"
            )
        if num_players == 0:
            return
        label = label or self._current_label()
        total = num_players * bits
        self._total_bits += total
        self._downstream_bits += total
        self._messages += num_players
        self._bits_by_label[label or _UNLABELLED] += total
        if self._records is not None:
            self._records.extend(
                MessageRecord(COORDINATOR, j, bits, label)
                for j in range(num_players)
            )

    def begin_round(self) -> None:
        """Mark the start of one coordinator-model communication round."""
        self._rounds += 1

    # ------------------------------------------------------------------
    # Labelled scopes (attribute costs to sub-procedures)
    # ------------------------------------------------------------------
    class _LabelScope:
        def __init__(self, ledger: "CommunicationLedger", label: str) -> None:
            self._ledger = ledger
            self._label = label

        def __enter__(self) -> "CommunicationLedger":
            self._ledger._label_stack.append(self._label)
            return self._ledger

        def __exit__(self, *exc_info: object) -> None:
            self._ledger._label_stack.pop()

    def scope(self, label: str) -> "CommunicationLedger._LabelScope":
        """Context manager attributing contained messages to ``label``."""
        return CommunicationLedger._LabelScope(self, label)

    def _current_label(self) -> str:
        return self._label_stack[-1] if self._label_stack else ""

    # ------------------------------------------------------------------
    # Reporting — every property is a counter read, O(1)
    # ------------------------------------------------------------------
    @property
    def record_messages(self) -> bool:
        """Whether the per-message transcript is being retained."""
        return self._records is not None

    @property
    def total_bits(self) -> int:
        return self._total_bits

    @property
    def upstream_bits(self) -> int:
        return self._upstream_bits

    @property
    def downstream_bits(self) -> int:
        return self._downstream_bits

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def records(self) -> tuple[MessageRecord, ...]:
        if self._records is None:
            raise RuntimeError(
                "per-message records were not retained; construct the "
                "ledger with CommunicationLedger(record_messages=True)"
            )
        return tuple(self._records)

    def player_bits(self, player: int) -> int:
        """Bits sent *by* ``player`` (upstream only)."""
        return self._bits_by_player.get(player, 0)

    def summary(self) -> CostSummary:
        return CostSummary(
            total_bits=self._total_bits,
            upstream_bits=self._upstream_bits,
            downstream_bits=self._downstream_bits,
            rounds=self._rounds,
            messages=self._messages,
            bits_by_label=dict(self._bits_by_label),
            bits_by_player=dict(self._bits_by_player),
        )

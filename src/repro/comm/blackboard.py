"""Blackboard-model runtime (Section 2 variant; Theorem 3.23).

Every message is posted to a blackboard visible to all parties, so a posted
payload is charged *once* regardless of audience size.  The paper uses this
model for a factor-k saving in the unrestricted protocol: when players post
sampled edges in turns, nobody re-posts an edge already on the board, and the
broadcast of collected edges back to the players is free compared with the
coordinator model's k private copies.

The runtime offers the deduplicating edge-posting round directly, since that
is the only blackboard-specific behaviour the protocols need.  Posted edges
are tracked on a *per-vertex posted-rows board* (the same mask-kernel
representation as :class:`~repro.graphs.graph.Graph`), kept internally in
canonical upper-triangular form — bit ``v`` of row ``u`` (``u < v``) marks
edge ``{u, v}`` as posted, which is the only bit the dedup test ever
reads; the full symmetric view is materialized lazily by
:attr:`BlackboardRuntime.board_rows`.  The "already posted?" test is one
shift-and-test, and the mask form
:meth:`BlackboardRuntime.post_rows_in_turns` computes a whole player's
fresh edges as ``harvest_row & ~board_row`` per vertex — word-wide, in
exactly the ascending canonical order the edge form posts sorted harvests
in.  The original set-of-tuples dedup loop survives as
:func:`repro.comm.reference.post_edges_in_turns_reference` for
differential tests and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness
from repro.graphs.graph import Edge

__all__ = ["BlackboardRuntime"]


class BlackboardRuntime:
    """Execution context for one blackboard-model protocol run."""

    def __init__(self, players: Sequence[Player],
                 shared: SharedRandomness | None = None,
                 ledger: CommunicationLedger | None = None) -> None:
        if not players:
            raise ValueError("a protocol needs at least one player")
        self.players = list(players)
        self.n = players[0].n
        self.k = len(players)
        self.shared = shared if shared is not None else SharedRandomness()
        self.ledger = ledger if ledger is not None else CommunicationLedger()
        self.board: list[tuple[int, object]] = []
        self._board_upper: list[int] = [0] * self.n
        self._board_rows_cache: list[int] | None = None

    @property
    def board_rows(self) -> list[int]:
        """Symmetric per-vertex masks of the edges the *_in_turns*
        deduplicating posters put on the board.

        Only :meth:`post_edges_in_turns` / :meth:`post_rows_in_turns`
        feed these masks; a raw :meth:`post` carries an opaque payload
        the runtime does not interpret as edges, so it never reaches
        them (mixing the two posting styles on one runtime would make a
        later *_in_turns* call re-post the raw-posted edges).
        Materialized on demand from the canonical upper-triangular board
        (one mirror pass over the posted edges, cached until the next
        post) — treat as READ-ONLY.
        """
        if self._board_rows_cache is None:
            rows = list(self._board_upper)
            for u, upper in enumerate(self._board_upper):
                if not upper:
                    continue
                bit_u = 1 << u
                while upper:
                    low = upper & -upper
                    upper ^= low
                    rows[low.bit_length() - 1] |= bit_u
            self._board_rows_cache = rows
        return self._board_rows_cache

    def post(self, player_id: int, payload: object, bits: int,
             label: str = "blackboard") -> None:
        """Post a payload; charged once, visible to everyone."""
        self.ledger.begin_round()
        self.ledger.charge_upstream(player_id, bits, label)
        self.board.append((player_id, payload))

    def post_edges_in_turns(
        self,
        harvest: Callable[[Player], Iterable[Edge]],
        per_edge_bits: int,
        label: str = "blackboard-edges",
        cap: int | None = None,
    ) -> set[Edge]:
        """Players post their harvested edges in turn, never repeating.

        Each player locally computes its harvest, subtracts what is already
        on the board (one board-row bit test per edge), and posts only
        the remainder — this is exactly how Theorem 3.23 saves the factor k
        over the coordinator model.  An optional global ``cap`` bounds the
        total number of *distinct* posted edges; duplicates inside a
        harvest are never charged and never count toward the cap, a player
        whose whole harvest is stale is not charged a round, and once the
        cap is reached no further player is charged anything.  The board
        is orientation-insensitive (edges are normalized before the dedup
        test); harvests that yield canonical edges — every caller in the
        repo — post byte-identical payloads to the historical set-based
        loop.
        """
        board = self._board_upper
        posted: set[Edge] = set()
        for player in self.players:
            if cap is not None and len(posted) >= cap:
                break
            remaining = None if cap is None else cap - len(posted)
            fresh: list[Edge] = []
            for edge in harvest(player):
                if remaining is not None and len(fresh) >= remaining:
                    break
                u, v = edge
                if v < u:
                    u, v = v, u
                if board[u] >> v & 1:
                    continue
                board[u] |= 1 << v
                fresh.append(edge)
            if not fresh:
                continue
            self._board_rows_cache = None
            self.post(
                player.player_id, tuple(fresh),
                per_edge_bits * len(fresh), label,
            )
            posted.update(fresh)
        return posted

    def post_rows_in_turns(
        self,
        harvest_rows: Callable[[Player], Sequence[int]],
        per_edge_bits: int,
        label: str = "blackboard-edges",
        cap: int | None = None,
    ) -> list[Edge]:
        """Mask form of :meth:`post_edges_in_turns`: row harvests, word-wide.

        ``harvest_rows(player)`` returns symmetric per-vertex adjacency
        masks (e.g. :meth:`~repro.comm.players.Player.adjacency_rows`);
        each player's fresh edges are ``harvest_row & ~board_row`` per
        vertex — one word-wide ``&``-and-clear per inhabited row, with a
        stale player costing a pure mask scan and no per-edge work —
        enumerated (and therefore posted, charged, and cap-truncated) in
        ascending canonical order, identical to feeding the edge form a
        sorted harvest.  Returns every edge posted by this call, in
        posting order.
        """
        board = self._board_upper
        posted: list[Edge] = []
        for player in self.players:
            if cap is not None and len(posted) >= cap:
                break
            remaining = None if cap is None else cap - len(posted)
            rows = harvest_rows(player)
            fresh: list[Edge] = []
            for u in range(min(self.n, len(rows))):
                # The board holds upper bits only, so the lower bits of
                # the harvest row fall off the shift: one word-wide
                # &-and-shift yields the fresh partners above u, and the
                # peeling below runs on the narrowed mask.
                new = (rows[u] & ~board[u]) >> (u + 1)
                if not new:
                    continue
                if remaining is not None and \
                        len(fresh) + new.bit_count() > remaining:
                    # Cap hit mid-row: accept only the lowest remainder.
                    accepted = 0
                    while len(fresh) < remaining:
                        low = new & -new
                        new ^= low
                        accepted |= low
                        fresh.append((u, u + low.bit_length()))
                    board[u] |= accepted << (u + 1)
                    break
                board[u] |= new << (u + 1)
                while new:
                    low = new & -new
                    new ^= low
                    fresh.append((u, u + low.bit_length()))
            if not fresh:
                continue
            self._board_rows_cache = None
            self.post(
                player.player_id, tuple(fresh),
                per_edge_bits * len(fresh), label,
            )
            posted.extend(fresh)
        return posted

    def __repr__(self) -> str:
        return f"BlackboardRuntime(k={self.k}, n={self.n})"

"""Blackboard-model runtime (Section 2 variant; Theorem 3.23).

Every message is posted to a blackboard visible to all parties, so a posted
payload is charged *once* regardless of audience size.  The paper uses this
model for a factor-k saving in the unrestricted protocol: when players post
sampled edges in turns, nobody re-posts an edge already on the board, and the
broadcast of collected edges back to the players is free compared with the
coordinator model's k private copies.

The runtime offers the deduplicating edge-posting round directly, since that
is the only blackboard-specific behaviour the protocols need.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness
from repro.graphs.graph import Edge

__all__ = ["BlackboardRuntime"]


class BlackboardRuntime:
    """Execution context for one blackboard-model protocol run."""

    def __init__(self, players: Sequence[Player],
                 shared: SharedRandomness | None = None,
                 ledger: CommunicationLedger | None = None) -> None:
        if not players:
            raise ValueError("a protocol needs at least one player")
        self.players = list(players)
        self.n = players[0].n
        self.k = len(players)
        self.shared = shared if shared is not None else SharedRandomness()
        self.ledger = ledger if ledger is not None else CommunicationLedger()
        self.board: list[tuple[int, object]] = []

    def post(self, player_id: int, payload: object, bits: int,
             label: str = "blackboard") -> None:
        """Post a payload; charged once, visible to everyone."""
        self.ledger.begin_round()
        self.ledger.charge_upstream(player_id, bits, label)
        self.board.append((player_id, payload))

    def post_edges_in_turns(
        self,
        harvest: Callable[[Player], Iterable[Edge]],
        per_edge_bits: int,
        label: str = "blackboard-edges",
        cap: int | None = None,
    ) -> set[Edge]:
        """Players post their harvested edges in turn, never repeating.

        Each player locally computes its harvest, subtracts what is already
        on the board, and posts only the remainder — this is exactly how
        Theorem 3.23 saves the factor k over the coordinator model.  An
        optional global ``cap`` bounds the total number of posted edges.
        """
        posted: set[Edge] = set()
        for player in self.players:
            fresh = [e for e in harvest(player) if e not in posted]
            if cap is not None:
                remaining = cap - len(posted)
                if remaining <= 0:
                    break
                fresh = fresh[:remaining]
            if not fresh:
                continue
            self.post(
                player.player_id, tuple(fresh),
                per_edge_bits * len(fresh), label,
            )
            posted.update(fresh)
        return posted

    def __repr__(self) -> str:
        return f"BlackboardRuntime(k={self.k}, n={self.n})"

"""Extended one-way model runtime (Section 4.2.2).

Three players: Alice and Bob exchange messages back and forth for as many
rounds as they like; Charlie observes their transcript but sends nothing;
finally Charlie outputs an answer (in the paper, an edge of his own input).
The lower bound Theorem 4.7 charges only the Alice/Bob transcript, and so
does this runtime.

The runtime is also the vehicle for the streaming connection: a one-way
chain protocol (Alice -> Bob -> Charlie, each forwarding a bounded-size
state) is a special case, and :mod:`repro.streaming.reduction` converts
streaming algorithms into exactly that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness

__all__ = ["OneWayTranscript", "OneWayRun", "run_oneway_chain", "run_extended_oneway"]

StateT = TypeVar("StateT")
OutputT = TypeVar("OutputT")


@dataclass
class OneWayTranscript:
    """The Alice/Bob exchange as Charlie sees it."""

    messages: list[tuple[int, object, int]] = field(default_factory=list)
    """(sender, payload, bits) triples in order."""

    def append(self, sender: int, payload: object, bits: int) -> None:
        self.messages.append((sender, payload, bits))

    @property
    def total_bits(self) -> int:
        return sum(bits for _, _, bits in self.messages)

    def payloads(self) -> list[object]:
        return [payload for _, payload, _ in self.messages]


@dataclass
class OneWayRun(Generic[OutputT]):
    output: OutputT
    transcript: OneWayTranscript
    ledger: CommunicationLedger

    @property
    def total_bits(self) -> int:
        return self.transcript.total_bits


def run_extended_oneway(
    alice: Player,
    bob: Player,
    charlie: Player,
    conversation: Callable[
        [Player, Player, SharedRandomness, OneWayTranscript], None
    ],
    charlie_output: Callable[
        [Player, OneWayTranscript, SharedRandomness], OutputT
    ],
    shared: SharedRandomness | None = None,
) -> OneWayRun[OutputT]:
    """Run one extended one-way protocol.

    ``conversation`` drives the Alice/Bob exchange, appending each message
    (with its bit cost) to the transcript; ``charlie_output`` then computes
    Charlie's answer from his private input and the observed transcript.
    Only transcript bits are charged, matching Theorem 4.7's accounting.
    """
    shared = shared if shared is not None else SharedRandomness()
    ledger = CommunicationLedger()
    transcript = OneWayTranscript()
    conversation(alice, bob, shared, transcript)
    for sender, _, bits in transcript.messages:
        ledger.begin_round()
        ledger.charge_upstream(sender, bits, "oneway")
    output = charlie_output(charlie, transcript, shared)
    return OneWayRun(output=output, transcript=transcript, ledger=ledger)


def run_oneway_chain(
    players: list[Player],
    initial_state: StateT,
    step: Callable[[Player, StateT, SharedRandomness], StateT],
    state_bits: Callable[[StateT], int],
    finalize: Callable[[Player, StateT, SharedRandomness], OutputT],
    shared: SharedRandomness | None = None,
) -> OneWayRun[OutputT]:
    """Chain one-way protocol: P1 -> P2 -> ... -> Pk, last player outputs.

    Each player updates a forwarded state from its own input; the state's
    size is charged at every hop.  This is the streaming-reduction shape
    ([4]): a space-s streaming algorithm yields a chain protocol forwarding
    s bits per hop.
    """
    if len(players) < 2:
        raise ValueError("a chain needs at least two players")
    shared = shared if shared is not None else SharedRandomness()
    ledger = CommunicationLedger()
    transcript = OneWayTranscript()
    state = initial_state
    for player in players[:-1]:
        state = step(player, state, shared)
        bits = state_bits(state)
        transcript.append(player.player_id, state, bits)
        ledger.begin_round()
        ledger.charge_upstream(player.player_id, bits, "oneway-chain")
    output = finalize(players[-1], state, shared)
    return OneWayRun(output=output, transcript=transcript, ledger=ledger)

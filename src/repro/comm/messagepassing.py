"""Message-passing model and its coordinator equivalence (Section 2).

In the message-passing model every two players share a private channel and
each message names its recipient.  The paper works in the coordinator model
and notes the two are equivalent up to a log k factor:

* **message-passing -> coordinator**: route every message through the
  coordinator, appending the recipient's id — a ⌈log₂ k⌉-bit overhead per
  message (the coordinator must be told whom to forward to);
* **coordinator -> message-passing**: appoint player 0 as coordinator and
  run the protocol verbatim — zero overhead.

This module makes both directions executable: a charged message-passing
runtime, and simulators that replay a recorded message-passing transcript
through a coordinator (charging the routing overhead) and vice versa, so
the log k equivalence can be measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.comm.encoding import bits_for_universe
from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness

__all__ = [
    "MessagePassingRecord",
    "MessagePassingRuntime",
    "simulate_with_coordinator",
    "coordinator_cost_of_transcript",
    "message_passing_cost_of_coordinator_run",
]


@dataclass(frozen=True)
class MessagePassingRecord:
    """One point-to-point message."""

    sender: int
    recipient: int
    payload: object
    bits: int

    def __post_init__(self) -> None:
        if self.sender == self.recipient:
            raise ValueError("a player cannot message itself")
        if self.bits < 0:
            raise ValueError(f"bits must be non-negative, got {self.bits}")


@dataclass
class MessagePassingRuntime:
    """Charged point-to-point messaging between k players.

    Protocol code calls :meth:`send`; the runtime records the transcript
    and totals.  Players still compute strictly locally via the standard
    :class:`Player` API.
    """

    players: Sequence[Player]
    shared: SharedRandomness = field(default_factory=SharedRandomness)
    transcript: list[MessagePassingRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.players:
            raise ValueError("a protocol needs at least one player")

    @property
    def k(self) -> int:
        return len(self.players)

    def send(self, sender: int, recipient: int, payload: object,
             bits: int) -> None:
        if not (0 <= sender < self.k and 0 <= recipient < self.k):
            raise ValueError(
                f"player ids must be in [0, {self.k}), "
                f"got {sender} -> {recipient}"
            )
        self.transcript.append(
            MessagePassingRecord(sender, recipient, payload, bits)
        )

    @property
    def total_bits(self) -> int:
        return sum(record.bits for record in self.transcript)


def coordinator_cost_of_transcript(transcript: Sequence[MessagePassingRecord],
                                   k: int) -> int:
    """Bits to route a message-passing transcript through a coordinator.

    Each message travels sender -> coordinator -> recipient; the upstream
    copy carries ⌈log₂ k⌉ extra bits naming the recipient.  Total:
    ``2 * bits + log k`` per message — the Section 2 equivalence's
    overhead, computed exactly.
    """
    if k < 2:
        raise ValueError(f"routing needs k >= 2, got k={k}")
    routing_bits = bits_for_universe(k)
    return sum(
        2 * record.bits + routing_bits for record in transcript
    )


def simulate_with_coordinator(runtime: MessagePassingRuntime
                              ) -> CommunicationLedger:
    """Replay a message-passing transcript through a coordinator.

    Returns the coordinator-model ledger of the simulation; its total is
    exactly :func:`coordinator_cost_of_transcript`.
    """
    ledger = CommunicationLedger(record_messages=True)
    routing_bits = bits_for_universe(runtime.k)
    for record in runtime.transcript:
        ledger.begin_round()
        ledger.charge_upstream(
            record.sender, record.bits + routing_bits, "mp-routing"
        )
        ledger.charge_downstream(record.recipient, record.bits, "mp-routing")
    return ledger


def message_passing_cost_of_coordinator_run(ledger: CommunicationLedger,
                                            coordinator_player: int = 0
                                            ) -> int:
    """Cost of running a coordinator protocol in the message-passing model.

    Player ``coordinator_player`` acts as the coordinator; every recorded
    coordinator-model message becomes one point-to-point message of the
    same size (messages already involving the appointed player become
    local and free).  This is the zero-overhead direction of the
    equivalence.

    Requires a transcript: run the coordinator protocol with a
    ``CommunicationLedger(record_messages=True)`` — the aggregate-only
    default retains no per-message records to replay.
    """
    from repro.comm.ledger import COORDINATOR

    total = 0
    for record in ledger.records:
        endpoints = {record.sender, record.receiver} - {COORDINATOR}
        if endpoints == {coordinator_player} or not endpoints:
            continue  # local to the appointed coordinator
        total += record.bits
    return total

"""Simultaneous-model runtime (Section 2, "Simultaneous Communication").

Each player sees its input and the public randomness, sends *one* message to
the referee, and the referee outputs the answer.  No player ever observes
another player's message — the runtime enforces this by evaluating the
per-player message function independently and handing the referee only the
collected messages.

This is the communication-complexity analogue of an oblivious property
tester, and it is the model of Algorithms 7-11 and of the Section 4.2.3
lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness

__all__ = ["SimultaneousRun", "run_simultaneous"]

MessageT = TypeVar("MessageT")
OutputT = TypeVar("OutputT")


@dataclass
class SimultaneousRun(Generic[MessageT, OutputT]):
    """Outcome of one simultaneous protocol execution."""

    output: OutputT
    messages: list[MessageT]
    ledger: CommunicationLedger

    @property
    def total_bits(self) -> int:
        return self.ledger.total_bits

    def max_message_bits(self) -> int:
        """Largest single player message (per-player budget checks)."""
        return max(
            (self.ledger.player_bits(j) for j in range(len(self.messages))),
            default=0,
        )


def run_simultaneous(
    players: Sequence[Player],
    message_fn: Callable[[Player, SharedRandomness], MessageT],
    message_bits: Callable[[MessageT], int],
    referee_fn: Callable[[list[MessageT], SharedRandomness], OutputT],
    shared: SharedRandomness | None = None,
    label: str = "simultaneous",
    record_messages: bool = False,
) -> SimultaneousRun[MessageT, OutputT]:
    """Execute one simultaneous protocol.

    ``message_fn(player, shared)`` computes a player's single message from
    its private input and the public coins; ``message_bits`` prices it;
    ``referee_fn(messages, shared)`` produces the output.  The ledger
    charges one round and one upstream message per player;
    ``record_messages=True`` additionally retains the per-message
    :class:`~repro.comm.ledger.MessageRecord` transcript.
    """
    if not players:
        raise ValueError("a protocol needs at least one player")
    shared = shared if shared is not None else SharedRandomness()
    ledger = CommunicationLedger(record_messages=record_messages)
    ledger.begin_round()
    messages: list[MessageT] = []
    for player in players:
        message = message_fn(player, shared)
        messages.append(message)
        ledger.charge_upstream(player.player_id, message_bits(message), label)
    output = referee_fn(messages, shared)
    return SimultaneousRun(output=output, messages=messages, ledger=ledger)

"""Coordinator-model runtime (the paper's default model, Section 2).

k players hold private inputs and communicate only with a coordinator over
private channels; in each round the coordinator messages one player, who
responds.  The runtime couples the :class:`~repro.comm.players.Player`
objects, a shared-randomness source, and a :class:`CommunicationLedger`, and
offers charged messaging helpers so protocol code cannot move information
without paying for it.

The helpers encode the two dominant interaction shapes of Section 3:

* :meth:`collect` — coordinator polls every player with the same request and
  gathers their responses (one round per player, as the model requires);
* :meth:`broadcast` — coordinator sends the same payload to everyone
  (k downstream messages; the coordinator model has no cheap broadcast).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.comm.ledger import CommunicationLedger
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness

__all__ = ["CoordinatorRuntime"]

T = TypeVar("T")


class CoordinatorRuntime:
    """Execution context for one coordinator-model protocol run."""

    def __init__(self, players: Sequence[Player],
                 shared: SharedRandomness | None = None,
                 ledger: CommunicationLedger | None = None) -> None:
        if not players:
            raise ValueError("a protocol needs at least one player")
        self.players = list(players)
        self.n = players[0].n
        if any(p.n != self.n for p in players):
            raise ValueError("players disagree on the vertex universe size")
        self.k = len(players)
        self.shared = shared if shared is not None else SharedRandomness()
        self.ledger = ledger if ledger is not None else CommunicationLedger()

    # ------------------------------------------------------------------
    # Charged interactions
    # ------------------------------------------------------------------
    def collect(self, compute: Callable[[Player], T],
                response_bits: Callable[[T], int],
                label: str = "", request_bits: int = 1) -> list[T]:
        """Poll every player: send a request, collect charged responses.

        ``compute`` is the player's local computation; ``response_bits``
        prices its result.  ``request_bits`` is the downstream cost of
        telling the player what to do (1 bit suffices when the request is
        implied by the protocol's public state, which is the common case —
        the players follow the same public transcript).
        """
        responses: list[T] = []
        for player in self.players:
            self.ledger.begin_round()
            if request_bits:
                self.ledger.charge_downstream(
                    player.player_id, request_bits, label
                )
            result = compute(player)
            responses.append(result)
            self.ledger.charge_upstream(
                player.player_id, response_bits(result), label
            )
        return responses

    def collect_from(self, player_id: int, compute: Callable[[Player], T],
                     response_bits: Callable[[T], int],
                     label: str = "", request_bits: int = 1) -> T:
        """One-player round: request + charged response."""
        player = self.players[player_id]
        self.ledger.begin_round()
        if request_bits:
            self.ledger.charge_downstream(player_id, request_bits, label)
        result = compute(player)
        self.ledger.charge_upstream(
            player_id, response_bits(result), label
        )
        return result

    def broadcast(self, bits: int, label: str = "") -> None:
        """Coordinator sends the same ``bits``-bit payload to all players."""
        self.ledger.charge_broadcast(self.k, bits, label)

    def scope(self, label: str):
        """Attribute contained communication to a sub-procedure label."""
        return self.ledger.scope(label)

    def __repr__(self) -> str:
        return f"CoordinatorRuntime(k={self.k}, n={self.n})"

"""Bit-size calculus for protocol messages.

Communication complexity counts *bits*, so every message a player or the
coordinator sends must be assigned an explicit bit cost.  This module is the
single source of truth for those costs.  The conventions match the encodings
the paper's asymptotic analysis implicitly assumes:

* a vertex id out of a universe of ``n`` vertices costs ``ceil(log2 n)`` bits;
* an (undirected) edge costs two vertex ids;
* a non-negative integer ``x`` with a known upper bound ``m`` costs
  ``ceil(log2 (m + 1))`` bits;
* a self-delimiting integer (no known bound) uses the Elias gamma code,
  ``2 * floor(log2 x) + 1`` bits — this is what "sending the index of the MSB"
  style messages (Theorem 3.1) cost up to constants;
* a single indicator costs one bit.

All functions return ``int`` bit counts and never charge less than one bit
for a non-empty message, because a message's presence is itself information.
"""

from __future__ import annotations

import math

__all__ = [
    "bits_for_universe",
    "vertex_bits",
    "edge_bits",
    "int_bits",
    "elias_gamma_bits",
    "indicator_bits",
    "edge_list_bits",
    "vertex_list_bits",
]


def bits_for_universe(size: int) -> int:
    """Bits needed to name one element of a universe of ``size`` elements.

    A universe of one element still costs one bit (the message must be
    distinguishable from silence).  Raises ``ValueError`` for an empty
    universe, because no element can be named.
    """
    if size < 1:
        raise ValueError(f"universe must be non-empty, got size={size}")
    return max(1, math.ceil(math.log2(size)))


def vertex_bits(n: int) -> int:
    """Cost of one vertex id in a graph on ``n`` vertices."""
    return bits_for_universe(n)


def edge_bits(n: int) -> int:
    """Cost of one undirected edge in a graph on ``n`` vertices.

    We charge two vertex ids.  (An optimal encoding of an unordered pair
    saves one bit; the distinction never matters asymptotically and the
    paper charges ``O(log n)`` per edge.)
    """
    return 2 * vertex_bits(n)


def int_bits(value: int, upper_bound: int) -> int:
    """Cost of an integer ``0 <= value <= upper_bound`` with the bound known.

    The bound is public knowledge (part of the protocol), so the integer
    can be sent in fixed width ``ceil(log2 (upper_bound + 1))``.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value > upper_bound:
        raise ValueError(f"value {value} exceeds declared bound {upper_bound}")
    return bits_for_universe(upper_bound + 1)


def elias_gamma_bits(value: int) -> int:
    """Cost of a self-delimiting positive integer (Elias gamma code).

    Used when no a-priori bound is shared, e.g. a player reporting the MSB
    index of its local degree count in Theorem 3.1.
    """
    if value < 1:
        raise ValueError(f"Elias gamma encodes positive integers, got {value}")
    return 2 * int(math.floor(math.log2(value))) + 1


def indicator_bits() -> int:
    """Cost of a single yes/no indicator."""
    return 1


def edge_list_bits(count: int, n: int) -> int:
    """Cost of sending ``count`` edges of a graph on ``n`` vertices.

    An empty list still costs one bit ("I have nothing"), matching the
    convention that silence is not free once a player is required to speak.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return 1
    return count * edge_bits(n)


def vertex_list_bits(count: int, n: int) -> int:
    """Cost of sending ``count`` vertex ids of a graph on ``n`` vertices."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return 1
    return count * vertex_bits(n)

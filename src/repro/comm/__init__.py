"""Communication-model substrate: players, ledgers, and model runtimes.

This package simulates the number-in-hand communication models of the paper
with explicit bit accounting:

* :mod:`repro.comm.encoding` — bit costs of payloads;
* :mod:`repro.comm.ledger` — per-run communication ledger;
* :mod:`repro.comm.randomness` — shared (public) coins;
* :mod:`repro.comm.players` — strictly-local player computation;
* :mod:`repro.comm.coordinator` — the coordinator model (default);
* :mod:`repro.comm.simultaneous` — one-shot referee model;
* :mod:`repro.comm.oneway` — extended one-way model (lower bounds, streaming);
* :mod:`repro.comm.blackboard` — blackboard variant (Theorem 3.23).
"""

from repro.comm.blackboard import BlackboardRuntime
from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.messagepassing import (
    MessagePassingRecord,
    MessagePassingRuntime,
    coordinator_cost_of_transcript,
    message_passing_cost_of_coordinator_run,
    simulate_with_coordinator,
)
from repro.comm.newman import (
    NewmanPool,
    build_pool,
    estimate_pool_error,
    pool_size,
)
from repro.comm.ledger import CommunicationLedger, CostSummary, MessageRecord
from repro.comm.oneway import (
    OneWayRun,
    OneWayTranscript,
    run_extended_oneway,
    run_oneway_chain,
)
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import SimultaneousRun, run_simultaneous

__all__ = [
    "MessagePassingRecord",
    "MessagePassingRuntime",
    "coordinator_cost_of_transcript",
    "message_passing_cost_of_coordinator_run",
    "simulate_with_coordinator",
    "NewmanPool",
    "build_pool",
    "estimate_pool_error",
    "pool_size",
    "BlackboardRuntime",
    "CoordinatorRuntime",
    "CommunicationLedger",
    "CostSummary",
    "MessageRecord",
    "OneWayRun",
    "OneWayTranscript",
    "run_extended_oneway",
    "run_oneway_chain",
    "Player",
    "make_players",
    "SharedRandomness",
    "SimultaneousRun",
    "run_simultaneous",
]

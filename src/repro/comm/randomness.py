"""Shared (public) randomness for multiparty protocols.

The paper assumes the players and coordinator share a public random string:
sampling decisions are made by "interpreting the public bits" and cost zero
communication.  :class:`SharedRandomness` models that string as a seeded PRNG
that every party holds a reference to.  All sampling primitives the protocols
need — permutations over the vertex set, Bernoulli vertex samples, ranked
orders over potential edges — live here so that players provably agree on
them without exchanging bits.

Determinism contract: two ``SharedRandomness`` instances created with the
same seed produce identical sample sequences, which is what makes protocol
runs reproducible end to end.

Two execution paths honour that contract:

* the **scalar** reference path draws one index at a time from
  ``random.Random`` (the historical implementation, always available);
* the **vectorized** path transplants the very same MT19937 state into a
  ``numpy.random.RandomState`` — both generators build 53-bit doubles
  from identical word pairs — and replays the geometric-skipping
  recurrence as array operations.  Selected indices are equal element
  for element, so masks are byte-identical; the path is taken
  automatically for draws big enough to amortize the state transplant
  and degrades to scalar whenever numpy is unavailable.

:meth:`SharedRandomness.batch` is the batched construction the trial
runtime uses: one call yields every trial's coin stream for a grid
point, each stream provably identical to ``SharedRandomness(seed)``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Sequence

try:  # the vectorized draw path is optional — scalar is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the forced-off knob
    _np = None

__all__ = ["SharedRandomness"]

#: Words in an MT19937 state vector (shared by random.Random and numpy).
_MT_STATE_WORDS = 624

#: Expected selected-index count below which the scalar loop beats the
#: numpy path (the state transplant costs a fixed ~tens of microseconds).
_VECTOR_MIN_EXPECTED = 128

# A large prime used to build per-call independent sub-streams from
# (seed, tag) pairs without materializing n! permutations.
_MIX_PRIME = 0x9E3779B97F4A7C15


def _mask_from_indices(indices: Iterable[int], universe_size: int) -> int:
    """Assemble a bitmask in a bytearray: O(universe) total, no
    O(universe²/word) repeated big-int shifts for dense index streams."""
    buffer = bytearray((universe_size >> 3) + 1)
    for index in indices:
        buffer[index >> 3] |= 1 << (index & 7)
    return int.from_bytes(buffer, "little")


def _geometric_indices(local: random.Random, universe_size: int,
                       probability: float) -> Iterator[int]:
    """Geometric skipping over ``range(universe_size)``: expected O(p·n).

    ``probability`` must lie strictly in (0, 1); the caller handles the
    endpoints in closed form.
    """
    index = -1
    log_q = math.log1p(-probability)
    if log_q == 0.0:
        # probability is denormal-small: log1p underflows to -0.0; a gap
        # division by it would raise — and no gap that large fits any
        # finite universe, so nothing is selected.
        return
    while True:
        raw_gap = math.log(max(local.random(), 1e-300)) / log_q
        if raw_gap >= universe_size:
            # Covers float overflow to inf at tiny probabilities, where
            # an un-guarded int() would raise.
            return
        index += int(raw_gap) + 1
        if index >= universe_size:
            return
        yield index


def _numpy_stream(local: random.Random) -> "_np.random.RandomState":
    """A numpy RandomState continuing ``local``'s exact MT19937 stream.

    Both generators assemble doubles as ``((a >> 5) * 2^26 + (b >> 6)) /
    2^53`` from consecutive 32-bit outputs, so after the transplant
    ``stream.random_sample(k)`` equals ``[local.random()] * k`` draw for
    draw.  ``local`` itself is left untouched — callers only transplant
    throwaway sub-stream generators.
    """
    state = local.getstate()[1]
    stream = _np.random.RandomState()
    stream.set_state(
        ("MT19937",
         _np.asarray(state[:_MT_STATE_WORDS], dtype=_np.uint32),
         state[_MT_STATE_WORDS])
    )
    return stream


def _geometric_indices_array(local: random.Random, universe_size: int,
                             probability: float) -> "_np.ndarray":
    """:func:`_geometric_indices` as one vectorized pass, equal output.

    Uniform draws come in chunks from the transplanted stream; gaps,
    cumulative positions, and the two termination conditions (a gap at
    least the universe, or a position past it) are array expressions.
    Gap entries at or beyond the terminator carry clamped garbage, but
    the first terminator cuts them off before they are emitted —
    exactly where the scalar generator returns.
    """
    log_q = math.log1p(-probability)
    if log_q == 0.0:
        return _np.empty(0, dtype=_np.int64)
    stream = _numpy_stream(local)
    chunks: list["_np.ndarray"] = []
    index = -1
    # Expected draw count is ~p·n + 1; the first chunk covers it with
    # slack so one pass almost always suffices.
    chunk = max(32, int(probability * universe_size * 1.25) + 16)
    while True:
        raw = _np.log(
            _np.maximum(stream.random_sample(chunk), 1e-300)
        ) / log_q
        overshoot = raw >= universe_size
        steps = _np.where(
            overshoot, 1,
            _np.minimum(raw, universe_size).astype(_np.int64) + 1,
        )
        positions = index + _np.cumsum(steps)
        terminal = _np.nonzero(overshoot | (positions >= universe_size))[0]
        if terminal.size:
            chunks.append(positions[: terminal[0]])
            break
        chunks.append(positions)
        index = int(positions[-1])
        chunk = 64
    return chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)


def _mask_from_index_array(indices: "_np.ndarray", universe_size: int) -> int:
    """:func:`_mask_from_indices` for an index array: packbits assembly."""
    bits = _np.zeros(universe_size, dtype=_np.bool_)
    bits[indices] = True
    return int.from_bytes(
        _np.packbits(bits, bitorder="little").tobytes(), "little"
    )


class SharedRandomness:
    """Public-coin source shared by all parties of a protocol.

    Parameters
    ----------
    seed:
        Seed of the public random string.  Protocol executions with equal
        seeds are bitwise identical.
    vectorized:
        ``None`` (default) lets big subset draws take the numpy path when
        numpy is importable; ``False`` forces the scalar reference path;
        ``True`` insists on numpy and raises without it.  All settings
        produce identical samples — the knob only trades implementations.
    """

    def __init__(self, seed: int = 0, *, vectorized: bool | None = None) -> None:
        if vectorized and _np is None:  # pragma: no cover - numpy is baked in
            raise RuntimeError("vectorized draws requested but numpy is missing")
        self._seed = seed
        self._rng = random.Random(seed)
        self._draws = 0
        self._vectorized = (_np is not None) if vectorized is None else vectorized

    @property
    def seed(self) -> int:
        return self._seed

    @classmethod
    def batch(cls, seeds: Sequence[int], *,
              vectorized: bool | None = None) -> list["SharedRandomness"]:
        """One coin stream per seed — the grid-point batched construction.

        Each returned instance is draw-for-draw identical to
        ``SharedRandomness(seed)``: a protocol run against stream ``i``
        produces the same record as a fresh per-trial run with
        ``seeds[i]``, which is what keeps the batched execution path
        byte-identical to the per-trial one.  The heavy per-draw work
        (the geometric-skipping subset recurrence) runs vectorized, so a
        whole batch's public coins amount to one numpy pass per draw
        rather than per-element scalar loops.
        """
        return [cls(seed, vectorized=vectorized) for seed in seeds]

    def fork(self, tag: int) -> "SharedRandomness":
        """An independent public sub-stream labelled by ``tag``.

        Used when conceptually parallel sub-protocols (e.g. the ``O(log k)``
        simultaneous instances of Algorithm 11) must each see their own
        fresh public coins, agreed on by all players.
        """
        return SharedRandomness((self._seed * _MIX_PRIME + tag) & (2**63 - 1))

    # ------------------------------------------------------------------
    # Basic draws
    # ------------------------------------------------------------------
    def random(self) -> float:
        self._draws += 1
        return self._rng.random()

    def randrange(self, upper: int) -> int:
        self._draws += 1
        return self._rng.randrange(upper)

    def choice(self, items: Sequence[int]) -> int:
        self._draws += 1
        return self._rng.choice(items)

    # ------------------------------------------------------------------
    # Protocol-level primitives
    # ------------------------------------------------------------------
    def permutation_rank(self, universe_size: int, tag: int = 0):
        """A uniformly random total order over ``range(universe_size)``.

        Returns a callable ``rank(item) -> float`` such that comparing ranks
        realizes a uniformly random permutation (ties have probability zero
        for practical purposes, and are broken by item id for determinism).
        Every player evaluates the *same* function, so "the first element of
        my set under the public permutation" is consistent across players —
        exactly the trick Algorithm 1 (SampleUniformFromB~i) relies on.

        A lazy hash-based construction is used instead of materializing the
        permutation, so ranking a handful of elements of a huge universe is
        cheap.
        """
        base = (self._seed * _MIX_PRIME + (tag << 17) + self._next_nonce()) & (
            2**63 - 1
        )

        def rank(item: int) -> tuple[float, int]:
            if not 0 <= item < universe_size:
                raise ValueError(
                    f"item {item} outside universe of size {universe_size}"
                )
            local = random.Random((base * _MIX_PRIME + item) & (2**63 - 1))
            return (local.random(), item)

        return rank

    def _bernoulli_local(self, probability: float, tag: int) -> random.Random:
        """Main-stream draws (one draw + nonce) behind both subset forms.

        Called eagerly by either representation, so the set and mask
        forms are draw-for-draw interchangeable: later public sampling
        decisions are unaffected by which one a protocol used.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._draws += 1
        return random.Random(
            (self._seed * _MIX_PRIME + (tag << 21) + self._next_nonce())
            & (2**63 - 1)
        )

    def bernoulli_subset(self, universe_size: int, probability: float,
                         tag: int = 0) -> set[int]:
        """Include each of ``range(universe_size)`` independently w.p. ``p``.

        This is the public-coin "jointly generate a random set S ⊆ V" step
        used throughout Section 3.  All parties calling this with the same
        tag and draw order obtain the same set.
        """
        local = self._bernoulli_local(probability, tag)
        if probability == 0.0:
            return set()
        if probability == 1.0:
            return set(range(universe_size))
        return set(_geometric_indices(local, universe_size, probability))

    def bernoulli_subset_mask(self, universe_size: int, probability: float,
                              tag: int = 0) -> int:
        """:meth:`bernoulli_subset` as a bitmask, identical draw order.

        The mask form the mask-native players harvest against.  The mask
        is assembled in a bytearray (O(universe) total) rather than by
        repeated ``|= 1 << i`` shifts (O(universe²/word) for dense
        samples), and the all/none endpoints are closed forms.
        """
        local = self._bernoulli_local(probability, tag)
        if probability == 0.0:
            return 0
        if probability == 1.0:
            return (1 << universe_size) - 1
        if (
            self._vectorized
            and probability * universe_size >= _VECTOR_MIN_EXPECTED
        ):
            return _mask_from_index_array(
                _geometric_indices_array(local, universe_size, probability),
                universe_size,
            )
        return _mask_from_indices(
            _geometric_indices(local, universe_size, probability),
            universe_size,
        )

    def bernoulli_predicate(self, probability: float, tag: int = 0):
        """A public iid-Bernoulli(p) membership predicate over the integers.

        Returns ``pred(item) -> bool`` deciding whether ``item`` belongs to
        the public random sample, *without* materializing the sample.  All
        parties evaluating the predicate agree, so a player can check only
        the elements it cares about (e.g. its own incident edges in the
        Theorem 3.1 degree-approximation experiments) in time proportional
        to its own input — the trick that keeps public sampling free.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        base = (self._seed * _MIX_PRIME + (tag << 19) + self._next_nonce()) & (
            2**63 - 1
        )

        def pred(item: int) -> bool:
            local = random.Random((base * _MIX_PRIME + item) & (2**63 - 1))
            return local.random() < probability

        return pred

    def sample_without_replacement(self, universe_size: int, count: int,
                                   tag: int = 0) -> list[int]:
        """A uniformly random ``count``-subset of ``range(universe_size)``.

        Used by Algorithm 7 ("a uniformly random set of vertices of size
        |S|").  ``count`` is clamped to the universe size — at reproduction
        scales the paper's sample-size formulas routinely exceed n, which
        simply means "take everything".
        """
        count = min(count, universe_size)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._draws += 1
        local = random.Random(
            (self._seed * _MIX_PRIME + (tag << 13) + self._next_nonce())
            & (2**63 - 1)
        )
        return local.sample(range(universe_size), count)

    def sample_without_replacement_mask(self, universe_size: int, count: int,
                                        tag: int = 0) -> int:
        """:meth:`sample_without_replacement` as a bitmask, same draws.

        Membership is all the mask-native harvests need, so the sampled
        order is folded away; the underlying draw sequence is identical
        to the list form.
        """
        return _mask_from_indices(
            self.sample_without_replacement(universe_size, count, tag),
            universe_size,
        )

    def shuffled(self, items: Iterable[int], tag: int = 0) -> list[int]:
        """A uniformly random ordering of ``items`` (public)."""
        self._draws += 1
        local = random.Random(
            (self._seed * _MIX_PRIME + (tag << 9) + self._next_nonce())
            & (2**63 - 1)
        )
        result = list(items)
        local.shuffle(result)
        return result

    def _next_nonce(self) -> int:
        # Advance the main stream so successive primitive calls are
        # independent while remaining reproducible.
        return self._rng.getrandbits(48)

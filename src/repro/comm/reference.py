"""Reference ``set``-based player backend for differential testing.

:class:`SetPlayer` is the pre-bitset implementation of
:class:`~repro.comm.players.Player` — a ``frozenset[Edge]`` input plus dict
adjacency, with every harvest method doing per-edge Python set work — kept
as an executable specification, mirroring
:class:`~repro.graphs.reference.SetGraph`:

* ``tests/test_protocol_engine.py`` drives random edge partitions and
  sample sets through both backends and asserts identical harvests,
  identical protocol messages, and identical ``DetectionResult``s,
* ``benchmarks/bench_protocol_engine.py`` measures whole-protocol trials
  (sim-low, sim-high, oblivious) with mask players against this baseline.

``SetPlayer`` also implements the mask-form harvest API (``*_mask``
methods, :meth:`sorted_edges`) the rebuilt protocols call, computed the
slow way — masks are expanded to vertex sets, the original set algorithms
run, and results are order-normalized to the kernel's ascending canonical
order — so any protocol entry point accepting a ``player_factory`` runs
unmodified on either backend.

Nothing in the production code imports this module.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.graphs.buckets import degrees_from_view, player_suspected_bucket
from repro.graphs.graph import Edge, canonical_edge, mask_of

__all__ = [
    "SetPlayer",
    "make_set_players",
    "post_edges_in_turns_reference",
]

_BYTE_BITS = {
    byte: tuple(b for b in range(8) if byte >> b & 1) for byte in range(256)
}


def _mask_to_set(mask: int) -> set[int]:
    """Expand a vertex mask to a Python set via a linear byte scan."""
    result: set[int] = set()
    for offset, byte in enumerate(
        mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    ):
        if byte:
            base = offset << 3
            for bit in _BYTE_BITS[byte]:
                result.add(base + bit)
    return result


class SetPlayer:
    """One player of a number-in-hand protocol (original set backend)."""

    def __init__(self, player_id: int, n: int, edges: Iterable[Edge]) -> None:
        self.player_id = player_id
        self.n = n
        self._edges: frozenset[Edge] = frozenset(
            canonical_edge(u, v) for u, v in edges
        )
        self._adjacency: dict[int, set[int]] = {}
        for u, v in self._edges:
            self._adjacency.setdefault(u, set()).add(v)
            self._adjacency.setdefault(v, set()).add(u)
        self._degrees = degrees_from_view(self._edges)

    # ------------------------------------------------------------------
    # Introspection (local, free)
    # ------------------------------------------------------------------
    @property
    def edges(self) -> frozenset[Edge]:
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def sorted_edges(self) -> list[Edge]:
        """All local edges in ascending canonical order."""
        return sorted(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def local_degree(self, v: int) -> int:
        """d_j(v): degree of v in this player's view."""
        return self._degrees.get(v, 0)

    def local_neighbors(self, v: int) -> frozenset[int]:
        return frozenset(self._adjacency.get(v, ()))

    def local_neighbor_mask(self, v: int) -> int:
        """N_j(v) as a bitmask, assembled bit by bit."""
        return mask_of(self._adjacency.get(v, ()))

    def average_local_degree(self) -> float:
        """d-bar_j = 2|E_j| / n, the §3.4.3 per-player density estimate."""
        if self.n == 0:
            return 0.0
        return 2.0 * len(self._edges) / self.n

    def degree_msb_index(self, v: int) -> int | None:
        """Index of the most significant bit of d_j(v); None if d_j(v)=0."""
        degree = self.local_degree(v)
        if degree == 0:
            return None
        return degree.bit_length() - 1

    def suspected_bucket(self, index: int, k: int) -> set[int]:
        """B~_i^j: vertices with 3^i / k <= d_j(v) <= 3^(i+1)."""
        return player_suspected_bucket(self._degrees, index, k)

    # ------------------------------------------------------------------
    # Permutation-ranked minima (Algorithm 1 and the §3.1 primitives)
    # ------------------------------------------------------------------
    def first_vertex_under_rank(self, candidates: Iterable[int],
                                rank: Callable[[int], tuple]) -> int | None:
        """Lowest-ranked vertex among ``candidates`` (public order)."""
        best: int | None = None
        best_rank: tuple | None = None
        for v in candidates:
            r = rank(v)
            if best_rank is None or r < best_rank:
                best, best_rank = v, r
        return best

    def first_incident_edge_under_rank(self, v: int,
                                       rank: Callable[[int], tuple]
                                       ) -> Edge | None:
        """Lowest-ranked edge of E_j incident to v, ranking by far endpoint."""
        best_neighbor = self.first_vertex_under_rank(
            self._adjacency.get(v, ()), rank
        )
        if best_neighbor is None:
            return None
        return canonical_edge(v, best_neighbor)

    def first_edge_under_rank(self, rank: Callable[[Edge], tuple]
                              ) -> Edge | None:
        """Lowest-ranked edge of E_j under a public order on edges."""
        best: Edge | None = None
        best_rank: tuple | None = None
        for edge in self._edges:
            r = rank(edge)
            if best_rank is None or r < best_rank:
                best, best_rank = edge, r
        return best

    # ------------------------------------------------------------------
    # Edge harvesting against public vertex samples
    # ------------------------------------------------------------------
    def edges_at_vertex_in_sample(self, v: int, sample: set[int]
                                  ) -> set[Edge]:
        """E_j ∩ ({v} × S): Algorithm 4's per-vertex edge sample."""
        return {
            canonical_edge(v, u)
            for u in self._adjacency.get(v, ())
            if u in sample
        }

    def edges_within(self, sample: set[int]) -> set[Edge]:
        """E_j ∩ S²: the induced-subgraph harvest of Algorithms 7 and 9."""
        found: set[Edge] = set()
        for u, v in self._edges:
            if u in sample and v in sample:
                found.add((u, v))
        return found

    def edges_touching_both(self, r_sample: set[int], rs_sample: set[int]
                            ) -> set[Edge]:
        """Edges with one endpoint in R and the other in R ∪ S (Alg 8/10)."""
        found: set[Edge] = set()
        for u, v in self._edges:
            if (u in r_sample and v in rs_sample) or (
                v in r_sample and u in rs_sample
            ):
                found.add((u, v))
        return found

    # Mask-form harvests: expand masks, run the set algorithms, sort.
    # The expansion uses the byte-scan below (not per-bit int peeling) so
    # benchmark baselines measure the original per-edge set work, not an
    # artificial conversion tax the old protocols never paid.
    def edges_at_vertex_in_mask(self, v: int, sample_mask: int) -> list[Edge]:
        return sorted(
            self.edges_at_vertex_in_sample(v, _mask_to_set(sample_mask))
        )

    def edges_within_mask(self, sample_mask: int) -> list[Edge]:
        return sorted(self.edges_within(_mask_to_set(sample_mask)))

    def edges_touching_both_mask(self, r_mask: int, rs_mask: int
                                 ) -> list[Edge]:
        return sorted(
            self.edges_touching_both(
                _mask_to_set(r_mask), _mask_to_set(rs_mask)
            )
        )

    def sample_hits_vertex(self, v: int, sample: set[int]) -> bool:
        """Is S ∩ (edges of E_j at v) non-empty?  One Theorem 3.1 experiment."""
        neighbours = self._adjacency.get(v)
        if not neighbours:
            return False
        if len(sample) < len(neighbours):
            return any(u in neighbours for u in sample)
        return any(u in sample for u in neighbours)

    def any_incident_neighbor_in(self, v: int,
                                 pred: Callable[[int], bool]) -> bool:
        """Does any local neighbour of v satisfy the public predicate?"""
        return any(pred(u) for u in self._adjacency.get(v, ()))

    def any_edge_index_in(self, edge_index: Callable[[Edge], int],
                          pred: Callable[[int], bool]) -> bool:
        """Does any local edge's public index satisfy the predicate?"""
        return any(pred(edge_index(edge)) for edge in self._edges)

    # ------------------------------------------------------------------
    # Triangle closing
    # ------------------------------------------------------------------
    def find_closing_edge(self, vees: Iterable[tuple[Edge, Edge]]
                          ) -> tuple[Edge, Edge, Edge] | None:
        """Check the local input for an edge closing any posted vee."""
        for e1, e2 in vees:
            shared = set(e1) & set(e2)
            if len(shared) != 1:
                continue
            (u,) = set(e1) - shared
            (w,) = set(e2) - shared
            if self.has_edge(u, w):
                return (e1, e2, canonical_edge(u, w))
        return None

    def find_closing_edge_for_pairs(self, edges: Sequence[Edge]
                                    ) -> tuple[Edge, Edge, Edge] | None:
        """Scan all vee-shaped pairs among ``edges`` for a local closer."""
        adjacency: dict[int, set[int]] = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for source, neighbours in adjacency.items():
            ordered = sorted(neighbours)
            for i, u in enumerate(ordered):
                for w in ordered[i + 1:]:
                    if self.has_edge(u, w):
                        return (
                            canonical_edge(source, u),
                            canonical_edge(source, w),
                            canonical_edge(u, w),
                        )
        return None

    def __repr__(self) -> str:
        return (
            f"SetPlayer(id={self.player_id}, n={self.n}, "
            f"|E_j|={len(self._edges)})"
        )


def make_set_players(partition) -> list[SetPlayer]:
    """Build the k reference players of an :class:`EdgePartition`."""
    n = partition.graph.n
    return [
        SetPlayer(j, n, view) for j, view in enumerate(partition.views)
    ]


def post_edges_in_turns_reference(runtime, harvest, per_edge_bits: int,
                                  label: str = "blackboard-edges",
                                  cap: int | None = None) -> set[Edge]:
    """The pre-PR 4 set-of-tuples blackboard posting round.

    Operates on a :class:`~repro.comm.blackboard.BlackboardRuntime`
    (posting to its board and charging its ledger) but dedupes via a
    Python ``set[Edge]`` exactly as
    ``BlackboardRuntime.post_edges_in_turns`` did before the posted-rows
    board — the baseline the differential tests and
    ``benchmarks/bench_mask_migration.py`` compare against.  (It also
    reproduces the historical cap quirk: in-harvest duplicates counted
    toward the cap and were charged.)
    """
    posted: set[Edge] = set()
    for player in runtime.players:
        fresh = [e for e in harvest(player) if e not in posted]
        if cap is not None:
            remaining = cap - len(posted)
            if remaining <= 0:
                break
            fresh = fresh[:remaining]
        if not fresh:
            continue
        runtime.post(
            player.player_id, tuple(fresh), per_edge_bits * len(fresh),
            label,
        )
        posted.update(fresh)
    return posted

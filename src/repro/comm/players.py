"""Players: strictly-local computation over a private edge view.

A :class:`Player` wraps one player's input ``E_j`` and exposes exactly the
local computations the paper's protocols perform "for free" (computation on
one's own input costs nothing; only communication is charged).  Protocol
code must route every piece of information that leaves a player through the
model runtimes, which charge the ledger — the Player API deliberately never
reveals anything about other players or the ground-truth graph.

The methods mirror the local steps of Sections 3.1, 3.3 and 3.4:

* degree bookkeeping (``local_degree``, ``degree_msb_index``, ``B~_i^j``),
* permutation-ranked minima (Algorithm 1's unbiased sampling trick),
* edge harvesting against publicly sampled vertex sets (Algorithms 4, 7-10),
* the closing-edge check that finishes the unrestricted protocol
  ("each player examines its own input ... for an edge that closes a
  triangle together with some vee").
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.graphs.buckets import degrees_from_view, player_suspected_bucket
from repro.graphs.graph import Edge, canonical_edge

__all__ = ["Player", "make_players"]


class Player:
    """One player of a number-in-hand protocol.

    Parameters
    ----------
    player_id:
        Index in ``0 .. k-1``.
    n:
        Number of vertices of the (publicly known) vertex universe.
    edges:
        The player's private edge view ``E_j``.
    """

    def __init__(self, player_id: int, n: int, edges: Iterable[Edge]) -> None:
        self.player_id = player_id
        self.n = n
        self._edges: frozenset[Edge] = frozenset(
            canonical_edge(u, v) for u, v in edges
        )
        self._adjacency: dict[int, set[int]] = {}
        for u, v in self._edges:
            self._adjacency.setdefault(u, set()).add(v)
            self._adjacency.setdefault(v, set()).add(u)
        self._degrees = degrees_from_view(self._edges)

    # ------------------------------------------------------------------
    # Introspection (local, free)
    # ------------------------------------------------------------------
    @property
    def edges(self) -> frozenset[Edge]:
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def local_degree(self, v: int) -> int:
        """d_j(v): degree of v in this player's view."""
        return self._degrees.get(v, 0)

    def local_neighbors(self, v: int) -> frozenset[int]:
        return frozenset(self._adjacency.get(v, ()))

    def average_local_degree(self) -> float:
        """d-bar_j = 2|E_j| / n, the §3.4.3 per-player density estimate."""
        if self.n == 0:
            return 0.0
        return 2.0 * len(self._edges) / self.n

    def degree_msb_index(self, v: int) -> int | None:
        """Index of the most significant bit of d_j(v); None if d_j(v)=0.

        Phase one of Theorem 3.1: each player reports only the MSB index,
        costing O(log log d) bits.
        """
        degree = self.local_degree(v)
        if degree == 0:
            return None
        return degree.bit_length() - 1

    def suspected_bucket(self, index: int, k: int) -> set[int]:
        """B~_i^j: vertices with 3^i / k <= d_j(v) <= 3^(i+1)."""
        return player_suspected_bucket(self._degrees, index, k)

    # ------------------------------------------------------------------
    # Permutation-ranked minima (Algorithm 1 and the §3.1 primitives)
    # ------------------------------------------------------------------
    def first_vertex_under_rank(self, candidates: Iterable[int],
                                rank: Callable[[int], tuple]) -> int | None:
        """Lowest-ranked vertex among ``candidates`` (public order).

        Because every player evaluates the same public rank, the minimum
        over all players' minima is the global minimum — an unbiased,
        duplication-immune uniform sample.
        """
        best: int | None = None
        best_rank: tuple | None = None
        for v in candidates:
            r = rank(v)
            if best_rank is None or r < best_rank:
                best, best_rank = v, r
        return best

    def first_incident_edge_under_rank(self, v: int,
                                       rank: Callable[[int], tuple]
                                       ) -> Edge | None:
        """Lowest-ranked edge of E_j incident to v, ranking by far endpoint.

        Primitive "choose a uniformly random edge adjacent to v" (§3.1):
        the public rank orders the n-1 potential incident edges; the
        coordinator then takes the global minimum over players' minima.
        """
        best_neighbor = self.first_vertex_under_rank(
            self._adjacency.get(v, ()), rank
        )
        if best_neighbor is None:
            return None
        return canonical_edge(v, best_neighbor)

    def first_edge_under_rank(self, rank: Callable[[Edge], tuple]
                              ) -> Edge | None:
        """Lowest-ranked edge of E_j under a public order on edges."""
        best: Edge | None = None
        best_rank: tuple | None = None
        for edge in self._edges:
            r = rank(edge)
            if best_rank is None or r < best_rank:
                best, best_rank = edge, r
        return best

    # ------------------------------------------------------------------
    # Edge harvesting against public vertex samples
    # ------------------------------------------------------------------
    def edges_at_vertex_in_sample(self, v: int, sample: set[int]
                                  ) -> set[Edge]:
        """E_j ∩ ({v} × S): Algorithm 4's per-vertex edge sample."""
        return {
            canonical_edge(v, u)
            for u in self._adjacency.get(v, ())
            if u in sample
        }

    def edges_within(self, sample: set[int]) -> set[Edge]:
        """E_j ∩ S²: the induced-subgraph harvest of Algorithms 7 and 9."""
        found: set[Edge] = set()
        for u, v in self._edges:
            if u in sample and v in sample:
                found.add((u, v))
        return found

    def edges_touching_both(self, r_sample: set[int], rs_sample: set[int]
                            ) -> set[Edge]:
        """Edges with one endpoint in R and the other in R ∪ S (Alg 8/10)."""
        found: set[Edge] = set()
        for u, v in self._edges:
            if (u in r_sample and v in rs_sample) or (
                v in r_sample and u in rs_sample
            ):
                found.add((u, v))
        return found

    def sample_hits_vertex(self, v: int, sample: set[int]) -> bool:
        """Is S ∩ (edges of E_j at v) non-empty?  One Theorem 3.1 experiment.

        ``sample`` is a public set of *potential neighbours* of v; the
        player answers with a single bit.
        """
        neighbours = self._adjacency.get(v)
        if not neighbours:
            return False
        if len(sample) < len(neighbours):
            return any(u in neighbours for u in sample)
        return any(u in sample for u in neighbours)

    def any_incident_neighbor_in(self, v: int,
                                 pred: Callable[[int], bool]) -> bool:
        """Does any local neighbour of v satisfy the public predicate?

        The lazy-predicate form of :meth:`sample_hits_vertex`: one
        Theorem 3.1 experiment, evaluated in O(d_j(v)) local time.
        """
        return any(pred(u) for u in self._adjacency.get(v, ()))

    def any_edge_index_in(self, edge_index: Callable[[Edge], int],
                          pred: Callable[[int], bool]) -> bool:
        """Does any local edge's public index satisfy the predicate?

        Used by the distinct-elements / |E|-estimation generalization of
        Theorem 3.1 ("this approximation procedure can be applied to any
        subset of vertex pairs, including estimating the total number of
        edges in the graph").
        """
        return any(pred(edge_index(edge)) for edge in self._edges)

    # ------------------------------------------------------------------
    # Triangle closing
    # ------------------------------------------------------------------
    def find_closing_edge(self, vees: Iterable[tuple[Edge, Edge]]
                          ) -> tuple[Edge, Edge, Edge] | None:
        """Check the local input for an edge closing any posted vee.

        Returns (vee edge 1, vee edge 2, closing edge) or None.  This is
        the final interactive round of the unrestricted protocol: the
        coordinator posted candidate vees, each player scans its own input.
        """
        for e1, e2 in vees:
            shared = set(e1) & set(e2)
            if len(shared) != 1:
                continue
            (u,) = set(e1) - shared
            (w,) = set(e2) - shared
            if self.has_edge(u, w):
                return (e1, e2, canonical_edge(u, w))
        return None

    def find_closing_edge_for_pairs(self, edges: Sequence[Edge]
                                    ) -> tuple[Edge, Edge, Edge] | None:
        """Scan all vee-shaped pairs among ``edges`` for a local closer.

        Convenience for protocols that post a bag of edges rather than
        explicit vees; quadratic in len(edges), used only on small bags.
        """
        adjacency: dict[int, set[int]] = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for source, neighbours in adjacency.items():
            ordered = sorted(neighbours)
            for i, u in enumerate(ordered):
                for w in ordered[i + 1:]:
                    if self.has_edge(u, w):
                        return (
                            canonical_edge(source, u),
                            canonical_edge(source, w),
                            canonical_edge(u, w),
                        )
        return None

    def __repr__(self) -> str:
        return (
            f"Player(id={self.player_id}, n={self.n}, "
            f"|E_j|={len(self._edges)})"
        )


def make_players(partition) -> list[Player]:
    """Build the k Player objects of an :class:`EdgePartition`."""
    n = partition.graph.n
    return [
        Player(j, n, view) for j, view in enumerate(partition.views)
    ]

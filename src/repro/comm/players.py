"""Players: strictly-local computation over a private edge view.

A :class:`Player` wraps one player's input ``E_j`` and exposes exactly the
local computations the paper's protocols perform "for free" (computation on
one's own input costs nothing; only communication is charged).  Protocol
code must route every piece of information that leaves a player through the
model runtimes, which charge the ledger — the Player API deliberately never
reveals anything about other players or the ground-truth graph.

The methods mirror the local steps of Sections 3.1, 3.3 and 3.4:

* degree bookkeeping (``local_degree``, ``degree_msb_index``, ``B~_i^j``),
* permutation-ranked minima (Algorithm 1's unbiased sampling trick),
* edge harvesting against publicly sampled vertex sets (Algorithms 4, 7-10),
* the closing-edge check that finishes the unrestricted protocol
  ("each player examines its own input ... for an edge that closes a
  triangle together with some vee").

The backend is the same bitset kernel as :class:`~repro.graphs.graph.Graph`
(PR 2): one adjacency-mask int per vertex, so ``has_edge`` is a
shift-and-test, ``local_degree`` a popcount, and the harvest methods —
the protocol hot path — are mask intersections executed word-at-a-time in
C instead of per-edge Python set work.  The mask-form harvests
(``edges_within_mask`` and friends) return edges in ascending canonical
order, which is exactly the ``sorted(...)`` order the protocols previously
imposed, so messages (and cap truncations) are byte-identical to the
set-based implementation preserved in :mod:`repro.comm.reference`.

Players built via :func:`make_players` reuse the per-player adjacency rows
cached on the :class:`~repro.graphs.partition.EdgePartition`, so repeated
trials on the same partition never re-shred the edge views.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.graphs.buckets import player_suspected_bucket
from repro.graphs.graph import Edge, canonical_edge, iter_bits, mask_of

__all__ = ["Player", "make_players"]


class Player:
    """One player of a number-in-hand protocol.

    Parameters
    ----------
    player_id:
        Index in ``0 .. k-1``.
    n:
        Number of vertices of the (publicly known) vertex universe.
    edges:
        The player's private edge view ``E_j``.  Ignored when ``rows`` is
        given.
    rows:
        Optional prebuilt per-vertex adjacency masks (e.g. the cached
        :meth:`~repro.graphs.partition.EdgePartition.adjacency_rows`).
        Treated as read-only and may be shared between Player instances.
    num_edges:
        Optional distinct-edge count matching ``rows``; computed lazily
        from the rows when omitted.  :func:`make_players` passes the view
        size so per-trial player construction does no popcount pass.
    """

    __slots__ = (
        "player_id", "n", "_rows", "_num_edges", "_edges_cache",
        "_degrees_cache",
    )

    def __init__(self, player_id: int, n: int, edges: Iterable[Edge] = (),
                 *, rows: list[int] | None = None,
                 num_edges: int | None = None) -> None:
        self.player_id = player_id
        self.n = n
        if rows is None:
            rows = [0] * n
            for u, v in edges:
                if u == v:
                    raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
                if not (0 <= u < n and 0 <= v < n):
                    raise ValueError(
                        f"edge ({u}, {v}) outside the vertex universe [0, {n})"
                    )
                rows[u] |= 1 << v
                rows[v] |= 1 << u
        self._rows = rows
        self._num_edges = num_edges
        self._edges_cache: frozenset[Edge] | None = None
        self._degrees_cache: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Introspection (local, free)
    # ------------------------------------------------------------------
    @property
    def edges(self) -> frozenset[Edge]:
        if self._edges_cache is None:
            self._edges_cache = frozenset(self._iter_edges())
        return self._edges_cache

    @property
    def num_edges(self) -> int:
        if self._num_edges is None:
            self._num_edges = sum(
                row.bit_count() for row in self._rows
            ) // 2
        return self._num_edges

    def _iter_edges(self):
        for u, row in enumerate(self._rows):
            upper = row >> (u + 1)
            while upper:
                low = upper & -upper
                yield (u, u + low.bit_length())
                upper ^= low

    def sorted_edges(self) -> list[Edge]:
        """All local edges in ascending canonical order."""
        return list(self._iter_edges())

    def _row(self, v: int) -> int:
        """Row of ``v``, empty for out-of-universe vertices.

        Matches the reference SetPlayer, whose dict adjacency answers
        unknown-vertex queries with "no neighbours" — in particular a
        negative id must not wrap around to vertex ``n + v``.
        """
        if 0 <= v < self.n:
            return self._rows[v]
        return 0

    def adjacency_rows(self) -> list[int]:
        """The per-vertex adjacency masks — treat as READ-ONLY."""
        return self._rows

    def has_edge(self, u: int, v: int) -> bool:
        if u == v or v < 0:
            return False
        return bool(self._row(u) >> v & 1)

    def local_degree(self, v: int) -> int:
        """d_j(v): degree of v in this player's view."""
        return self._row(v).bit_count()

    def local_neighbors(self, v: int) -> frozenset[int]:
        return frozenset(iter_bits(self._row(v)))

    def local_neighbor_mask(self, v: int) -> int:
        """N_j(v) as a bitmask — the raw kernel word."""
        return self._row(v)

    def average_local_degree(self) -> float:
        """d-bar_j = 2|E_j| / n, the §3.4.3 per-player density estimate."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.num_edges / self.n

    def degree_msb_index(self, v: int) -> int | None:
        """Index of the most significant bit of d_j(v); None if d_j(v)=0.

        Phase one of Theorem 3.1: each player reports only the MSB index,
        costing O(log log d) bits.
        """
        degree = self._row(v).bit_count()
        if degree == 0:
            return None
        return degree.bit_length() - 1

    def suspected_bucket(self, index: int, k: int) -> set[int]:
        """B~_i^j: vertices with 3^i / k <= d_j(v) <= 3^(i+1)."""
        if self._degrees_cache is None:
            self._degrees_cache = {
                v: row.bit_count()
                for v, row in enumerate(self._rows) if row
            }
        return player_suspected_bucket(self._degrees_cache, index, k)

    # ------------------------------------------------------------------
    # Permutation-ranked minima (Algorithm 1 and the §3.1 primitives)
    # ------------------------------------------------------------------
    def first_vertex_under_rank(self, candidates: Iterable[int],
                                rank: Callable[[int], tuple]) -> int | None:
        """Lowest-ranked vertex among ``candidates`` (public order).

        Because every player evaluates the same public rank, the minimum
        over all players' minima is the global minimum — an unbiased,
        duplication-immune uniform sample.
        """
        best: int | None = None
        best_rank: tuple | None = None
        for v in candidates:
            r = rank(v)
            if best_rank is None or r < best_rank:
                best, best_rank = v, r
        return best

    def first_incident_edge_under_rank(self, v: int,
                                       rank: Callable[[int], tuple]
                                       ) -> Edge | None:
        """Lowest-ranked edge of E_j incident to v, ranking by far endpoint.

        Primitive "choose a uniformly random edge adjacent to v" (§3.1):
        the public rank orders the n-1 potential incident edges; the
        coordinator then takes the global minimum over players' minima.
        """
        best_neighbor = self.first_vertex_under_rank(
            iter_bits(self._row(v)), rank
        )
        if best_neighbor is None:
            return None
        return canonical_edge(v, best_neighbor)

    def first_edge_under_rank(self, rank: Callable[[Edge], tuple]
                              ) -> Edge | None:
        """Lowest-ranked edge of E_j under a public order on edges."""
        best: Edge | None = None
        best_rank: tuple | None = None
        for edge in self._iter_edges():
            r = rank(edge)
            if best_rank is None or r < best_rank:
                best, best_rank = edge, r
        return best

    # ------------------------------------------------------------------
    # Edge harvesting against public vertex samples
    #
    # The mask forms are the hot path: one row intersection per sampled
    # vertex, emitted in ascending canonical order (== the ``sorted``
    # order protocol messages are priced and capped in).  The set forms
    # keep the original API for callers that still hold Python sets.
    # ------------------------------------------------------------------
    def edges_at_vertex_in_mask(self, v: int, sample_mask: int) -> list[Edge]:
        """E_j ∩ ({v} × S) as a sorted list, S given as a mask."""
        hits = self._row(v) & sample_mask
        return [
            (v, u) if v < u else (u, v) for u in iter_bits(hits)
        ]

    def edges_at_vertex_in_sample(self, v: int, sample: set[int]
                                  ) -> set[Edge]:
        """E_j ∩ ({v} × S): Algorithm 4's per-vertex edge sample."""
        return set(self.edges_at_vertex_in_mask(v, mask_of(sample)))

    def edges_within_mask(self, sample_mask: int) -> list[Edge]:
        """E_j ∩ S² as a sorted list: Algorithms 7 and 9's harvest."""
        rows = self._rows
        found: list[Edge] = []
        remaining = sample_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            u = low.bit_length() - 1
            partners = (rows[u] & sample_mask) >> (u + 1)
            while partners:
                plow = partners & -partners
                found.append((u, u + plow.bit_length()))
                partners ^= plow
        return found

    def edges_within(self, sample: set[int]) -> set[Edge]:
        """E_j ∩ S²: the induced-subgraph harvest of Algorithms 7 and 9."""
        return set(self.edges_within_mask(mask_of(sample)))

    def edges_touching_both_mask(self, r_mask: int, rs_mask: int
                                 ) -> list[Edge]:
        """Edges with one endpoint in R, the other in R ∪ S, sorted.

        A qualifying edge (a ∈ R and b ∈ RS, or b ∈ R and a ∈ RS — the
        two arguments need not be nested) always has its R-endpoint, so
        enumerating base vertices over R alone suffices: one
        ``row & rs_mask`` per R-vertex, which is the whole point — R is
        the small birthday sample while R ∪ S may be nearly everything.
        A pair with both endpoints in R ∩ RS is found from each side;
        the lower endpoint owns it.
        """
        rows = self._rows
        found: list[Edge] = []
        both = r_mask & rs_mask
        remaining = r_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            u = low.bit_length() - 1
            partners = rows[u] & rs_mask
            if not partners:
                continue
            if both >> u & 1:
                # u could double-report pairs owned by a lower R∩RS
                # partner; mask those out.
                partners &= ~(both & ((1 << u) - 1))
            while partners:
                plow = partners & -partners
                v = plow.bit_length() - 1
                found.append((u, v) if u < v else (v, u))
                partners ^= plow
        found.sort()
        return found

    def edges_touching_both(self, r_sample: set[int], rs_sample: set[int]
                            ) -> set[Edge]:
        """Edges with one endpoint in R and the other in R ∪ S (Alg 8/10)."""
        return set(
            self.edges_touching_both_mask(
                mask_of(r_sample), mask_of(rs_sample)
            )
        )

    def sample_hits_vertex_mask(self, v: int, sample_mask: int) -> bool:
        """Mask form of :meth:`sample_hits_vertex`: one ``&`` and a test."""
        return bool(self._row(v) & sample_mask)

    def sample_hits_vertex(self, v: int, sample: set[int]) -> bool:
        """Is S ∩ (edges of E_j at v) non-empty?  One Theorem 3.1 experiment.

        ``sample`` is a public set of *potential neighbours* of v; the
        player answers with a single bit.
        """
        row = self._row(v)
        if not row:
            return False
        if len(sample) < row.bit_count():
            return any(row >> u & 1 for u in sample)
        return any(u in sample for u in iter_bits(row))

    def any_incident_neighbor_in(self, v: int,
                                 pred: Callable[[int], bool]) -> bool:
        """Does any local neighbour of v satisfy the public predicate?

        The lazy-predicate form of :meth:`sample_hits_vertex`: one
        Theorem 3.1 experiment, evaluated in O(d_j(v)) local time.
        """
        return any(pred(u) for u in iter_bits(self._row(v)))

    def any_edge_index_in(self, edge_index: Callable[[Edge], int],
                          pred: Callable[[int], bool]) -> bool:
        """Does any local edge's public index satisfy the predicate?

        Used by the distinct-elements / |E|-estimation generalization of
        Theorem 3.1 ("this approximation procedure can be applied to any
        subset of vertex pairs, including estimating the total number of
        edges in the graph").
        """
        return any(pred(edge_index(edge)) for edge in self._iter_edges())

    # ------------------------------------------------------------------
    # Triangle closing
    # ------------------------------------------------------------------
    def find_closing_edge(self, vees: Iterable[tuple[Edge, Edge]]
                          ) -> tuple[Edge, Edge, Edge] | None:
        """Check the local input for an edge closing any posted vee.

        Returns (vee edge 1, vee edge 2, closing edge) or None.  This is
        the final interactive round of the unrestricted protocol: the
        coordinator posted candidate vees, each player scans its own input.
        """
        for e1, e2 in vees:
            shared = set(e1) & set(e2)
            if len(shared) != 1:
                continue
            (u,) = set(e1) - shared
            (w,) = set(e2) - shared
            if self.has_edge(u, w):
                return (e1, e2, canonical_edge(u, w))
        return None

    def find_closing_edge_for_pairs(self, edges: Sequence[Edge]
                                    ) -> tuple[Edge, Edge, Edge] | None:
        """Scan all vee-shaped pairs among ``edges`` for a local closer.

        Convenience for protocols that post a bag of edges rather than
        explicit vees; quadratic in len(edges), used only on small bags.
        """
        adjacency: dict[int, set[int]] = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for source, neighbours in adjacency.items():
            ordered = sorted(neighbours)
            for i, u in enumerate(ordered):
                for w in ordered[i + 1:]:
                    if self.has_edge(u, w):
                        return (
                            canonical_edge(source, u),
                            canonical_edge(source, w),
                            canonical_edge(u, w),
                        )
        return None

    def __repr__(self) -> str:
        return (
            f"Player(id={self.player_id}, n={self.n}, "
            f"|E_j|={self.num_edges})"
        )


def make_players(partition) -> list[Player]:
    """Build the k Player objects of an :class:`EdgePartition`.

    The player list itself is memoized on the partition (players are
    read-only views over the partition's cached adjacency rows, and
    their internal caches memoize pure functions of those rows), so the
    repetition axis of a batched grid point shares one set of Player
    objects — repeated trials pay nothing for player construction or row
    re-shredding.
    """
    cached = getattr(partition, "_players_cache", None)
    if cached is not None:
        return cached
    n = partition.graph.n
    players = [
        Player(
            j, n, rows=partition.adjacency_rows(j),
            num_edges=partition.view_edge_count(j),
        )
        for j in range(partition.k)
    ]
    try:
        # EdgePartition is a frozen dataclass; the same backdoor its own
        # rows cache uses.  Duck-typed partitions without settable
        # attributes simply skip the memo.
        object.__setattr__(partition, "_players_cache", players)
    except (AttributeError, TypeError):
        pass
    return players

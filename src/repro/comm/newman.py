"""Newman's theorem, executable (Section 2's private-coin remark).

The paper assumes shared randomness and notes that multi-round protocols
can trade it for private randomness at a cost of O(k log n) extra bits via
Newman's theorem [32]: fix, *at protocol-design time*, a small pool of
t = O(log(1/δ') / γ²) random seeds; on each run one player samples a pool
index privately and announces it (⌈log₂ t⌉ bits, broadcast to everyone via
the coordinator for O(k log t) total); the parties then run the public-coin
protocol with the chosen pool seed.  By a Chernoff/union argument over the
input space, a random pool inflates the worst-case error by at most γ with
high probability.

This module implements the transformation generically and provides
:func:`estimate_pool_error` so tests can verify the error claim on concrete
protocols and input families, rather than taking the theorem on faith.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.comm.encoding import bits_for_universe

__all__ = ["NewmanPool", "build_pool", "pool_size", "estimate_pool_error"]

ProtocolRun = Callable[[object, int], bool]
"""(input, seed) -> did the protocol answer correctly."""


def pool_size(gamma: float, delta_prime: float) -> int:
    """t = ceil(2 ln(2/δ') / γ²): seeds needed for error inflation γ."""
    if not 0.0 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0,1), got {gamma}")
    if not 0.0 < delta_prime < 1.0:
        raise ValueError(f"delta' must be in (0,1), got {delta_prime}")
    return max(1, math.ceil(2.0 * math.log(2.0 / delta_prime) / gamma ** 2))


@dataclass(frozen=True)
class NewmanPool:
    """A fixed pool of public seeds plus the announcement cost."""

    seeds: tuple[int, ...]
    k: int

    @property
    def size(self) -> int:
        return len(self.seeds)

    @property
    def announcement_bits(self) -> int:
        """Bits to announce the chosen index to all parties.

        One player sends ⌈log₂ t⌉ bits to the coordinator, which forwards
        to the other k-1 players: k·⌈log₂ t⌉ total.  With
        t = poly(n, 1/γ) this is the O(k log n) of the paper's remark.
        """
        return self.k * bits_for_universe(self.size)

    def choose(self, private_seed: int) -> int:
        """The pool seed selected by one player's private randomness."""
        index = random.Random(private_seed).randrange(self.size)
        return self.seeds[index]


def build_pool(k: int, gamma: float = 0.1, delta_prime: float = 0.05,
               master_seed: int = 0) -> NewmanPool:
    """Draw the seed pool (a design-time, input-independent step)."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    size = pool_size(gamma, delta_prime)
    rng = random.Random(master_seed)
    return NewmanPool(
        seeds=tuple(rng.randrange(2 ** 62) for _ in range(size)),
        k=k,
    )


def estimate_pool_error(pool: NewmanPool, run: ProtocolRun,
                        inputs: Sequence[object]) -> float:
    """Worst-case (over the given inputs) average error over the pool.

    Newman's theorem promises this exceeds the true public-coin error by
    at most γ with probability 1-δ' over the pool draw; tests check it on
    real protocols and input families.
    """
    if not inputs:
        raise ValueError("need at least one input to evaluate")
    worst = 0.0
    for instance in inputs:
        errors = sum(
            0 if run(instance, seed) else 1 for seed in pool.seeds
        )
        worst = max(worst, errors / pool.size)
    return worst

"""The streaming <-> one-way reductions of Section 4.2.2 ([4], executable).

**Streaming → one-way.**  Partition the stream among the players in order;
each player runs the streaming algorithm over its own segment, then
forwards the serialized state (charged at its bit size) to the next; the
last player finishes the pass and outputs.  A space-s algorithm yields a
chain protocol with s bits per hop, so the protocol's cost per hop
lower-bounds streaming space: CC ≥ (hops) · space means
space ≥ CC / hops.

Each player's segment is fed to the algorithm as *row batches* straight
from the partition's cached adjacency rows
(:meth:`~repro.graphs.partition.EdgePartition.adjacency_rows`): one
``process_row`` call per base vertex instead of one ``process`` call per
edge, which is the mask-kernel fast path for algorithms that implement
the row form natively (both triangle finders do).  The batched stream is
the per-edge stream in ascending canonical order, so transcripts and
outputs are identical to the per-edge feed, which survives behind
``row_batched=False`` as the reference path.

**One-way lower bound → streaming lower bound.**  Contrapositive of the
above — the paper's Ω(n^{1/4}) one-way bound for triangle-edge detection on
µ becomes an Ω(n^{1/4}) space bound for single-pass streaming on the same
distribution.  :func:`space_lower_bound_from_oneway` states the transfer.
"""

from __future__ import annotations

from typing import Callable

from repro.comm.oneway import OneWayRun, run_oneway_chain
from repro.comm.players import Player, make_players
from repro.graphs.partition import EdgePartition
from repro.streaming.stream import StreamingAlgorithm, canonical_row_batches

__all__ = [
    "streaming_to_oneway",
    "space_lower_bound_from_oneway",
    "oneway_cost_of_streaming",
]


def streaming_to_oneway(
    partition: EdgePartition,
    algorithm_factory: Callable[[], StreamingAlgorithm],
    *,
    row_batched: bool = True,
) -> OneWayRun:
    """Run a streaming algorithm as a one-way chain protocol.

    Player j streams its own edges (ascending canonical order) through
    the algorithm, starting from the forwarded state; the serialized
    state is the message.  The final player's result is the output.
    ``row_batched=False`` feeds the identical stream through per-edge
    ``process`` calls — the pre-mask reference path, kept for
    differential tests and benchmarks.
    """
    players = make_players(partition)
    if len(players) < 2:
        raise ValueError("the chain reduction needs at least two players")

    def resume_and_stream(player: Player, state) -> StreamingAlgorithm:
        algorithm = algorithm_factory()
        if state is not None:
            algorithm.import_state(state["state"])
        if row_batched:
            for v, partners in canonical_row_batches(player.adjacency_rows()):
                algorithm.process_row(v, partners)
        else:
            for edge in player.sorted_edges():
                algorithm.process(edge)
        return algorithm

    def step(player: Player, state, _shared):
        algorithm = resume_and_stream(player, state)
        return {
            "state": algorithm.export_state(),
            "bits": algorithm.state_bits(),
        }

    def state_bits(state) -> int:
        return max(1, state["bits"])

    def finalize(player: Player, state, _shared):
        return resume_and_stream(player, state).result()

    return run_oneway_chain(
        players,
        initial_state=None,
        step=step,
        state_bits=state_bits,
        finalize=finalize,
    )


def oneway_cost_of_streaming(partition: EdgePartition,
                             algorithm_factory: Callable[[], StreamingAlgorithm]
                             ) -> int:
    """Total chain-protocol bits of the reduction (= Σ per-hop state)."""
    return streaming_to_oneway(partition, algorithm_factory).total_bits


def space_lower_bound_from_oneway(oneway_bits_lower_bound: float,
                                  hops: int = 2) -> float:
    """Space >= CC / hops: the lower-bound transfer.

    The 3-player chain has two hops; the paper's Ω(n^{1/4}) one-way bound
    therefore yields Ω(n^{1/4}) streaming space (constants absorbed).
    """
    if hops < 1:
        raise ValueError(f"hops must be positive, got {hops}")
    if oneway_bits_lower_bound < 0:
        raise ValueError(
            "a communication lower bound cannot be negative, got "
            f"{oneway_bits_lower_bound}"
        )
    return oneway_bits_lower_bound / hops

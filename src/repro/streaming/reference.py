"""Reference per-edge streaming chain, kept for differential testing.

The pre-mask (PR 3-era) streaming → one-way pipeline, preserved as an
executable specification in the same pattern as
:class:`repro.comm.reference.SetPlayer`:

* :class:`CountingExactFinderReference` — the original exact finder with
  a ``set[Edge]`` edge store and a per-edge ``{"edges": [...]}``
  serialized state;
* :func:`streaming_to_oneway_reference` — the original chain reduction,
  feeding each player's segment through per-edge ``process`` calls with
  the step/finalize loop duplicated as it historically was.

The mask pipeline forwards states as upper-bit rows, so transcript
*payloads* differ in shape; the differential tests therefore compare
outputs, per-hop charged bits, and the edge sets decoded from each
state.  ``benchmarks/bench_mask_migration.py`` measures whole chain
trials against this baseline.

Nothing in the production code imports this module.
"""

from __future__ import annotations

from typing import Callable

from repro.comm.encoding import edge_bits
from repro.comm.oneway import OneWayRun, run_oneway_chain
from repro.comm.players import Player, make_players
from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.partition import EdgePartition
from repro.streaming.stream import StreamingAlgorithm

__all__ = [
    "CountingExactFinderReference",
    "streaming_to_oneway_reference",
    "state_edges",
]


class CountingExactFinderReference(StreamingAlgorithm):
    """The original exact finder: ``set[Edge]`` store, per-edge state."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._edges: set[Edge] = set()
        self._adjacency: dict[int, int] = {}
        self._found: tuple[int, int, int] | None = None

    def process(self, edge: Edge) -> None:
        edge = canonical_edge(*edge)
        u, v = edge
        if self._found is None:
            common = self._adjacency.get(u, 0) & self._adjacency.get(v, 0)
            if common:
                low = common & -common
                a, b, c = sorted((u, v, low.bit_length() - 1))
                self._found = (a, b, c)
        self._edges.add(edge)
        self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)

    def state_bits(self) -> int:
        return max(1, len(self._edges) * edge_bits(self.n))

    def result(self) -> tuple[int, int, int] | None:
        return self._found

    def export_state(self) -> dict:
        return {"edges": sorted(self._edges), "found": self._found}

    def import_state(self, state: dict) -> None:
        self._edges = set()
        self._adjacency = {}
        self._found = state["found"]
        for edge in state["edges"]:
            self._edges.add(edge)
            u, v = edge
            self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
            self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)


def streaming_to_oneway_reference(
    partition: EdgePartition,
    algorithm_factory: Callable[[], StreamingAlgorithm],
) -> OneWayRun:
    """The original per-edge chain reduction (duplicated loop and all)."""
    players = make_players(partition)
    if len(players) < 2:
        raise ValueError("the chain reduction needs at least two players")

    def step(player: Player, state, _shared):
        algorithm = algorithm_factory()
        if state is not None:
            algorithm.import_state(state["state"])
        for edge in player.sorted_edges():
            algorithm.process(edge)
        return {
            "state": algorithm.export_state(),
            "bits": algorithm.state_bits(),
        }

    def state_bits(state) -> int:
        return max(1, state["bits"])

    def finalize(player: Player, state, _shared):
        algorithm = algorithm_factory()
        if state is not None:
            algorithm.import_state(state["state"])
        for edge in player.sorted_edges():
            algorithm.process(edge)
        return algorithm.result()

    return run_oneway_chain(
        players,
        initial_state=None,
        step=step,
        state_bits=state_bits,
        finalize=finalize,
    )


def state_edges(state: dict) -> list[Edge]:
    """Decode a forwarded chain state to its edge list (either format)."""
    inner = state["state"]
    if "edges" in inner:
        return sorted(inner["edges"])
    edges: list[Edge] = []
    for u in sorted(inner["rows"]):
        rest = inner["rows"][u]
        while rest:
            low = rest & -rest
            rest ^= low
            edges.append((u, low.bit_length() - 1))
    return edges

"""Sampling-based streaming triangle-edge detection.

A concrete :class:`~repro.streaming.stream.StreamingAlgorithm` in the
spirit of the sampling schemes the paper cites ([27], Kallaugher–Price):
keep a uniform reservoir of edges; every arriving edge is checked against
all vee-shaped pairs it forms with reservoir edges — if the closing pair is
already stored (or the arrival closes a stored vee), a triangle edge has
been found.  Space is Θ(reservoir · log n) bits; detection probability
grows with the reservoir, which is exactly the space/success trade-off the
Ω(n^{1/4}) lower bound constrains on µ-distributed inputs.

Both finders index their stored edges as per-vertex bitmasks (the same
kernel representation as :class:`~repro.graphs.graph.Graph`), so the
per-arrival closure check is a single ``&`` of two ints.
"""

from __future__ import annotations

import random

from repro.comm.encoding import edge_bits
from repro.graphs.graph import Edge, canonical_edge
from repro.streaming.stream import StreamingAlgorithm

__all__ = ["ReservoirTriangleFinder", "CountingExactFinder"]


class ReservoirTriangleFinder(StreamingAlgorithm):
    """Reservoir-sampled triangle-edge finder.

    Parameters
    ----------
    n:
        Vertex-universe size (for bit accounting).
    reservoir_size:
        Number of edges kept; space is ``reservoir_size * 2 log n`` bits
        plus the O(log n) bits of the found-edge register.
    seed:
        Reservoir-sampling randomness.
    """

    def __init__(self, n: int, reservoir_size: int, seed: int = 0) -> None:
        if reservoir_size < 2:
            raise ValueError(
                f"reservoir must hold at least 2 edges, got {reservoir_size}"
            )
        self.n = n
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: list[Edge] = []
        self._seen = 0
        self._found: tuple[int, int, int] | None = None
        self._adjacency: dict[int, int] = {}

    def process(self, edge: Edge) -> None:
        edge = canonical_edge(*edge)
        self._seen += 1
        if self._found is None:
            self._check_closure(edge)
        # Classic reservoir update.
        if len(self._reservoir) < self.reservoir_size:
            self._insert(edge)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self.reservoir_size:
                self._evict(self._reservoir[slot])
                self._reservoir[slot] = edge
                self._index(edge)
                return
        return

    def _check_closure(self, edge: Edge) -> None:
        """Does ``edge`` close a vee whose two arms are in the reservoir?"""
        u, v = edge
        common = self._adjacency.get(u, 0) & self._adjacency.get(v, 0)
        if common:
            low = common & -common
            a, b, c = sorted((u, v, low.bit_length() - 1))
            self._found = (a, b, c)

    def _insert(self, edge: Edge) -> None:
        self._reservoir.append(edge)
        self._index(edge)

    def _index(self, edge: Edge) -> None:
        u, v = edge
        self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)

    def _evict(self, edge: Edge) -> None:
        u, v = edge
        self._adjacency[u] = self._adjacency.get(u, 0) & ~(1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) & ~(1 << u)

    def state_bits(self) -> int:
        stored = len(self._reservoir) * edge_bits(self.n)
        register = edge_bits(self.n) if self._found else 1
        return stored + register

    def result(self) -> tuple[int, int, int] | None:
        """A triangle whose three edges appeared in the stream, or None."""
        return self._found

    def export_state(self) -> dict:
        return {
            "reservoir": list(self._reservoir),
            "seen": self._seen,
            "found": self._found,
        }

    def import_state(self, state: dict) -> None:
        self._reservoir = list(state["reservoir"])
        self._seen = state["seen"]
        self._found = state["found"]
        self._adjacency = {}
        for edge in self._reservoir:
            self._index(edge)


class CountingExactFinder(StreamingAlgorithm):
    """Exact finder storing the whole graph — the Θ(m log n) space ceiling.

    The contrast baseline: exact detection needs essentially the whole
    stream in memory, which the testing relaxation escapes.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._edges: set[Edge] = set()
        self._adjacency: dict[int, int] = {}
        self._found: tuple[int, int, int] | None = None

    def process(self, edge: Edge) -> None:
        edge = canonical_edge(*edge)
        u, v = edge
        if self._found is None:
            common = self._adjacency.get(u, 0) & self._adjacency.get(v, 0)
            if common:
                low = common & -common
                a, b, c = sorted((u, v, low.bit_length() - 1))
                self._found = (a, b, c)
        self._edges.add(edge)
        self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)

    def state_bits(self) -> int:
        return max(1, len(self._edges) * edge_bits(self.n))

    def result(self) -> tuple[int, int, int] | None:
        return self._found

    def export_state(self) -> dict:
        return {"edges": sorted(self._edges), "found": self._found}

    def import_state(self, state: dict) -> None:
        self._edges = set()
        self._adjacency = {}
        self._found = state["found"]
        for edge in state["edges"]:
            self._edges.add(edge)
            u, v = edge
            self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
            self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)

"""Sampling-based streaming triangle-edge detection.

A concrete :class:`~repro.streaming.stream.StreamingAlgorithm` in the
spirit of the sampling schemes the paper cites ([27], Kallaugher–Price):
keep a uniform reservoir of edges; every arriving edge is checked against
all vee-shaped pairs it forms with reservoir edges — if the closing pair is
already stored (or the arrival closes a stored vee), a triangle edge has
been found.  Space is Θ(reservoir · log n) bits; detection probability
grows with the reservoir, which is exactly the space/success trade-off the
Ω(n^{1/4}) lower bound constrains on µ-distributed inputs.

Both finders index their stored edges as per-vertex bitmasks (the same
kernel representation as :class:`~repro.graphs.graph.Graph`), so the
per-arrival closure check is a single ``&`` of two ints.
"""

from __future__ import annotations

import random

from repro.comm.encoding import edge_bits
from repro.graphs.graph import Edge, canonical_edge, iter_bits
from repro.streaming.stream import StreamingAlgorithm

__all__ = ["ReservoirTriangleFinder", "CountingExactFinder"]


class ReservoirTriangleFinder(StreamingAlgorithm):
    """Reservoir-sampled triangle-edge finder.

    Parameters
    ----------
    n:
        Vertex-universe size (for bit accounting).
    reservoir_size:
        Number of edges kept; space is ``reservoir_size * 2 log n`` bits
        plus the O(log n) bits of the found-edge register.
    seed:
        Reservoir-sampling randomness.
    """

    def __init__(self, n: int, reservoir_size: int, seed: int = 0) -> None:
        if reservoir_size < 2:
            raise ValueError(
                f"reservoir must hold at least 2 edges, got {reservoir_size}"
            )
        self.n = n
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: list[Edge] = []
        self._seen = 0
        self._found: tuple[int, int, int] | None = None
        self._adjacency: dict[int, int] = {}

    def process(self, edge: Edge) -> None:
        edge = canonical_edge(*edge)
        self._seen += 1
        if self._found is None:
            self._check_closure(edge)
        # Classic reservoir update.
        if len(self._reservoir) < self.reservoir_size:
            self._insert(edge)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self.reservoir_size:
                self._evict(self._reservoir[slot])
                self._reservoir[slot] = edge
                self._index(edge)
                return
        return

    def process_row(self, v: int, partners_mask: int) -> None:
        """Row-native form: canonical batches skip per-edge normalization.

        Reservoir sampling is inherently per-edge (one RNG draw per
        element keeps the sample uniform), so the batch is unrolled
        in-place — but the caller's canonical-order guarantee removes
        the ``canonical_edge`` normalization and dispatch per edge, and
        the closure probe reads the adjacency dict once per partner.
        The RNG draw sequence is identical to the per-edge stream.
        """
        adjacency = self._adjacency
        rng = self._rng
        reservoir = self._reservoir
        size = self.reservoir_size
        row_v = adjacency.get(v, 0)
        remaining = partners_mask
        while remaining:
            lowbit = remaining & -remaining
            remaining ^= lowbit
            u = lowbit.bit_length() - 1
            edge = (v, u)
            self._seen += 1
            if self._found is None:
                common = row_v & adjacency.get(u, 0)
                if common:
                    low = common & -common
                    a, b, c = sorted((v, u, low.bit_length() - 1))
                    self._found = (a, b, c)
            if len(reservoir) < size:
                self._insert(edge)
                row_v = adjacency.get(v, 0)
            else:
                slot = rng.randrange(self._seen)
                if slot < size:
                    self._evict(reservoir[slot])
                    reservoir[slot] = edge
                    self._index(edge)
                    # The eviction may have touched v's row.
                    row_v = adjacency.get(v, 0)

    def _check_closure(self, edge: Edge) -> None:
        """Does ``edge`` close a vee whose two arms are in the reservoir?"""
        u, v = edge
        common = self._adjacency.get(u, 0) & self._adjacency.get(v, 0)
        if common:
            low = common & -common
            a, b, c = sorted((u, v, low.bit_length() - 1))
            self._found = (a, b, c)

    def _insert(self, edge: Edge) -> None:
        self._reservoir.append(edge)
        self._index(edge)

    def _index(self, edge: Edge) -> None:
        u, v = edge
        self._adjacency[u] = self._adjacency.get(u, 0) | (1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) | (1 << u)

    def _evict(self, edge: Edge) -> None:
        u, v = edge
        self._adjacency[u] = self._adjacency.get(u, 0) & ~(1 << v)
        self._adjacency[v] = self._adjacency.get(v, 0) & ~(1 << u)

    def state_bits(self) -> int:
        stored = len(self._reservoir) * edge_bits(self.n)
        register = edge_bits(self.n) if self._found else 1
        return stored + register

    def result(self) -> tuple[int, int, int] | None:
        """A triangle whose three edges appeared in the stream, or None."""
        return self._found

    def export_state(self) -> dict:
        return {
            "reservoir": list(self._reservoir),
            "seen": self._seen,
            "found": self._found,
        }

    def import_state(self, state: dict) -> None:
        self._reservoir = list(state["reservoir"])
        self._seen = state["seen"]
        self._found = state["found"]
        self._adjacency = {}
        for edge in self._reservoir:
            self._index(edge)


class CountingExactFinder(StreamingAlgorithm):
    """Exact finder storing the whole graph — the Θ(m log n) space ceiling.

    The contrast baseline: exact detection needs essentially the whole
    stream in memory, which the testing relaxation escapes.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._num_edges = 0
        self._adjacency: dict[int, int] = {}
        self._found: tuple[int, int, int] | None = None

    def process(self, edge: Edge) -> None:
        u, v = canonical_edge(*edge)
        adjacency = self._adjacency
        row_u = adjacency.get(u, 0)
        if self._found is None:
            common = row_u & adjacency.get(v, 0)
            if common:
                low = common & -common
                a, b, c = sorted((u, v, low.bit_length() - 1))
                self._found = (a, b, c)
        if not row_u >> v & 1:
            self._num_edges += 1
            adjacency[u] = row_u | (1 << v)
            adjacency[v] = adjacency.get(v, 0) | (1 << u)

    def process_row(self, v: int, partners_mask: int) -> None:
        """Row-native form: one closure probe per partner, bulk insert.

        Per-edge semantics feed each edge ``(v, u_i)`` a closure check
        against the adjacency *after* the batch's earlier inserts; since
        those inserts only grow ``v``'s own row (by ``u_1 .. u_{i-1}``)
        and set bit ``v`` in rows the checks never read, an accumulator
        mask replays them exactly — and the whole batch then lands as
        one word-wide row update instead of 2·|batch| dict writes.

        Once a triangle is found the mirror bits (bit ``v`` of each
        partner's row) are dead state: closure probes are the only
        reader of a row's below-diagonal bits, dedup tests and
        ``export_state`` read lower-endpoint rows only, and ``_found``
        is monotone.  The post-find fast path therefore commits a whole
        batch as a single row update — the regime a far-instance stream
        spends almost the entire pass in.
        """
        adjacency = self._adjacency
        row_v = adjacency.get(v, 0)
        if self._found is None:
            acc = row_v
            remaining = partners_mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                u = low.bit_length() - 1
                common = acc & adjacency.get(u, 0)
                if common:
                    apex = common & -common
                    a, b, c = sorted((v, u, apex.bit_length() - 1))
                    self._found = (a, b, c)
                    break
                acc |= low
        new = partners_mask & ~row_v
        if new:
            self._num_edges += new.bit_count()
            adjacency[v] = row_v | new
            if self._found is None:
                bit_v = 1 << v
                for u in iter_bits(new):
                    adjacency[u] = adjacency.get(u, 0) | bit_v

    def state_bits(self) -> int:
        return max(1, self._num_edges * edge_bits(self.n))

    def result(self) -> tuple[int, int, int] | None:
        return self._found

    def export_state(self) -> dict:
        """Serialize as upper-bit rows keyed by lower endpoint, sorted.

        One mask per inhabited vertex instead of one tuple per edge:
        the edge set an O(m)-space algorithm forwards across a hop is
        exactly its canonical lower-endpoint rows, so serialization is
        two word-wide ops per vertex.  Both feed paths (edge and row)
        export identical states — mirror bits are masked out here, so
        the post-find mirror-skipping fast path is invisible.
        """
        rows = {}
        for u in sorted(self._adjacency):
            upper = (self._adjacency[u] >> (u + 1)) << (u + 1)
            if upper:
                rows[u] = upper
        return {"rows": rows, "found": self._found}

    def import_state(self, state: dict) -> None:
        self._found = state["found"]
        adjacency: dict[int, int] = {}
        num_edges = 0
        if "rows" in state:
            items = state["rows"].items()
        else:  # per-edge form (hand-built states in older callers)
            legacy: dict[int, int] = {}
            for u, v in state["edges"]:
                if v < u:
                    u, v = v, u
                legacy[u] = legacy.get(u, 0) | (1 << v)
            items = legacy.items()
        for u, row in items:
            adjacency[u] = adjacency.get(u, 0) | row
            num_edges += row.bit_count()
        if self._found is None:
            # Mirror bits feed the closure probes; once a triangle is
            # found they are dead state and the rebuild is skipped.
            for u, row in list(adjacency.items()):
                bit_u = 1 << u
                rest = (row >> (u + 1)) << (u + 1)
                while rest:
                    low = rest & -rest
                    rest ^= low
                    v = low.bit_length() - 1
                    adjacency[v] = adjacency.get(v, 0) | bit_u
        self._adjacency = adjacency
        self._num_edges = num_edges

"""Data-stream substrate and the Section 4.2.2 reductions."""

from repro.streaming.reduction import (
    oneway_cost_of_streaming,
    space_lower_bound_from_oneway,
    streaming_to_oneway,
)
from repro.streaming.stream import (
    StreamingAlgorithm,
    StreamRun,
    canonical_row_batches,
    run_stream,
    run_stream_rows,
)
from repro.streaming.triangle_stream import (
    CountingExactFinder,
    ReservoirTriangleFinder,
)

__all__ = [
    "StreamingAlgorithm",
    "StreamRun",
    "run_stream",
    "run_stream_rows",
    "canonical_row_batches",
    "ReservoirTriangleFinder",
    "CountingExactFinder",
    "streaming_to_oneway",
    "oneway_cost_of_streaming",
    "space_lower_bound_from_oneway",
]

"""Single-pass edge-stream runtime with peak-space accounting.

Section 4.2.2 transfers the one-way communication lower bound to the
data-stream model: a space-s single-pass algorithm yields a one-way
protocol forwarding s bits per hop, so Ω(n^{1/4}) one-way communication
implies Ω(n^{1/4}) streaming space for triangle-edge detection on µ.

This module provides the stream model itself: an algorithm processes edges
one at a time, may be asked to serialize its state (whose size in bits is
the charged quantity), and answers at the end.  The runtime tracks the peak
state size across the pass — the streaming space complexity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.graphs.graph import Edge, iter_bits

__all__ = [
    "StreamingAlgorithm",
    "StreamRun",
    "run_stream",
    "run_stream_rows",
    "canonical_row_batches",
]


class StreamingAlgorithm(ABC):
    """A single-pass algorithm over an edge stream.

    Subclasses maintain internal state, must report its size honestly via
    :meth:`state_bits`, and may expose a serializable state for the
    streaming -> one-way reduction via :meth:`export_state` /
    :meth:`import_state`.

    The stream may be fed edge-at-a-time (:meth:`process`) or as
    *row batches* (:meth:`process_row`): one base vertex plus the mask of
    its canonical partners.  The row form is the mask-kernel fast path —
    a batch is one adjacency-row word, so algorithms that index their
    state as per-vertex masks consume it with word-wide ``&``/``|``
    instead of per-edge Python work.  The default implementation falls
    back to :meth:`process`, so row batching is always semantically the
    per-edge stream in ascending canonical order.
    """

    @abstractmethod
    def process(self, edge: Edge) -> None:
        """Consume one stream element."""

    def process_row(self, v: int, partners_mask: int) -> None:
        """Consume the batch of edges ``{v, u}`` for every ``u`` in the mask.

        The caller guarantees every bit of ``partners_mask`` is ``> v``
        (canonical row batching), so the batch equals the edges
        ``(v, u)`` in ascending canonical order.  Override for a
        mask-native implementation; the fallback feeds :meth:`process`
        edge by edge and is bit-identical to the per-edge stream.
        """
        for u in iter_bits(partners_mask):
            self.process((v, u))

    @abstractmethod
    def state_bits(self) -> int:
        """Current memory footprint in bits (the charged quantity)."""

    @abstractmethod
    def result(self):
        """The algorithm's answer after the pass."""

    def export_state(self):
        """Serializable state for the one-way reduction (override)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state export"
        )

    def import_state(self, state) -> None:
        """Restore from an exported state (override)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state import"
        )


@dataclass(frozen=True)
class StreamRun:
    """Outcome of one streaming pass."""

    result: object
    peak_space_bits: int
    elements_processed: int


def run_stream(algorithm: StreamingAlgorithm,
               stream: Iterable[Edge] | Sequence[Edge]) -> StreamRun:
    """Drive one pass, tracking peak state size after every element."""
    peak = algorithm.state_bits()
    count = 0
    for edge in stream:
        algorithm.process(edge)
        count += 1
        peak = max(peak, algorithm.state_bits())
    return StreamRun(
        result=algorithm.result(),
        peak_space_bits=peak,
        elements_processed=count,
    )


def canonical_row_batches(rows: Sequence[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(v, partners_mask)`` row batches covering each edge once.

    ``rows`` are symmetric per-vertex adjacency masks (the kernel
    representation of :meth:`~repro.graphs.graph.Graph.adjacency_rows`
    and :meth:`~repro.graphs.partition.EdgePartition.adjacency_rows`);
    each edge is emitted exactly once, at its lower endpoint, so the
    concatenated batches equal the ascending canonical edge stream.
    Empty rows are skipped.
    """
    for v, row in enumerate(rows):
        upper = (row >> (v + 1)) << (v + 1)
        if upper:
            yield (v, upper)


def run_stream_rows(algorithm: StreamingAlgorithm,
                    rows: Sequence[int]) -> StreamRun:
    """Drive one pass over canonical row batches, peak tracked per batch.

    Peak space is sampled after every *batch* rather than every element;
    for algorithms whose :meth:`~StreamingAlgorithm.state_bits` is
    non-decreasing within a batch (both triangle finders) this equals the
    per-element peak.  Use :func:`run_stream` when per-element accounting
    must be exact for a non-monotone algorithm.
    """
    peak = algorithm.state_bits()
    count = 0
    for v, partners in canonical_row_batches(rows):
        algorithm.process_row(v, partners)
        count += partners.bit_count()
        peak = max(peak, algorithm.state_bits())
    return StreamRun(
        result=algorithm.result(),
        peak_space_bits=peak,
        elements_processed=count,
    )

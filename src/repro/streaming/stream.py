"""Single-pass edge-stream runtime with peak-space accounting.

Section 4.2.2 transfers the one-way communication lower bound to the
data-stream model: a space-s single-pass algorithm yields a one-way
protocol forwarding s bits per hop, so Ω(n^{1/4}) one-way communication
implies Ω(n^{1/4}) streaming space for triangle-edge detection on µ.

This module provides the stream model itself: an algorithm processes edges
one at a time, may be asked to serialize its state (whose size in bits is
the charged quantity), and answers at the end.  The runtime tracks the peak
state size across the pass — the streaming space complexity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graphs.graph import Edge

__all__ = ["StreamingAlgorithm", "StreamRun", "run_stream"]


class StreamingAlgorithm(ABC):
    """A single-pass algorithm over an edge stream.

    Subclasses maintain internal state, must report its size honestly via
    :meth:`state_bits`, and may expose a serializable state for the
    streaming -> one-way reduction via :meth:`export_state` /
    :meth:`import_state`.
    """

    @abstractmethod
    def process(self, edge: Edge) -> None:
        """Consume one stream element."""

    @abstractmethod
    def state_bits(self) -> int:
        """Current memory footprint in bits (the charged quantity)."""

    @abstractmethod
    def result(self):
        """The algorithm's answer after the pass."""

    def export_state(self):
        """Serializable state for the one-way reduction (override)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state export"
        )

    def import_state(self, state) -> None:
        """Restore from an exported state (override)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state import"
        )


@dataclass(frozen=True)
class StreamRun:
    """Outcome of one streaming pass."""

    result: object
    peak_space_bits: int
    elements_processed: int


def run_stream(algorithm: StreamingAlgorithm,
               stream: Iterable[Edge] | Sequence[Edge]) -> StreamRun:
    """Drive one pass, tracking peak state size after every element."""
    peak = algorithm.state_bits()
    count = 0
    for edge in stream:
        algorithm.process(edge)
        count += 1
        peak = max(peak, algorithm.state_bits())
    return StreamRun(
        result=algorithm.result(),
        peak_space_bits=peak,
        elements_processed=count,
    )

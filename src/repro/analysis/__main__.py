"""Command-line Table 1 regeneration: ``python -m repro.analysis``.

Options:
  --full       run the larger sweeps (slower, tighter fits)
  --seed N     base seed (default 0)
  --row ID     run a single row by id (e.g. T1-R2a, X-1, L4.5)
  --workers N  process-pool width for sweeps (0 = all cores; default:
               the REPRO_WORKERS env var, else serial)
  --backend B  graph kernel backend (bigint, packed, csr, auto); sets
               REPRO_GRAPH_BACKEND for this run — records are
               byte-identical across backends on pinned seeds
  --journal-dir DIR  durably journal every sweep's completed trials to
               per-sweep JSONL files under DIR (crash-safe)
  --resume     with --journal-dir: skip trials already journaled by a
               previous (possibly interrupted) run — records are
               byte-identical to an uninterrupted run
  --trace-dir DIR  record a structured span/event trace of the whole
               run to DIR/trace.jsonl (fork workers add sibling files);
               render it with `python -m repro.obs summarize DIR`
  --metrics-out FILE  write the run's merged metrics registry (counters,
               gauges, timing histograms) to FILE as JSON

Tracing and metrics never touch any RNG: the emitted tables are
byte-identical with or without them.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path

from repro.analysis import table1
from repro.analysis.table1 import generate_table1
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.runtime import resolve_workers

ROWS_BY_ID = {
    "T1-R1": table1.row_unrestricted_upper,
    "T1-R2A": table1.row_sim_low_upper,
    "T1-R2B": table1.row_sim_high_upper,
    "T1-R2C": table1.row_oblivious,
    "X-1": table1.row_exact_baseline,
    "X-2": table1.row_subgraph_patterns,
    "T1-R3": table1.row_oneway_streaming_lower,
    "T1-R4": table1.row_sim_covered_lower,
    "T1-R5": table1.row_symmetrization,
    "T1-R6": table1.row_bm_lower,
    "L4.5": table1.row_mu_farness,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's Table 1 as measured quantities.",
    )
    parser.add_argument("--full", action="store_true",
                        help="larger sweeps (slower, tighter fits)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--row", type=str, default=None,
                        help="run one row by id, e.g. "
                             + ", ".join(ROWS_BY_ID))
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for sweeps "
                             "(0 = all cores; default REPRO_WORKERS)")
    parser.add_argument("--backend", type=str, default=None,
                        choices=("bigint", "packed", "csr", "auto"),
                        help="graph kernel backend "
                             "(sets REPRO_GRAPH_BACKEND for this run)")
    parser.add_argument("--journal-dir", type=str, default=None,
                        help="journal completed trials to per-sweep JSONL "
                             "files under this directory (crash-safe)")
    parser.add_argument("--resume", action="store_true",
                        help="with --journal-dir: skip trials already "
                             "journaled by a previous run")
    parser.add_argument("--trace-dir", type=str, default=None,
                        help="record a span/event trace of the run to "
                             "DIR/trace.jsonl (see python -m repro.obs)")
    parser.add_argument("--metrics-out", type=str, default=None,
                        help="write the run's merged metrics registry "
                             "to this file as JSON")
    args = parser.parse_args(argv)

    if args.resume and args.journal_dir is None:
        print("error: --resume requires --journal-dir", file=sys.stderr)
        return 2

    if args.backend is not None:
        # Environment, not a threaded argument: sweeps re-resolve the
        # backend inside worker processes from REPRO_GRAPH_BACKEND.
        os.environ["REPRO_GRAPH_BACKEND"] = args.backend

    try:  # surface a bad --workers/REPRO_WORKERS before any sweep runs
        resolve_workers(args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    row_fn = None
    if args.row is not None:
        row_fn = ROWS_BY_ID.get(args.row.upper())
        if row_fn is None:
            print(f"unknown row id {args.row!r}; known: "
                  + ", ".join(ROWS_BY_ID), file=sys.stderr)
            return 2

    quick = not args.full
    # Observability is installed process-globally around the whole run:
    # every sweep inside it (any row, any layer) lands in one trace and
    # one registry without threading arguments through the row functions.
    registry = MetricsRegistry() if args.metrics_out is not None else None
    recorder = None
    if args.trace_dir is not None:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        recorder = TraceRecorder(trace_dir / "trace.jsonl")
    with contextlib.ExitStack() as stack:
        if recorder is not None:
            stack.callback(recorder.close)
            stack.enter_context(obs_trace.use_recorder(recorder))
        if registry is not None:
            stack.enter_context(obs_metrics.use_metrics(registry))
        with obs_trace.span("table1", row=args.row, quick=quick,
                            seed=args.seed):
            if row_fn is None:
                print(generate_table1(quick=quick, seed=args.seed,
                                      workers=args.workers,
                                      journal_dir=args.journal_dir,
                                      resume=args.resume))
            else:
                print(row_fn(quick=quick, seed=args.seed,
                             workers=args.workers,
                             journal_dir=args.journal_dir,
                             resume=args.resume).formatted())
        if registry is not None:
            obs_trace.event("metrics", snapshot=registry.snapshot())
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(registry.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Markdown report writer: run every Table 1 row, write the results file.

``write_report(path)`` executes the full experiment suite and renders a
self-contained markdown report (claim vs measured per row, with notes and
environment stamps) — the programmatic counterpart of EXPERIMENTS.md, so a
user can regenerate the evidence on their machine with one call:

    python -c "from repro.analysis.report import write_report; \
               write_report('my_run.md')"
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

from repro.analysis.table1 import ALL_ROWS, RowReport
from repro.runtime import shared_cache

__all__ = ["build_report", "write_report"]


def _render_row(report: RowReport) -> str:
    claimed = "—" if report.claimed is None else f"{report.claimed:.3f}"
    return (
        f"| {report.row_id} | {report.description} | {report.paper_bound} "
        f"| {report.metric} | {claimed} | {report.measured:.3f} "
        f"| {report.note} |"
    )


def build_report(quick: bool = True, seed: int = 0,
                 workers: int | None = None) -> str:
    """Run all rows and render the markdown report text.

    ``workers`` fans the sweep-backed rows out over a process pool (see
    :mod:`repro.runtime`); one instance cache is shared across rows,
    with a temporary disk tier in parallel mode so forked workers can
    reuse instances earlier rows generated.
    """
    started = time.time()
    rows: list[tuple[RowReport, float]] = []
    with shared_cache(workers) as cache:
        for row_fn in ALL_ROWS:
            t0 = time.time()
            rows.append((
                row_fn(quick=quick, seed=seed, workers=workers, cache=cache),
                time.time() - t0,
            ))
    total = time.time() - started
    lines = [
        "# Table 1 reproduction report",
        "",
        f"- mode: {'quick' if quick else 'full'}, seed {seed}, "
        f"workers {workers if workers is not None else 'serial/env'}",
        f"- python {sys.version.split()[0]} on {platform.platform()}",
        f"- total runtime: {total:.1f}s",
        "",
        "| row | experiment | paper bound | metric | claimed | measured "
        "| notes |",
        "|---|---|---|---|---|---|---|",
    ]
    lines.extend(_render_row(report) for report, _ in rows)
    lines.extend([
        "",
        "## Runtimes",
        "",
        "| row | seconds |",
        "|---|---|",
    ])
    lines.extend(
        f"| {report.row_id} | {elapsed:.1f} |" for report, elapsed in rows
    )
    lines.append("")
    return "\n".join(lines)


def write_report(path: str | Path, quick: bool = True, seed: int = 0,
                 workers: int | None = None) -> Path:
    """Run the suite and write the report; returns the written path."""
    target = Path(path)
    target.write_text(build_report(quick=quick, seed=seed, workers=workers))
    return target

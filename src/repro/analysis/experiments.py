"""Sweep runner: execute protocols over (n, d, k) grids and collect costs.

Each sweep point runs a protocol on freshly generated epsilon-far instances
over several seeds and records median communication and detection rate.
The records feed :mod:`repro.analysis.scaling` fits and the Table 1 harness.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.results import DetectionResult
from repro.graphs.generators import far_instance
from repro.graphs.partition import EdgePartition, partition_disjoint

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "default_instance"]

ProtocolFn = Callable[[EdgePartition, int], DetectionResult]
InstanceFn = Callable[[int, float, int], EdgePartition]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated measurements."""

    n: int
    d: float
    k: int
    median_bits: float
    mean_bits: float
    detection_rate: float
    trials: int


@dataclass
class SweepResult:
    """All points of one sweep, with fit-ready accessors."""

    points: list[SweepPoint] = field(default_factory=list)

    def xs(self, key: str) -> list[float]:
        if key == "n":
            return [p.n for p in self.points]
        if key == "d":
            return [p.d for p in self.points]
        if key == "k":
            return [p.k for p in self.points]
        if key == "nd":
            return [p.n * p.d for p in self.points]
        raise ValueError(f"unknown sweep axis {key!r}")

    def bits(self) -> list[float]:
        return [p.median_bits for p in self.points]

    def detection_rates(self) -> list[float]:
        return [p.detection_rate for p in self.points]


def default_instance(epsilon: float = 0.2,
                     k: int = 3) -> InstanceFn:
    """Planted epsilon-far instances, disjointly partitioned among k."""

    def build(n: int, d: float, seed: int) -> EdgePartition:
        instance = far_instance(n=n, d=d, epsilon=epsilon, seed=seed)
        return partition_disjoint(instance.graph, k=k, seed=seed + 1)

    return build


def run_sweep(protocol: ProtocolFn, instance_fn: InstanceFn,
              grid: Sequence[tuple[int, float, int]],
              trials: int = 3, seed: int = 0) -> SweepResult:
    """Run ``protocol`` at every (n, d, k) grid point, ``trials`` seeds each.

    ``instance_fn(n, d, seed)`` must honour k itself (close over it); the
    k recorded in the point is taken from the produced partition.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    result = SweepResult()
    for index, (n, d, k) in enumerate(grid):
        costs: list[float] = []
        detections = 0
        for trial in range(trials):
            point_seed = seed + 104_729 * index + trial
            partition = instance_fn(n, d, point_seed)
            outcome = protocol(partition, point_seed)
            costs.append(float(outcome.total_bits))
            if outcome.found:
                detections += 1
        result.points.append(
            SweepPoint(
                n=n,
                d=d,
                k=k,
                median_bits=statistics.median(costs),
                mean_bits=statistics.fmean(costs),
                detection_rate=detections / trials,
                trials=trials,
            )
        )
    return result

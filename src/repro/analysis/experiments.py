"""Sweep runner: execute protocols over (n, d, k) grids and collect costs.

Each sweep point runs a protocol on freshly generated epsilon-far instances
over several derived seeds and records median communication and detection
rate.  The records feed :mod:`repro.analysis.scaling` fits and the Table 1
harness.

Execution is delegated to :mod:`repro.runtime`: the grid expands into
:class:`~repro.runtime.spec.TrialSpec`s with deterministic per-trial
seeds, an executor (serial, or a process pool selected by ``workers=`` /
the ``REPRO_WORKERS`` env var) runs them, and the per-trial
:class:`~repro.runtime.spec.TrialResult` records are aggregated into
:class:`SweepPoint`s.  Serial and parallel runs of the same sweep seed
produce identical records.
"""

from __future__ import annotations

import contextlib
import logging
import os
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.results import DetectionResult
from repro.graphs.generators import far_instance
from repro.graphs.partition import EdgePartition, partition_disjoint
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.runtime import (
    Executor,
    InstanceCache,
    TrialResult,
    build_specs,
    run_trials,
)

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "default_instance"]

_LOGGER = logging.getLogger(__name__)

ProtocolFn = Callable[[EdgePartition, int], DetectionResult]
InstanceFn = Callable[[int, float, int], EdgePartition]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated measurements.

    ``errors`` counts trials whose supervised execution exhausted every
    retry (``status != "ok"``); those records are excluded from the cost
    and detection aggregates, and the point's ``detection_rate``
    denominator shrinks accordingly.  Unsupervised sweeps always have
    ``errors == 0``.
    """

    n: int
    d: float
    k: int
    median_bits: float
    mean_bits: float
    detection_rate: float
    trials: int
    errors: int = 0


@dataclass
class SweepResult:
    """All points of one sweep, with fit-ready accessors.

    ``records`` keeps the raw per-trial results (spec order) so callers
    can aggregate custom metrics recorded through the runtime's
    ``metrics`` hook.
    """

    points: list[SweepPoint] = field(default_factory=list)
    records: list[TrialResult] = field(default_factory=list)

    def xs(self, key: str) -> list[float]:
        if key == "n":
            return [p.n for p in self.points]
        if key == "d":
            return [p.d for p in self.points]
        if key == "k":
            return [p.k for p in self.points]
        if key == "nd":
            return [p.n * p.d for p in self.points]
        raise ValueError(f"unknown sweep axis {key!r}")

    def bits(self) -> list[float]:
        return [p.median_bits for p in self.points]

    def detection_rates(self) -> list[float]:
        return [p.detection_rate for p in self.points]

    def point_records(self, point_index: int) -> list[TrialResult]:
        return [r for r in self.records if r.point_index == point_index]

    def point_extras(self, point_index: int, key: str) -> list:
        """The per-trial ``extras[key]`` values at one grid point."""
        return [r.extras[key] for r in self.point_records(point_index)]


@dataclass(frozen=True)
class DefaultInstanceBuilder:
    """Picklable ``(n, d, seed) -> EdgePartition`` builder.

    A dataclass rather than a closure so spawn-method process pools (no
    fork: Windows, macOS defaults, Python 3.14+) can ship it to workers.
    """

    epsilon: float
    k: int

    def __call__(self, n: int, d: float, seed: int) -> EdgePartition:
        instance = far_instance(n=n, d=d, epsilon=self.epsilon, seed=seed)
        return partition_disjoint(instance.graph, k=self.k, seed=seed + 1)


def default_instance(epsilon: float = 0.2,
                     k: int = 3) -> InstanceFn:
    """Planted epsilon-far instances, disjointly partitioned among k."""
    return DefaultInstanceBuilder(epsilon=epsilon, k=k)


def _aggregate(grid: Sequence[tuple[int, float, int]], trials: int,
               records: list[TrialResult]) -> SweepResult:
    result = SweepResult(records=records)
    for point_index, (n, d, k) in enumerate(grid):
        point = [r for r in records if r.point_index == point_index]
        ok = [r for r in point if r.ok]
        errors = len(point) - len(ok)
        # Failed trials carry placeholder measurements (bits=0.0,
        # found=False) and must not drag the aggregates; a point with
        # zero surviving trials reports NaN costs rather than lying.
        costs = [r.bits for r in ok] if ok else [float("nan")]
        detections = sum(1 for r in ok if r.found)
        result.points.append(
            SweepPoint(
                n=n,
                d=d,
                k=k,
                median_bits=statistics.median(costs),
                mean_bits=statistics.fmean(costs),
                detection_rate=detections / len(ok) if ok else 0.0,
                trials=trials,
                errors=errors,
            )
        )
    return result


def _resolve_trace(trace) -> tuple[obs_trace.TraceRecorder | None, bool]:
    """(recorder, owns_it) for the ``trace=`` argument.

    A recorder object is used as-is (the caller closes it); a path opens
    a fresh recorder for the duration of the sweep (a directory path
    gets a ``trace.jsonl`` inside it).
    """
    if trace is None:
        return None, False
    if isinstance(trace, obs_trace.TraceRecorder):
        return trace, False
    path = Path(trace)
    if path.is_dir():
        path = path / "trace.jsonl"
    return obs_trace.TraceRecorder(path), True


def run_sweep(protocol: ProtocolFn, instance_fn: InstanceFn,
              grid: Sequence[tuple[int, float, int]],
              trials: int = 3, seed: int = 0, *,
              workers: int | None = None,
              executor: Executor | None = None,
              cache: InstanceCache | None = None,
              instance_key: str | None = None,
              metrics=None,
              batch: bool = True,
              shared_instances: bool = False,
              retry=None,
              journal=None,
              resume: bool = False,
              fault_plan=None,
              trace: "obs_trace.TraceRecorder | str | os.PathLike | None" = None,
              profile: bool = False) -> SweepResult:
    """Run ``protocol`` at every (n, d, k) grid point, ``trials`` seeds each.

    ``instance_fn(n, d, seed)`` must honour k itself (close over it); the
    k recorded in the point is taken from the grid.

    Keyword knobs (all optional, defaults reproduce the serial harness):

    workers:
        Process-pool width; ``None`` defers to ``REPRO_WORKERS`` (unset
        means serial), ``0`` or negative means all cores.  Identical
        records either way — only wall-clock changes.
    executor:
        A pre-built :class:`~repro.runtime.executor.Executor`, overriding
        ``workers``.
    cache / instance_key:
        Share generated instances with other sweeps: pass the same
        :class:`~repro.runtime.cache.InstanceCache` and the same key to
        every sweep comparing protocols on the same construction.
    metrics:
        Two shapes, told apart by type.  A *callable*
        ``(spec, instance, outcome) -> dict`` is the per-trial hook:
        its result is recorded into
        ``SweepResult.records[...].extras``.  A
        :class:`~repro.obs.metrics.MetricsRegistry` instead installs
        that registry for the duration of the sweep — runtime counters,
        cache traffic, kernel selections, and timing histograms
        accumulate into it (merged across workers), and the records are
        untouched.
    trace:
        A :class:`~repro.obs.trace.TraceRecorder`, or a path one is
        opened at (and closed again) for the duration of the sweep.
        Structured span/event JSONL covering the whole run — feed the
        file to ``python -m repro.obs summarize``.  Zero RNG impact;
        records are byte-identical with tracing on or off.
    profile:
        ``True`` attaches a per-trial phase cost breakdown to
        ``records[...].extras["profile"]`` — opt-in because it changes
        the record (see :mod:`repro.obs.profile`).
    batch:
        ``True`` (default) runs each grid point as one batch — instances
        built once per batch, coins from one batched construction.
        ``False`` is the historical per-trial path, kept as the
        differential reference.  Records are identical either way.
    shared_instances:
        ``True`` runs all of a grid point's trials against *one*
        instance (fresh coins per trial) instead of a fresh instance per
        trial — a different, much cheaper experiment.  Off by default;
        records match earlier releases only when off.
    retry / journal / resume / fault_plan:
        The fault-tolerance seams, passed straight through to
        :func:`repro.runtime.executor.run_trials`: a
        :class:`~repro.runtime.executor.RetryPolicy` for error capture,
        timeouts and bounded retry; a
        :class:`~repro.runtime.journal.RunJournal` (or path) durably
        recording every completed trial; ``resume=True`` to skip specs
        the journal already holds (byte-identical records to an
        uninterrupted run); a
        :class:`~repro.runtime.faults.FaultPlan` for deterministic
        fault injection.  Any of them engages the supervised engine;
        all default off, leaving historical behaviour untouched.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    registry = metrics if isinstance(metrics, MetricsRegistry) else None
    hook = None if registry is not None else metrics
    recorder, owns_recorder = _resolve_trace(trace)
    with contextlib.ExitStack() as stack:
        if recorder is not None:
            if owns_recorder:
                stack.callback(recorder.close)
            stack.enter_context(obs_trace.use_recorder(recorder))
        if registry is not None:
            stack.enter_context(obs_metrics.use_metrics(registry))
        with obs_trace.span("sweep", points=len(grid), trials=trials,
                            seed=seed, batch=batch):
            specs = build_specs(grid, trials, seed,
                                shared_instances=shared_instances)
            records = run_trials(
                protocol, instance_fn, specs,
                workers=workers, executor=executor,
                cache=cache, instance_key=instance_key, metrics=hook,
                batch=batch,
                retry=retry, journal=journal, resume=resume,
                fault_plan=fault_plan, profile=profile,
            )
        if cache is not None:
            _LOGGER.debug(
                "run_sweep cache stats (instance_key=%r): %s",
                instance_key, cache.stats(),
            )
            active = obs_metrics.get_metrics()
            if active is not None:
                stats = cache.stats()
                active.gauge("cache.entries", stats["entries"])
                active.gauge("cache.instance_bytes", stats["instance_bytes"])
        # Stamp the merged registry into the trace so `summarize` can
        # report cache effectiveness and backend mix from one file.
        active = obs_metrics.get_metrics()
        if active is not None:
            obs_trace.event("metrics", snapshot=active.snapshot())
    failed = sum(1 for r in records if not r.ok)
    if failed:
        _LOGGER.warning(
            "run_sweep: %d of %d trials failed permanently and are "
            "excluded from aggregation (see SweepPoint.errors and the "
            "records' error fields)", failed, len(records),
        )
    return _aggregate(grid, trials, records)

"""Regenerate the paper's Table 1 as measured quantities.

The paper's only table summarizes asymptotic bounds per model and degree
regime.  Each ``row_*`` function here runs the corresponding experiment and
returns a :class:`RowReport` holding the paper's claim next to the measured
value:

* upper-bound rows measure communication over (n, d, k) sweeps and fit the
  scaling exponent (polylog factors stripped per the O~ in each bound);
* lower-bound rows execute the paper's constructions and report the
  quantity the construction certifies (farness probability, covered-edge
  growth, the symmetrization cost ratio, the BM dichotomy).

``generate_table1(quick=True)`` renders all rows as a text table; the
benchmark files call individual rows.  Upper-bound sweeps run the protocols
with scaled-down sample constants (identical functional forms — see
DESIGN.md) and, for the unrestricted protocol, on triangle-free
degree-spread controls, because a one-sided tester pays its worst-case
cost exactly when no triangle is ever found.

Every row accepts ``workers=`` (process-pool width for its sweeps,
``None`` defers to the ``REPRO_WORKERS`` env var) and ``cache=`` (a
shared :class:`~repro.runtime.cache.InstanceCache` so rows comparing
protocols on the same construction reuse instances).  Every trial loop
— the sweeps and the construction-shaped T1-R3 / T1-R6 loops alike —
runs on the runtime executor path, batched per grid point; rows whose
measurement has no trial axis accept both knobs for harness uniformity
and run serially.  Records are independent of ``workers``.

Rows additionally accept ``journal_dir=`` and ``resume=``: with a
journal directory every sweep durably records its completed trials to a
per-sweep JSONL file under it (one file per sweep, so protocols never
share a journal), and ``resume=True`` skips trials a previous —
possibly interrupted — run already recorded, yielding records
byte-identical to an uninterrupted run.  Rows without a trial axis
accept both for uniformity.
"""

from __future__ import annotations

import contextlib
import math
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, NamedTuple

from repro.analysis.experiments import run_sweep
from repro.analysis.scaling import fit_axis
from repro.runtime import InstanceCache, TrialSpec, run_trials, shared_cache
from repro.comm.simultaneous import SimultaneousRun, run_simultaneous
from repro.core.degree_approx import DegreeApproxParams
from repro.core.exact_baseline import exact_triangle_detection
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.subgraph_detection import (
    SubgraphParams,
    find_subgraph_simultaneous,
)
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
from repro.patterns.catalog import (
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    SubgraphPattern,
    path,
    star,
)
from repro.patterns.plant import planted_disjoint_subgraphs
from repro.comm.encoding import edge_bits
from repro.comm.players import make_players
from repro.graphs.generators import far_instance, triangle_free_degree_spread
from repro.graphs.partition import EdgePartition, partition_disjoint
from repro.lowerbounds.boolean_matching import (
    bm_product,
    reduction_graph,
    sample_bm_instance,
)
from repro.lowerbounds.covered import (
    analyze_player,
    covered_probability,
    truncation_message,
)
from repro.lowerbounds.distributions import (
    MuDistribution,
    estimate_far_probability,
)
from repro.lowerbounds.symmetrization import verify_cost_identity
from repro.graphs.triangles import (
    greedy_triangle_packing,
    is_triangle_free,
)
from repro.streaming.stream import run_stream
from repro.streaming.triangle_stream import ReservoirTriangleFinder

__all__ = [
    "RowReport",
    "tuned_unrestricted_params",
    "row_unrestricted_upper",
    "row_sim_low_upper",
    "row_sim_high_upper",
    "row_oblivious",
    "row_exact_baseline",
    "row_subgraph_patterns",
    "row_oneway_streaming_lower",
    "row_sim_covered_lower",
    "row_symmetrization",
    "row_bm_lower",
    "generate_table1",
    "ALL_ROWS",
]


@dataclass(frozen=True)
class RowReport:
    """One Table 1 row: the paper's claim next to the measurement."""

    row_id: str
    description: str
    paper_bound: str
    metric: str
    claimed: float | None
    measured: float
    note: str = ""

    def formatted(self) -> str:
        claimed = "-" if self.claimed is None else f"{self.claimed:.3f}"
        return (
            f"{self.row_id:<8} {self.description:<42} "
            f"{self.paper_bound:<22} {self.metric:<28} "
            f"claimed={claimed:<8} measured={self.measured:.3f}  {self.note}"
        )


# ----------------------------------------------------------------------
# Shared sweep configurations
# ----------------------------------------------------------------------

# Instance-cache keys: one per construction, shared by every row (and
# benchmark driver) measuring protocols on that construction, so a shared
# InstanceCache serves identical inputs to all of them.
FAR_DISJOINT_KEY = "far-eps0.2-disjoint"
TRIFREE_SPREAD_KEY = "trifree-spread-eps0.2-disjoint"


def _sweep_journal(journal_dir: str | Path | None,
                   filename: str) -> str | None:
    """The journal path for one sweep, or ``None`` when journaling is off.

    One file per sweep: journal keys encode only trial coordinates, not
    the protocol, so two sweeps sharing a file would serve each other's
    records.  Distinct filenames make that impossible by construction.
    """
    if journal_dir is None:
        return None
    return str(Path(journal_dir) / filename)


def far_disjoint_instance(epsilon: float, k: int):
    """The canonical Table 1 instance: epsilon-far graph, k-partitioned."""

    def build(n: int, d: float, seed: int) -> EdgePartition:
        built = far_instance(n, d, epsilon=epsilon, seed=seed)
        return partition_disjoint(built.graph, k=k, seed=seed + 1)

    return build


def tuned_unrestricted_params(k: int, d: float) -> UnrestrictedParams:
    """Scaled-down constants, identical functional forms (see DESIGN.md).

    The reproduction-scale tuning every unrestricted-protocol driver and
    the bench smoke harness share; public so external drivers need not
    reach into a private helper.
    """
    return UnrestrictedParams(
        epsilon=0.2,
        delta=0.2,
        known_average_degree=d,
        samples_per_bucket=2 * k,
        max_candidates=4,
        # Keep p in its sqrt(log n / d') regime at reproduction sizes:
        # with scale 1.0 the paper's constants saturate p at 1 until
        # d' ~ 1e5, which would flatten the (nd)^{1/4} shape into sqrt(nd).
        edge_probability_scale=0.01,
        degree_params=DegreeApproxParams(
            alpha=math.sqrt(3.0), tau=0.2, experiments_override=6
        ),
    )


def row_unrestricted_upper(quick: bool = True, seed: int = 0, *,
                           workers: int | None = None,
                           cache: InstanceCache | None = None,
                           journal_dir: str | Path | None = None,
                           resume: bool = False) -> RowReport:
    """T1-R1: unrestricted upper bound O~(k (nd)^{1/4} + k²).

    Measured on triangle-free degree-spread controls (worst-case path: the
    one-sided tester never exits early), exponent fit on nd after
    stripping the bound's polylog factor.
    """
    ns = (
        [2048, 4096, 8192, 16384]
        if quick
        else [2048, 4096, 8192, 16384, 32768]
    )
    d = 8.0
    k = 3
    epsilon = 0.2

    def instance(n: int, density: float, instance_seed: int) -> EdgePartition:
        max_degree = int(math.sqrt(n * density / epsilon))
        graph = triangle_free_degree_spread(
            n, density, max_degree, seed=instance_seed
        )
        return partition_disjoint(graph, k=k, seed=instance_seed + 1)

    def protocol(partition: EdgePartition, run_seed: int, *, shared=None):
        return find_triangle_unrestricted(
            partition, tuned_unrestricted_params(k, d), seed=run_seed,
            shared=shared,
        )

    sweep = run_sweep(
        protocol, instance, [(n, d, k) for n in ns],
        trials=3 if quick else 5, seed=seed,
        workers=workers, cache=cache, instance_key=TRIFREE_SPREAD_KEY,
        journal=_sweep_journal(journal_dir, "t1-r1.jsonl"), resume=resume,
    )
    # The dominant SampleEdges term carries one log n factor (edge ids)
    # times the sqrt(log n) inside p; strip one log before fitting.
    fit = fit_axis(sweep.xs("nd"), sweep.bits(), log_power=1.0)
    return RowReport(
        row_id="T1-R1",
        description="triangle-freeness, unrestricted, upper",
        paper_bound="O~(k(nd)^1/4 + k^2)",
        metric="exponent of bits vs nd",
        claimed=0.25,
        measured=fit.exponent,
        note=f"R²={fit.r_squared:.3f} on triangle-free worst-case controls",
    )


def row_sim_low_upper(quick: bool = True, seed: int = 0, *,
                      workers: int | None = None,
                      cache: InstanceCache | None = None,
                      journal_dir: str | Path | None = None,
                      resume: bool = False) -> RowReport:
    """T1-R2a: simultaneous, d = O(sqrt(n)): O~(k sqrt(n))."""
    ns = [600, 1200, 2400, 4800] if quick else [600, 1200, 2400, 4800, 9600]
    d = 6.0
    k = 3
    params = SimLowParams(epsilon=0.2, delta=0.2)

    sweep = run_sweep(
        lambda partition, s, shared=None: find_triangle_sim_low(
            partition, params, seed=s, shared=shared
        ),
        far_disjoint_instance(epsilon=0.2, k=k), [(n, d, k) for n in ns],
        trials=3, seed=seed,
        workers=workers, cache=cache, instance_key=FAR_DISJOINT_KEY,
        journal=_sweep_journal(journal_dir, "t1-r2a.jsonl"), resume=resume,
    )
    fit = fit_axis(sweep.xs("n"), sweep.bits(), log_power=1.0)
    detection = statistics.fmean(sweep.detection_rates())
    return RowReport(
        row_id="T1-R2a",
        description="triangle-freeness, simultaneous, d=O(sqrt n)",
        paper_bound="O~(k sqrt(n))",
        metric="exponent of bits vs n",
        claimed=0.5,
        measured=fit.exponent,
        note=f"R²={fit.r_squared:.3f}, detection={detection:.2f}",
    )


def row_sim_high_upper(quick: bool = True, seed: int = 0, *,
                       workers: int | None = None,
                       cache: InstanceCache | None = None,
                       journal_dir: str | Path | None = None,
                       resume: bool = False) -> RowReport:
    """T1-R2b: simultaneous, d = Ω(sqrt(n)): O~(k (nd)^{1/3})."""
    ns = [400, 900, 1600, 2500] if quick else [400, 900, 1600, 2500, 3600]
    k = 3
    params = SimHighParams(epsilon=0.2, delta=0.2, c=2.0)

    grid = [(n, math.sqrt(n), k) for n in ns]
    sweep = run_sweep(
        lambda partition, s, shared=None: find_triangle_sim_high(
            partition, params, seed=s, shared=shared
        ),
        far_disjoint_instance(epsilon=0.2, k=k), grid, trials=3, seed=seed,
        workers=workers, cache=cache, instance_key=FAR_DISJOINT_KEY,
        journal=_sweep_journal(journal_dir, "t1-r2b.jsonl"), resume=resume,
    )
    fit = fit_axis(sweep.xs("nd"), sweep.bits(), log_power=1.0)
    detection = statistics.fmean(sweep.detection_rates())
    return RowReport(
        row_id="T1-R2b",
        description="triangle-freeness, simultaneous, d=Omega(sqrt n)",
        paper_bound="O~(k (nd)^1/3)",
        metric="exponent of bits vs nd",
        claimed=1.0 / 3.0,
        measured=fit.exponent,
        note=f"R²={fit.r_squared:.3f}, detection={detection:.2f}",
    )


def row_oblivious(quick: bool = True, seed: int = 0, *,
                  workers: int | None = None,
                  cache: InstanceCache | None = None,
                  journal_dir: str | Path | None = None,
                  resume: bool = False) -> RowReport:
    """T1-R2c: degree-oblivious simultaneous within polylog of degree-aware.

    Both protocols run through the runtime on the *same* instances: the
    two sweeps share an instance key and cache, so the degree-aware
    sweep's generated inputs are served back to the oblivious sweep.
    """
    n = 1600 if quick else 4800
    d = 6.0
    k = 4
    trials = 3 if quick else 6
    grid = [(n, d, k)]
    instance = far_disjoint_instance(epsilon=0.2, k=k)
    with contextlib.ExitStack() as stack:
        if cache is None:  # standalone call: provision a mode-matched cache
            cache = stack.enter_context(shared_cache(workers))
        aware = run_sweep(
            lambda partition, s, shared=None: find_triangle_sim_low(
                partition, SimLowParams(epsilon=0.2, delta=0.2), seed=s,
                shared=shared,
            ),
            instance, grid, trials=trials, seed=seed,
            workers=workers, cache=cache, instance_key=FAR_DISJOINT_KEY,
            journal=_sweep_journal(journal_dir, "t1-r2c-aware.jsonl"),
            resume=resume,
        )
        oblivious = run_sweep(
            lambda partition, s, shared=None: find_triangle_sim_oblivious(
                partition, ObliviousParams(epsilon=0.2, delta=0.2), seed=s,
                shared=shared,
            ),
            instance, grid, trials=trials, seed=seed,
            workers=workers, cache=cache, instance_key=FAR_DISJOINT_KEY,
            journal=_sweep_journal(journal_dir, "t1-r2c-oblivious.jsonl"),
            resume=resume,
        )
    ratios = [
        o.bits / max(1, a.bits)
        for a, o in zip(aware.records, oblivious.records)
    ]
    polylog = math.log2(n) ** 2
    measured = statistics.fmean(ratios)
    return RowReport(
        row_id="T1-R2c",
        description="degree-oblivious simultaneous (Thm 3.32)",
        paper_bound="degree-aware x polylog",
        metric="bits ratio oblivious/aware",
        claimed=None,
        measured=measured,
        note=f"allowed polylog budget ~log²n = {polylog:.0f}",
    )


def row_exact_baseline(quick: bool = True, seed: int = 0, *,
                       workers: int | None = None,
                       cache: InstanceCache | None = None,
                       journal_dir: str | Path | None = None,
                       resume: bool = False) -> RowReport:
    """X-1: exact detection pays Θ(nd) — the [38] regime testing escapes.

    Same construction and instance key as the sim-low sweep: with a
    shared cache the baseline is measured on the very instances the
    tester ran on (where the grids coincide).
    """
    ns = [600, 1200, 2400, 4800]
    d = 6.0
    k = 3

    sweep = run_sweep(
        lambda partition, _s: exact_triangle_detection(partition),
        far_disjoint_instance(epsilon=0.2, k=k), [(n, d, k) for n in ns],
        trials=2, seed=seed,
        workers=workers, cache=cache, instance_key=FAR_DISJOINT_KEY,
        journal=_sweep_journal(journal_dir, "x1.jsonl"), resume=resume,
    )
    fit = fit_axis(sweep.xs("nd"), sweep.bits(), log_power=1.0)
    return RowReport(
        row_id="X-1",
        description="exact detection baseline ([38] regime)",
        paper_bound="Theta(k n d)",
        metric="exponent of bits vs nd",
        claimed=1.0,
        measured=fit.exponent,
        note=f"R²={fit.r_squared:.3f}",
    )


#: One instance-cache key prefix per planted pattern family (suffixed
#: with the pattern name), mirroring FAR_DISJOINT_KEY for the H sweeps.
PLANTED_PATTERN_KEY = "planted-H-disjoint"

#: The patterns the X-2 row sweeps: one representative per catalog
#: family beyond the triangle (cliques, even/odd cycles, paths, stars).
PATTERN_ROW_PATTERNS = (
    FOUR_CLIQUE, FOUR_CYCLE, FIVE_CYCLE, path(4), star(3),
)


@dataclass(frozen=True)
class PlantedPatternBuilder:
    """Picklable ``(n, d, seed) -> EdgePartition`` planted-H builder.

    A dataclass (like :class:`~repro.analysis.experiments.DefaultInstanceBuilder`)
    so spawn-method process pools can ship it to workers; ``d`` is the
    background degree the planted copies ride on.
    """

    pattern: SubgraphPattern
    k: int
    copies_per_8n: float = 0.15

    def __call__(self, n: int, d: float, seed: int) -> EdgePartition:
        copies = max(5, int(self.copies_per_8n * n / 8))
        instance = planted_disjoint_subgraphs(
            n, self.pattern, copies, seed=seed, background_degree=d
        )
        return partition_disjoint(instance.graph, k=self.k, seed=seed + 1)


@dataclass(frozen=True)
class PatternProtocol:
    """Picklable ``(partition, seed) -> SubgraphDetectionResult``.

    Declares the ``shared`` seam so the batched engine hands it the
    trial's pre-built coin stream (draw-identical to the stream it would
    otherwise derive from ``seed``).
    """

    pattern: SubgraphPattern
    params: SubgraphParams

    def __call__(self, partition: EdgePartition, seed: int, *, shared=None):
        return find_subgraph_simultaneous(
            partition, self.pattern, self.params, seed=seed, shared=shared
        )


def row_subgraph_patterns(quick: bool = True, seed: int = 0, *,
                          workers: int | None = None,
                          cache: InstanceCache | None = None,
                          journal_dir: str | Path | None = None,
                          resume: bool = False) -> RowReport:
    """X-2: the pattern engine's per-pattern H-freeness sweep.

    The H-diverse workload as a Table-1-style row: for every catalog
    representative the generalized induced-sample tester runs on planted
    ε-far instances through the PR 1 runtime (``workers=`` parallelizes
    the trials like every other row; one cache key per pattern family).
    The tester is one-sided, so detection rate on planted instances is
    the quantity repetition is supposed to drive to 1.
    """
    n = 900 if quick else 2400
    d = 4.0
    k = 3
    trials = 3 if quick else 6
    # c and rounds sized for the densest pattern: K4 needs all four
    # vertices of a copy sampled, so its per-round catch rate is the
    # sweep's weakest and sets the repetition budget.
    params = SubgraphParams(epsilon=0.15, c=1.6, rounds=4)
    rates: list[float] = []
    bits: list[float] = []
    for pattern in PATTERN_ROW_PATTERNS:
        sweep = run_sweep(
            PatternProtocol(pattern, params),
            PlantedPatternBuilder(pattern, k),
            [(n, d, k)], trials=trials, seed=seed,
            workers=workers, cache=cache,
            instance_key=f"{PLANTED_PATTERN_KEY}:{pattern.name}",
            journal=_sweep_journal(journal_dir, f"x2-{pattern.name}.jsonl"),
            resume=resume,
        )
        rates.append(sweep.points[0].detection_rate)
        bits.append(sweep.points[0].median_bits)
    return RowReport(
        row_id="X-2",
        description="H-freeness per-pattern sweep (pattern engine)",
        paper_bound="O~(k (nd)^{1-2/h})",
        metric="mean detection over patterns",
        claimed=1.0,
        measured=statistics.fmean(rates),
        note="; ".join(
            f"{pattern.name}:{rate:.2f}@{int(b)}b"
            for pattern, rate, b in zip(PATTERN_ROW_PATTERNS, rates, bits)
        ),
    )


#: Cache keys of the migrated lower-bound loops (T1-R3 / T1-R6) — one
#: per construction, like FAR_DISJOINT_KEY and friends above.
MU_STREAM_KEY = "mu-stream-gamma1.2"
BM_DICHOTOMY_KEY = "bm-dichotomy"


class _LoopOutcome(NamedTuple):
    """Minimal runtime outcome for construction-shaped rows.

    The lower-bound loops measure success rates, not communication, so
    ``total_bits`` is fixed at zero; the runtime only requires the two
    attributes to exist.
    """

    total_bits: float
    found: bool


def _loop_specs(trials: int, n: int, base_seed: int) -> list[TrialSpec]:
    """Specs reproducing a historical ``for trial in range(trials)`` loop.

    Seeds are ``base_seed + trial`` — exactly what the inline loops
    passed — rather than runtime-derived, so migrated rows stay
    byte-identical to their pre-runtime selves.
    """
    return [
        TrialSpec(point_index=0, trial_index=trial, n=n, d=0.0, k=1,
                  seed=base_seed + trial)
        for trial in range(trials)
    ]


@dataclass(frozen=True)
class _MuSampleBuilder:
    """Picklable ``(n, d, seed) -> µ sample`` builder for T1-R3."""

    part_size: int
    gamma: float = 1.2

    def __call__(self, n: int, d: float, seed: int):
        mu = MuDistribution(part_size=self.part_size, gamma=self.gamma)
        return mu.sample(seed=seed)


@dataclass(frozen=True)
class _ReservoirStreamProtocol:
    """Picklable reservoir-success check for one reservoir size.

    The finder seed of the historical loop was ``base_seed + 31·trial``;
    the trial index is recovered from the spec seed (specs carry
    ``base_seed + trial``), keeping the streams bit-identical.
    """

    reservoir_size: int
    base_seed: int

    def __call__(self, sample, seed: int) -> _LoopOutcome:
        if is_triangle_free(sample.graph):
            return _LoopOutcome(0.0, True)  # nothing to find: vacuous success
        trial = seed - self.base_seed
        finder = ReservoirTriangleFinder(
            sample.graph.n, reservoir_size=self.reservoir_size,
            seed=self.base_seed + 31 * trial,
        )
        run = run_stream(finder, sorted(sample.graph.edges()))
        return _LoopOutcome(0.0, run.result is not None)


def row_oneway_streaming_lower(quick: bool = True, seed: int = 0, *,
                               workers: int | None = None,
                               cache: InstanceCache | None = None,
                               journal_dir: str | Path | None = None,
                               resume: bool = False) -> RowReport:
    """T1-R3: one-way / streaming hardness evidence on µ.

    The trial loop runs on the runtime executor path (``workers=`` /
    ``REPRO_WORKERS`` and batching apply); µ samples are cached under
    ``MU_STREAM_KEY`` so the escalating reservoir sizes re-test the same
    samples without re-drawing them.

    The Ω((nd)^{1/6}) bound (Ω(n^{1/4}) at d = Θ(sqrt n)) cannot be
    measured directly; we run the reservoir streaming finder on µ samples
    and report the space (in edges) needed for >= 50% success, which
    should grow with n — while far below the trivial Θ(m).
    """
    trials = 10 if quick else 20
    reservoir_sizes = [2, 4, 8, 16, 32, 64, 128, 256]
    # A row-local cache still pays off (samples reused across reservoir
    # sizes) when the harness does not pass a shared one.
    sample_cache = cache if cache is not None else InstanceCache()

    def needed_space(part_size: int) -> int:
        mu = MuDistribution(part_size=part_size, gamma=1.2)
        builder = _MuSampleBuilder(part_size=part_size)
        specs = _loop_specs(trials, mu.n, seed)
        for size in reservoir_sizes:
            results = run_trials(
                _ReservoirStreamProtocol(size, seed), builder, specs,
                workers=workers, cache=sample_cache,
                instance_key=f"{MU_STREAM_KEY}:{part_size}",
                batch=True,
                journal=_sweep_journal(
                    journal_dir, f"t1-r3-part{part_size}-res{size}.jsonl"
                ),
                resume=resume,
            )
            successes = sum(1 for r in results if r.found)
            if successes / trials >= 0.5:
                return size
        return reservoir_sizes[-1]

    small_part, large_part = (24, 96) if quick else (36, 144)
    small_need = needed_space(small_part)
    large_need = needed_space(large_part)
    # The lower bound says space must grow at least like n^{1/4}; with a
    # 4x part-size increase that is a factor 4^{1/4} = sqrt(2).
    claimed_growth = 4.0 ** 0.25
    measured_growth = large_need / max(1, small_need)
    return RowReport(
        row_id="T1-R3",
        description="triangle-edge, ext. one-way / streaming, lower",
        paper_bound="Omega((nd)^1/6)",
        metric="space growth for n x4",
        claimed=claimed_growth,
        measured=measured_growth,
        note=(
            f"needed reservoir: {small_need} @ n={3 * small_part}, "
            f"{large_need} @ n={3 * large_part} "
            "(bound: growth >= n^1/4 factor)"
        ),
    )


def row_sim_covered_lower(quick: bool = True, seed: int = 0, *,
                          workers: int | None = None,
                          cache: InstanceCache | None = None,
                          journal_dir: str | Path | None = None,
                          resume: bool = False) -> RowReport:
    """T1-R4: covered-edge counts vs message budget (exact posteriors).

    Exact computation, no trials: ``workers``/``cache`` (and the journal
    knobs) accepted for harness uniformity only.

    The expected covered *mass* Σ Pr[Cov(e)] is budget-invariant (tower
    rule); what a bigger message buys is *certainty* — pairs whose
    posterior crosses the 9/10 threshold of Definition 11.  On a small µ
    universe we compute E[|C(t)|] exactly per budget: zero without
    communication, growing with the budget, which is the trade-off the
    Section 4.2.3 bound quantifies.
    """
    part = 2
    prior = 0.35
    u_part = list(range(part))
    alice_universe = [(u, v1) for u in u_part for v1 in range(part)]
    bob_universe = [(u, v2) for u in u_part for v2 in range(part)]
    budgets = [0, 1, 2, 4]
    expected_covered: list[float] = []
    for budget in budgets:
        alice = analyze_player(
            alice_universe, prior, truncation_message(budget)
        )
        bob = analyze_player(bob_universe, prior, truncation_message(budget))
        expectation = 0.0
        for m1, p1 in alice.message_probabilities.items():
            for m2, p2 in bob.message_probabilities.items():
                count = sum(
                    1
                    for v1 in range(part)
                    for v2 in range(part)
                    if covered_probability(
                        alice, bob, m1, m2, v1, v2, u_part
                    ) >= 0.9
                )
                expectation += p1 * p2 * count
        expected_covered.append(expectation)
    return RowReport(
        row_id="T1-R4",
        description="triangle-edge, simultaneous 3p, lower",
        paper_bound="Omega((nd)^1/3)",
        metric="E|C(t)| gain (budget 0->4)",
        claimed=None,
        measured=expected_covered[-1] - expected_covered[0],
        note=(
            "exact posteriors; E|C| per budget: "
            + ", ".join(f"{m:.3f}" for m in expected_covered)
        ),
    )


def _sketch_protocol(max_edges: int) -> Callable[[EdgePartition, int],
                                                 SimultaneousRun]:
    """A simple simultaneous protocol for the symmetrization identity."""

    def run(partition: EdgePartition, seed: int) -> SimultaneousRun:
        players = make_players(partition)
        n = partition.graph.n
        return run_simultaneous(
            players,
            message_fn=lambda p, _: p.sorted_edges()[:max_edges],
            message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
            referee_fn=lambda messages, _: None,
        )

    return run


def row_symmetrization(quick: bool = True, seed: int = 0, *,
                       workers: int | None = None,
                       cache: InstanceCache | None = None,
                       journal_dir: str | Path | None = None,
                       resume: bool = False) -> RowReport:
    """T1-R5: the Theorem 4.15 identity E|Pi'| = (2/k) CC(Pi).

    ``workers``/``cache`` (and the journal knobs) accepted for harness
    uniformity; the identity check runs serially inside
    :func:`verify_cost_identity`.
    """
    k = 6
    mu = MuDistribution(part_size=18, gamma=1.0)
    report = verify_cost_identity(
        mu, k, _sketch_protocol(max_edges=12),
        trials=30 if quick else 120, seed=seed,
    )
    return RowReport(
        row_id="T1-R5",
        description="triangle-edge, simultaneous k players, lower",
        paper_bound="Omega(k (nd)^1/6)",
        metric="special/total cost ratio",
        claimed=report.predicted_ratio,
        measured=report.measured_ratio,
        note=f"k={k}; identity lifts 3-player bounds by k/2",
    )


@dataclass(frozen=True)
class _BMPairBuilder:
    """Picklable ``(n, d, seed) -> BM zeros/ones reduction pair`` (T1-R6)."""

    def __call__(self, n: int, d: float, seed: int):
        zeros = sample_bm_instance(n, "zeros", seed=seed)
        ones = sample_bm_instance(n, "ones", seed=seed)
        graph_zeros, _, _ = reduction_graph(zeros)
        graph_ones, _, _ = reduction_graph(ones)
        return (n, zeros, graph_zeros, ones, graph_ones)


def _bm_dichotomy_protocol(instance, seed: int) -> _LoopOutcome:
    """Check the T1-R6 dichotomy on one prepared zeros/ones pair."""
    n, zeros, graph_zeros, ones, graph_ones = instance
    zero_ok = (
        all(bit == 0 for bit in bm_product(zeros))
        and len(greedy_triangle_packing(graph_zeros)) == n
    )
    one_ok = (
        all(bit == 1 for bit in bm_product(ones))
        and is_triangle_free(graph_ones)
    )
    return _LoopOutcome(0.0, zero_ok and one_ok)


def row_bm_lower(quick: bool = True, seed: int = 0, *,
                 workers: int | None = None,
                 cache: InstanceCache | None = None,
                 journal_dir: str | Path | None = None,
                 resume: bool = False) -> RowReport:
    """T1-R6: the BM reduction dichotomy behind the Omega(sqrt n) bound.

    The trial loop runs on the runtime executor path (``workers=`` /
    ``REPRO_WORKERS`` and batching apply); reduction pairs are cached
    under ``BM_DICHOTOMY_KEY``.
    """
    n = 24 if quick else 64
    trials = 10 if quick else 40
    results = run_trials(
        _bm_dichotomy_protocol, _BMPairBuilder(),
        _loop_specs(trials, n, seed),
        workers=workers, cache=cache, instance_key=BM_DICHOTOMY_KEY,
        batch=True,
        journal=_sweep_journal(journal_dir, "t1-r6.jsonl"), resume=resume,
    )
    verified = sum(1 for r in results if r.found)
    return RowReport(
        row_id="T1-R6",
        description="triangle-freeness, simultaneous, d=Theta(1), lower",
        paper_bound="Omega(sqrt(n))",
        metric="BM dichotomy verified rate",
        claimed=1.0,
        measured=verified / trials,
        note=f"n disjoint triangles vs triangle-free, n={n}",
    )


def row_mu_farness(quick: bool = True, seed: int = 0, *,
                   workers: int | None = None,
                   cache: InstanceCache | None = None,
                   journal_dir: str | Path | None = None,
                   resume: bool = False) -> RowReport:
    """Lemma 4.5 support: µ samples are far w.p. >= 1/2.

    ``workers``/``cache`` (and the journal knobs) accepted for harness
    uniformity; the estimate runs serially.
    """
    mu = MuDistribution(part_size=30 if quick else 60, gamma=1.2)
    probability = estimate_far_probability(
        mu, trials=10 if quick else 30, seed=seed
    )
    return RowReport(
        row_id="L4.5",
        description="mu is Omega(1)-far w.p. >= 1/2",
        paper_bound="Pr >= 1/2",
        metric="empirical far probability",
        claimed=0.5,
        measured=probability,
        note=f"gamma={mu.gamma}, n={mu.n}",
    )


ALL_ROWS = [
    row_unrestricted_upper,
    row_sim_low_upper,
    row_sim_high_upper,
    row_oblivious,
    row_exact_baseline,
    row_subgraph_patterns,
    row_oneway_streaming_lower,
    row_sim_covered_lower,
    row_symmetrization,
    row_bm_lower,
    row_mu_farness,
]


def generate_table1(quick: bool = True, seed: int = 0,
                    workers: int | None = None,
                    journal_dir: str | Path | None = None,
                    resume: bool = False) -> str:
    """Run every row and render the reproduction of Table 1.

    One cache is shared across rows, so rows measuring different
    protocols on the same construction (the far-disjoint family) reuse
    each other's generated instances; in parallel mode the cache gets a
    temporary disk tier, since instances built inside forked workers
    only cross process boundaries through disk.

    ``journal_dir`` makes every row's sweeps durably journal their
    completed trials (one JSONL file per sweep under the directory);
    ``resume=True`` then lets an interrupted table run pick up where it
    stopped, recomputing nothing that was already recorded.
    """
    lines = [
        "Table 1 reproduction — paper bound vs measured "
        f"({'quick' if quick else 'full'} mode)",
        "-" * 118,
    ]
    with shared_cache(workers) as cache:
        for row_fn in ALL_ROWS:
            lines.append(
                row_fn(quick=quick, seed=seed, workers=workers,
                       cache=cache, journal_dir=journal_dir,
                       resume=resume).formatted()
            )
    return "\n".join(lines)

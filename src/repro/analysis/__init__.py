"""Analysis harness: sweeps, exponent fits, Table 1 regeneration."""

from repro.analysis.experiments import (
    SweepPoint,
    SweepResult,
    default_instance,
    run_sweep,
)
from repro.analysis.scaling import PowerLawFit, fit_power_law, strip_polylog
from repro.analysis.table1 import ALL_ROWS, RowReport, generate_table1

__all__ = [
    "SweepPoint",
    "SweepResult",
    "default_instance",
    "run_sweep",
    "PowerLawFit",
    "fit_power_law",
    "strip_polylog",
    "ALL_ROWS",
    "RowReport",
    "generate_table1",
]

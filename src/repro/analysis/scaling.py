"""Scaling analysis: power-law exponent fits for communication costs.

The paper's Table 1 states asymptotic bounds; the reproduction measures
communication bits over sweeps of (n, d, k) and fits

    cost ≈ coefficient · x^exponent        (log-log least squares)

to compare the measured exponent against the claimed one.  Polylog factors
(the O~ in every bound) bias small-range fits upward, so
:func:`strip_polylog` divides them out before fitting when a bound's
polylog power is known.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "strip_polylog", "fit_axis"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of log(y) = exponent·log(x) + log(coefficient)."""

    exponent: float
    coefficient: float
    r_squared: float
    points: int

    def predicted(self, x: float) -> float:
        return self.coefficient * x ** self.exponent

    def matches(self, claimed_exponent: float, tolerance: float) -> bool:
        """Is the measured exponent within ±tolerance of the claim?"""
        return abs(self.exponent - claimed_exponent) <= tolerance

    def __str__(self) -> str:
        return (
            f"y ~ {self.coefficient:.3g} * x^{self.exponent:.3f} "
            f"(R²={self.r_squared:.3f}, {self.points} pts)"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit y = c·x^a by least squares in log-log space."""
    if len(xs) != len(ys):
        raise ValueError(
            f"length mismatch: {len(xs)} xs vs {len(ys)} ys"
        )
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits require positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, deg=1)
    predictions = slope * log_x + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
        points=len(xs),
    )


def strip_polylog(values: Sequence[float], sizes: Sequence[float],
                  log_power: float) -> list[float]:
    """Divide out a log^a factor before fitting: y / (log2 x)^a."""
    if len(values) != len(sizes):
        raise ValueError(
            f"length mismatch: {len(values)} values vs {len(sizes)} sizes"
        )
    stripped = []
    for value, size in zip(values, sizes):
        if size <= 1:
            raise ValueError(f"sizes must exceed 1, got {size}")
        stripped.append(value / math.log2(size) ** log_power)
    return stripped


def fit_axis(xs: Sequence[float], ys: Sequence[float],
             log_power: float = 0.0) -> PowerLawFit:
    """Strip a polylog factor (if any) and fit the power law in one step.

    The standard move of every upper-bound row: a bound O~(x^a) is
    checked by fitting ``y / log2(x)^log_power`` against x.
    ``log_power=0`` is a plain fit.
    """
    if log_power:
        ys = strip_polylog(ys, xs, log_power=log_power)
    return fit_power_law(xs, ys)

"""Deterministic per-trial seed derivation.

Every trial in a sweep gets its own child seed derived from the sweep
seed and the trial's coordinates ``(point_index, trial_index)``.  The
derivation is a keyed hash rather than arithmetic (the seed repo used
``seed + 104729 * index + trial``) so that

* distinct coordinates cannot collide for any sweep seed,
* the mapping is identical in every process — it depends only on the
  bytes hashed, never on ``PYTHONHASHSEED``, platform word size, or the
  interpreter — which is what lets serial and parallel executors produce
  byte-identical trial records, and
* independent sub-streams (e.g. instance generation vs. protocol coins)
  can be split off the same coordinates via the ``stream`` label.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "SEED_BITS"]

#: Child seeds are non-negative and fit in a signed 64-bit integer.
SEED_BITS = 63


def derive_seed(sweep_seed: int, point_index: int, trial_index: int,
                stream: str = "trial") -> int:
    """Stable ``(sweep_seed, point_index, trial_index) -> child seed``.

    The same inputs yield the same output in any process on any platform;
    different ``stream`` labels yield independent child seeds for the same
    coordinates.
    """
    payload = (
        f"{sweep_seed}|{point_index}|{trial_index}|{stream}".encode("ascii")
    )
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> (64 - SEED_BITS)

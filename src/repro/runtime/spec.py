"""Trial data model: what to run (`TrialSpec`) and what happened
(`TrialResult`).

Specs and results are plain frozen dataclasses of primitives so they
cross process boundaries cheaply — the heavyweight objects (graphs,
partitions, protocol closures) never travel; workers rebuild them from
the spec's seed.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Sequence

from repro.runtime.seeding import derive_seed

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialBatch",
    "build_specs",
    "batch_specs",
]


@dataclass(frozen=True)
class TrialSpec:
    """One trial to execute: a grid point, a trial index, a derived seed.

    ``seed`` drives both instance generation and protocol coins, exactly
    as the serial harness always did, so any two protocols given the same
    spec see the same input instance.

    ``instance_seed`` optionally decouples instance generation from the
    protocol coins: trials of a grid point built with
    ``build_specs(..., shared_instances=True)`` share one instance seed
    (so the batched engine builds the point's instance once) while each
    trial still draws fresh public coins from ``seed``.  ``None`` keeps
    the historical coupling.
    """

    point_index: int
    trial_index: int
    n: int
    d: float
    k: int
    seed: int
    instance_seed: int | None = None

    @property
    def effective_instance_seed(self) -> int:
        """The seed instance generation actually uses."""
        return self.seed if self.instance_seed is None else self.instance_seed


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome, echoing the spec coordinates it came from.

    ``extras`` holds optional per-trial metrics (picklable primitives
    only) recorded by a :class:`~repro.runtime.executor.TrialTask`
    metrics hook.

    ``status`` / ``error`` are the supervised executors' structured
    failure channel: ``"ok"`` (the only status the unsupervised paths
    ever produce) carries a real measurement, while ``"error"`` and
    ``"timeout"`` records stand in for trials whose every retry failed —
    the sweep survives and reports *what* failed instead of dying.
    Failed records carry ``bits=0.0`` / ``found=False`` placeholders and
    are excluded from sweep aggregation.
    """

    point_index: int
    trial_index: int
    n: int
    d: float
    k: int
    seed: int
    bits: float
    found: bool
    extras: dict = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # Byte-identity across process boundaries: default-valued
    # ``status``/``error`` are omitted from the pickled state (an ok
    # record pickles to exactly the bytes it did before these fields
    # existed), and a restored status is interned so every record —
    # serial, parallel, resumed — shares the one code-constant string
    # object.  Without this, each pipe crossing would mint a fresh
    # ``"ok"`` and the pickled bytes of a record *list* would depend on
    # which worker produced which record.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state["status"] == "ok":
            del state["status"]
        if state["error"] is None:
            del state["error"]
        return state

    def __setstate__(self, state: dict) -> None:
        # Intern the attribute names as well: the default (no
        # ``__setstate__``) unpickling path interns state-dict keys, and
        # re-pickling a record list leans on that sharing.
        clean = {sys.intern(key): value for key, value in state.items()}
        clean["status"] = sys.intern(clean.get("status", "ok"))
        clean.setdefault("error", None)
        self.__dict__.update(clean)

    @classmethod
    def from_outcome(cls, spec: TrialSpec, bits: float, found: bool,
                     extras: dict | None = None) -> "TrialResult":
        return cls(
            point_index=spec.point_index,
            trial_index=spec.trial_index,
            n=spec.n,
            d=spec.d,
            k=spec.k,
            seed=spec.seed,
            bits=float(bits),
            found=bool(found),
            extras=dict(extras) if extras else {},
        )

    @classmethod
    def from_error(cls, spec: TrialSpec, error: object,
                   status: str = "error") -> "TrialResult":
        """A structured failure record for ``spec``.

        ``error`` may be an exception or a pre-formatted string.  The
        text must be deterministic for a given failure (no timings, no
        attempt counters) so supervised serial and parallel runs surface
        byte-identical error records.
        """
        text = (
            error if isinstance(error, str)
            else f"{type(error).__name__}: {error}"
        )
        return cls(
            point_index=spec.point_index,
            trial_index=spec.trial_index,
            n=spec.n,
            d=spec.d,
            k=spec.k,
            seed=spec.seed,
            bits=0.0,
            found=False,
            extras={},
            status=status,
            error=text,
        )


@dataclass(frozen=True)
class TrialBatch:
    """All trials of one grid point — the batched engine's unit of work.

    Sharding stays by grid point: a parallel run hands whole batches to
    workers, so the per-batch instance reuse never crosses a process
    boundary and records stay byte-identical to per-trial execution.
    """

    point_index: int
    specs: tuple[TrialSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)


def build_specs(grid: Sequence[tuple[int, float, int]], trials: int,
                sweep_seed: int, *,
                shared_instances: bool = False) -> list[TrialSpec]:
    """Expand an (n, d, k) grid into one spec per (point, trial).

    Specs come out in deterministic row-major order — point major, trial
    minor — which is also the order executors return results in.

    ``shared_instances=True`` gives every trial of a grid point the same
    instance seed (derived from the point alone, on an independent
    ``"instance"`` stream) so the whole point runs against one instance;
    protocol coins stay per-trial.  The default keeps the historical
    fresh-instance-per-trial behaviour and produces specs identical to
    earlier releases.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    specs: list[TrialSpec] = []
    for point_index, (n, d, k) in enumerate(grid):
        instance_seed = (
            derive_seed(sweep_seed, point_index, 0, stream="instance")
            if shared_instances else None
        )
        for trial_index in range(trials):
            specs.append(
                TrialSpec(
                    point_index=point_index,
                    trial_index=trial_index,
                    n=n,
                    d=d,
                    k=k,
                    seed=derive_seed(sweep_seed, point_index, trial_index),
                    instance_seed=instance_seed,
                )
            )
    return specs


def batch_specs(specs: Sequence[TrialSpec]) -> list[TrialBatch]:
    """Group specs into per-grid-point batches, first-seen point order.

    Within a batch, specs keep their relative order, so flattening the
    batches of a point-major spec list reproduces the list exactly.
    """
    groups: dict[int, list[TrialSpec]] = {}
    for spec in specs:
        groups.setdefault(spec.point_index, []).append(spec)
    return [
        TrialBatch(point_index=point, specs=tuple(members))
        for point, members in groups.items()
    ]

"""Trial data model: what to run (`TrialSpec`) and what happened
(`TrialResult`).

Specs and results are plain frozen dataclasses of primitives so they
cross process boundaries cheaply — the heavyweight objects (graphs,
partitions, protocol closures) never travel; workers rebuild them from
the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.runtime.seeding import derive_seed

__all__ = ["TrialSpec", "TrialResult", "build_specs"]


@dataclass(frozen=True)
class TrialSpec:
    """One trial to execute: a grid point, a trial index, a derived seed.

    ``seed`` drives both instance generation and protocol coins, exactly
    as the serial harness always did, so any two protocols given the same
    spec see the same input instance.
    """

    point_index: int
    trial_index: int
    n: int
    d: float
    k: int
    seed: int


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome, echoing the spec coordinates it came from.

    ``extras`` holds optional per-trial metrics (picklable primitives
    only) recorded by a :class:`~repro.runtime.executor.TrialTask`
    metrics hook.
    """

    point_index: int
    trial_index: int
    n: int
    d: float
    k: int
    seed: int
    bits: float
    found: bool
    extras: dict = field(default_factory=dict)

    @classmethod
    def from_outcome(cls, spec: TrialSpec, bits: float, found: bool,
                     extras: dict | None = None) -> "TrialResult":
        return cls(
            point_index=spec.point_index,
            trial_index=spec.trial_index,
            n=spec.n,
            d=spec.d,
            k=spec.k,
            seed=spec.seed,
            bits=float(bits),
            found=bool(found),
            extras=dict(extras) if extras else {},
        )


def build_specs(grid: Sequence[tuple[int, float, int]], trials: int,
                sweep_seed: int) -> list[TrialSpec]:
    """Expand an (n, d, k) grid into one spec per (point, trial).

    Specs come out in deterministic row-major order — point major, trial
    minor — which is also the order executors return results in.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    specs: list[TrialSpec] = []
    for point_index, (n, d, k) in enumerate(grid):
        for trial_index in range(trials):
            specs.append(
                TrialSpec(
                    point_index=point_index,
                    trial_index=trial_index,
                    n=n,
                    d=d,
                    k=k,
                    seed=derive_seed(sweep_seed, point_index, trial_index),
                )
            )
    return specs

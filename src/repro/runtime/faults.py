"""Deterministic runtime fault injection for the supervised executors.

Every recovery path in :mod:`repro.runtime.executor` — error capture,
the timeout watchdog, retry-with-backoff, pool rebuild after a worker
death — needs to be exercised on demand in CI, not discovered in
production.  A :class:`FaultPlan` is the seam: a picklable, frozen
description of *which* trials fail, *how*, and for *how many attempts*,
threaded onto a :class:`~repro.runtime.executor.TrialTask` via its
``fault_plan=`` keyword and consulted only on the supervised execution
paths (``run_supervised`` / ``run_batch_supervised``).

Determinism comes from being attempt-indexed rather than stateful: a
fault fires iff the trial's coordinates match and the supervisor-passed
attempt number is below the fault's ``attempts`` budget.  No counters,
no clocks, no per-process state — the same plan produces the same
failure schedule in serial, fork, and spawn execution.

Fault kinds:

* ``"raise"`` — raise :class:`InjectedFault` inside the trial; the
  supervised task captures it as a ``status="error"`` result, which the
  supervisor retries with backoff.
* ``"hang"`` — sleep for ``hang_seconds``; the supervisor's wall-clock
  watchdog times the attempt out (and, in parallel mode, kills and
  rebuilds the pool, since a hung worker cannot be cancelled).
* ``"kill"`` — hard-exit the worker process (``os._exit``), the
  ``BrokenProcessPool`` scenario.  In-process execution (serial, or the
  degraded-to-serial path) downgrades it to ``"raise"`` — killing the
  driver would take the supervisor down with it, which is exactly what
  the fault exists to prove cannot happen to the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.runtime.spec import TrialSpec

__all__ = ["Fault", "FaultPlan", "InjectedFault"]


class InjectedFault(RuntimeError):
    """The exception a ``"raise"`` (or downgraded ``"kill"``) fault throws."""


_KINDS = ("raise", "hang", "kill")


@dataclass(frozen=True)
class Fault:
    """One failure rule: where it strikes, what it does, how long it lasts.

    ``point_index`` / ``trial_index`` of ``None`` are wildcards; a fault
    with both ``None`` strikes every trial.  ``attempts`` is the number
    of supervisor attempts the fault survives: the default ``1`` fails
    the first attempt and lets the retry succeed, ``attempts >=
    max_attempts`` makes the trial permanently fail (surfacing as a
    structured error result rather than a dead sweep).
    """

    kind: str
    point_index: int | None = None
    trial_index: int | None = None
    attempts: int = 1
    hang_seconds: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be positive, got {self.attempts}")
        if self.hang_seconds < 0:
            raise ValueError(
                f"hang_seconds must be non-negative, got {self.hang_seconds}"
            )

    def matches(self, spec: TrialSpec, attempt: int) -> bool:
        if attempt >= self.attempts:
            return False
        if self.point_index is not None and spec.point_index != self.point_index:
            return False
        if self.trial_index is not None and spec.trial_index != self.trial_index:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of injected failures.

    Applied by the supervised task immediately before a trial's real
    work; the first matching fault fires.  Plans are frozen dataclasses
    of primitives, so they ship to spawn workers exactly like the task
    that carries them.
    """

    faults: tuple[Fault, ...]

    def __init__(self, faults: tuple[Fault, ...] | list[Fault] = ()) -> None:
        object.__setattr__(self, "faults", tuple(faults))

    def apply(self, spec: TrialSpec, attempt: int) -> None:
        """Fire the first fault matching ``(spec, attempt)``, if any."""
        for fault in self.faults:
            if not fault.matches(spec, attempt):
                continue
            if fault.kind == "hang":
                time.sleep(fault.hang_seconds)
                return
            if fault.kind == "kill" and _in_worker_process():
                os._exit(86)
            raise InjectedFault(
                f"{fault.message} (kind={fault.kind}, "
                f"point={spec.point_index}, trial={spec.trial_index}, "
                f"attempt={attempt})"
            )

    def __bool__(self) -> bool:
        return bool(self.faults)


def _in_worker_process() -> bool:
    """True when running inside a multiprocessing child.

    ``os._exit`` in the driver process would kill the whole sweep —
    the one outcome the fault harness exists to rule out — so ``kill``
    faults only hard-exit genuine pool workers.
    """
    return multiprocessing.parent_process() is not None

"""Parallel experiment runtime.

The execution engine behind every sweep in :mod:`repro.analysis` and the
Table 1 benchmark drivers:

* :class:`TrialSpec` / :class:`TrialResult` — the picklable unit of work
  and its record (:mod:`repro.runtime.spec`);
* :func:`derive_seed` — stable ``(sweep_seed, point, trial) -> child
  seed`` so serial and parallel runs are record-identical
  (:mod:`repro.runtime.seeding`);
* :class:`InstanceCache` — memory/disk reuse of generated instances
  across the protocols compared at a grid point
  (:mod:`repro.runtime.cache`);
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  engines, chosen by ``workers=`` or the ``REPRO_WORKERS`` env var
  (:mod:`repro.runtime.executor`).
"""

from repro.runtime.cache import InstanceCache
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    TrialTask,
    default_executor,
    resolve_workers,
    run_trials,
    shared_cache,
)
from repro.runtime.seeding import derive_seed
from repro.runtime.spec import (
    TrialBatch,
    TrialResult,
    TrialSpec,
    batch_specs,
    build_specs,
)

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialBatch",
    "build_specs",
    "batch_specs",
    "derive_seed",
    "InstanceCache",
    "TrialTask",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
    "resolve_workers",
    "run_trials",
    "shared_cache",
]

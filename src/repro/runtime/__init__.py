"""Parallel experiment runtime.

The execution engine behind every sweep in :mod:`repro.analysis` and the
Table 1 benchmark drivers:

* :class:`TrialSpec` / :class:`TrialResult` — the picklable unit of work
  and its record (:mod:`repro.runtime.spec`);
* :func:`derive_seed` — stable ``(sweep_seed, point, trial) -> child
  seed`` so serial and parallel runs are record-identical
  (:mod:`repro.runtime.seeding`);
* :class:`InstanceCache` — memory/disk reuse of generated instances
  across the protocols compared at a grid point
  (:mod:`repro.runtime.cache`);
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  engines, chosen by ``workers=`` or the ``REPRO_WORKERS`` env var
  (:mod:`repro.runtime.executor`);
* :class:`RunJournal` — durable, checksummed record of completed trials
  for crash-safe resume (:mod:`repro.runtime.journal`);
* :class:`RetryPolicy` — error capture, per-trial timeouts, and bounded
  retry-with-backoff for the supervised execution paths
  (:mod:`repro.runtime.executor`);
* :class:`FaultPlan` — deterministic runtime fault injection, the seam
  every recovery path is tested through (:mod:`repro.runtime.faults`).
"""

from repro.runtime.cache import InstanceCache
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    TrialTask,
    TrialTimeout,
    default_executor,
    resolve_workers,
    run_trials,
    shared_cache,
)
from repro.runtime.faults import Fault, FaultPlan, InjectedFault
from repro.runtime.journal import JournalError, RunJournal, spec_key
from repro.runtime.seeding import derive_seed
from repro.runtime.spec import (
    TrialBatch,
    TrialResult,
    TrialSpec,
    batch_specs,
    build_specs,
)

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialBatch",
    "build_specs",
    "batch_specs",
    "derive_seed",
    "InstanceCache",
    "TrialTask",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
    "resolve_workers",
    "run_trials",
    "shared_cache",
    "RunJournal",
    "JournalError",
    "spec_key",
    "RetryPolicy",
    "TrialTimeout",
    "Fault",
    "FaultPlan",
    "InjectedFault",
]

"""Durable trial journal: crash-safe, resumable sweep records.

A :class:`RunJournal` is an append-only JSONL file holding one line per
completed :class:`~repro.runtime.spec.TrialResult`, keyed by the
canonical encoding of the trial's spec coordinates
(:func:`~repro.runtime.cache.canonical_key_bytes` — the same
process-independent encoding the disk instance cache keys on).  Each
line carries a blake2b checksum of its payload, and every append is
flushed and (by default) fsync'd before :meth:`record` returns, so a
sweep killed at any instant leaves a journal whose intact prefix is
exactly the set of trials that completed.

The recovery contract:

* a **truncated or corrupt tail** (the classic crash-mid-write artifact)
  is detected by the checksum, logged, and truncated away on open — the
  journal stays usable and only the torn record is re-run;
* **resuming** a sweep (``run_trials(..., journal=..., resume=True)``)
  skips every spec already present and replays its recorded result
  verbatim, so an interrupted-and-resumed sweep returns records
  byte-identical to an uninterrupted one (asserted in
  ``tests/test_fault_tolerance.py``);
* only ``status == "ok"`` results are journaled — failed trials are
  retried on resume rather than replayed.

Results must be JSON-faithful to be journaled: ints, floats, bools,
strings, None, and ``extras`` dicts of the same (no tuples — JSON
round-trips them as lists).  :meth:`record` verifies the round trip and
raises :class:`JournalError` on an unfaithful result rather than
silently journaling something that would not resume byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sys
from pathlib import Path
from typing import Iterator

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import canonical_key_bytes
from repro.runtime.spec import TrialResult, TrialSpec

__all__ = ["RunJournal", "JournalError", "spec_key"]

_LOGGER = logging.getLogger(__name__)

#: Format tag written in the header line; bump on incompatible changes.
_MAGIC = "repro-run-journal-v1"


class JournalError(RuntimeError):
    """A journal file cannot be used as asked (format, label, fidelity)."""


def spec_key(spec: TrialSpec) -> str:
    """The canonical journal key of one trial spec.

    Every coordinate that determines the trial's outcome participates —
    grid point, trial index, (n, d, k), the derived seed, and the
    instance seed — through the same canonical encoding the disk cache
    uses, so the key is identical in every process on every platform.
    """
    payload = canonical_key_bytes((
        "trial", spec.point_index, spec.trial_index,
        spec.n, spec.d, spec.k, spec.seed, spec.instance_seed,
    ))
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _result_to_json(result: TrialResult) -> dict:
    return {
        "point_index": result.point_index,
        "trial_index": result.trial_index,
        "n": result.n,
        "d": result.d,
        "k": result.k,
        "seed": result.seed,
        "bits": result.bits,
        "found": result.found,
        "extras": result.extras,
        "status": result.status,
        "error": result.error,
    }


def _result_from_json(payload: dict) -> TrialResult:
    # Interning restores the string-object sharing a live run has (the
    # ``"ok"`` status and extras keys are code constants shared across
    # every record), so a resumed record list pickles to the same bytes
    # as an uninterrupted one.
    extras = {sys.intern(key): value
              for key, value in payload["extras"].items()}
    return TrialResult(
        point_index=payload["point_index"],
        trial_index=payload["trial_index"],
        n=payload["n"],
        d=payload["d"],
        k=payload["k"],
        seed=payload["seed"],
        bits=payload["bits"],
        found=payload["found"],
        extras=extras,
        status=sys.intern(payload.get("status", "ok")),
        error=payload.get("error"),
    )


def _checksum(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


class RunJournal:
    """Append-only, checksummed JSONL record of completed trials.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) if missing; an
        existing file is validated and its records loaded.
    label:
        Optional free-form tag identifying *what* is being journaled
        (e.g. an instance key or row id).  Two sweeps running different
        protocols over the same grid produce identical spec keys, so
        journaling them into one file would silently serve one
        protocol's results to the other; a label mismatch on reopen
        raises :class:`JournalError` instead.
    fsync:
        ``True`` (default) fsyncs after every append — the crash-safe
        setting.  ``False`` trades durability of the last few records
        for throughput (the OS still sees every write immediately).
    """

    def __init__(self, path: str | Path, *, label: str | None = None,
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self.label = label
        self.fsync = fsync
        self._entries: dict[str, TrialResult] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._replay_existing()
        self._handle = self.path.open("a", encoding="utf-8")
        if self._needs_header:
            self._append_line(json.dumps(
                {"journal": _MAGIC, "label": self.label}, sort_keys=True
            ))

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------

    def _replay_existing(self) -> None:
        self._needs_header = True
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        valid_bytes = 0
        torn = False
        position = 0
        while position < len(raw):
            newline = raw.find(b"\n", position)
            line = raw[position:] if newline < 0 else raw[position:newline]
            entry = self._parse_line(line) if line else ("blank", "", None)
            if entry is None or newline < 0:
                # Corrupt record, or a final line missing its newline (a
                # crash mid-append; keeping it would corrupt the next
                # append by concatenation).  Either way: torn tail.
                torn = True
                break
            position = valid_bytes = newline + 1
            kind, key, result = entry
            if kind == "record":
                self._entries[key] = result
        if torn:
            _LOGGER.warning(
                "journal %s: corrupt or torn record after byte %d "
                "(%d intact records); truncating the damaged tail",
                self.path, valid_bytes, len(self._entries),
            )
            obs_trace.event("journal.truncated", path=str(self.path),
                            valid_bytes=valid_bytes,
                            intact=len(self._entries))
            obs_metrics.inc("journal.truncations")
            with self.path.open("r+b") as handle:
                handle.truncate(valid_bytes)
        if self._entries:
            obs_metrics.inc("journal.loaded", len(self._entries))

    def _parse_line(self, line: bytes):
        try:
            entry = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        if "journal" in entry:
            if entry.get("journal") != _MAGIC:
                raise JournalError(
                    f"{self.path} is not a {_MAGIC} file "
                    f"(header says {entry.get('journal')!r})"
                )
            if self.label is not None and entry.get("label") != self.label:
                raise JournalError(
                    f"journal {self.path} was written for label "
                    f"{entry.get('label')!r}, not {self.label!r}; refusing "
                    "to mix records from different runs in one file"
                )
            if self.label is None:
                self.label = entry.get("label")
            self._needs_header = False
            return ("header", "", None)
        key = entry.get("key")
        payload = entry.get("result")
        checksum = entry.get("checksum")
        if not isinstance(key, str) or not isinstance(payload, dict):
            return None
        body = json.dumps(payload, sort_keys=True)
        if checksum != _checksum(key + body):
            return None
        try:
            result = _result_from_json(payload)
        except (KeyError, TypeError):
            return None
        return ("record", key, result)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append_line(self, text: str) -> None:
        self._handle.write(text + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def record(self, spec: TrialSpec, result: TrialResult) -> None:
        """Durably append one completed result, keyed by its spec.

        Idempotent: re-recording a spec already in the journal is a
        no-op (retries and resumed sweeps recompute deterministic
        results, so the stored record is already correct).  Only
        ``status == "ok"`` results are persisted — errors are transient
        by policy and must be retried on resume.
        """
        if result.status != "ok":
            return
        key = spec_key(spec)
        if key in self._entries:
            return
        payload = _result_to_json(result)
        body = json.dumps(payload, sort_keys=True)
        if _result_from_json(json.loads(body)) != result:
            raise JournalError(
                "result does not survive the JSON round trip (journaled "
                "sweeps need JSON-faithful extras: ints/floats/bools/"
                f"strings/None, no tuples): {result!r}"
            )
        with obs_metrics.timer("journal.append_seconds"):
            self._append_line(json.dumps(
                {"key": key, "result": payload,
                 "checksum": _checksum(key + body)},
                sort_keys=True,
            ))
        obs_metrics.inc("journal.appends")
        self._entries[key] = result

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, spec: TrialSpec) -> TrialResult | None:
        """The recorded result for ``spec``, or ``None`` if not journaled."""
        return self._entries.get(spec_key(spec))

    def __contains__(self, spec: TrialSpec) -> bool:
        return spec_key(spec) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def results(self) -> Iterator[TrialResult]:
        """All journaled results, in append order."""
        return iter(self._entries.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RunJournal({str(self.path)!r}, label={self.label!r}, "
            f"records={len(self._entries)})"
        )

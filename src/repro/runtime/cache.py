"""Instance cache: reuse generated inputs across protocols.

Table 1 compares several protocols at the same grid points, and instance
generation (planted epsilon-far graphs plus partitioning) is a large
fraction of sweep wall-time.  The cache memoises built instances under a
key that identifies the *construction*, never the protocol:

    (instance_key, n, d, k, seed)

so two sweeps that pass the same ``instance_key`` and share a grid point
and sweep seed get the very same instance — the second protocol pays
nothing for generation and, just as importantly, is measured on
identical inputs.

Two tiers:

* **memory** — an LRU dict, per process.  Serial sweeps that share a
  cache object hit it directly.  Forked workers inherit a snapshot of it
  (copy-on-write) but their own additions die with them.
* **disk** — optional pickle files under ``disk_dir``, shared by every
  process that points at the directory; this is what lets parallel
  workers of a *later* sweep reuse instances a *previous* sweep built.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["InstanceCache", "canonical_key_bytes", "instance_nbytes"]

_LOGGER = logging.getLogger(__name__)

#: Recursion cap for :func:`instance_nbytes` — instances are shallow
#: (partition -> graph, tuples of results), deep cycles are not.
_NBYTES_MAX_DEPTH = 4


def instance_nbytes(value: Any, _depth: int = 0) -> int:
    """Best-effort adjacency bytes held by a cached instance.

    Recognises anything exposing an integer ``nbytes`` (``Graph``
    delegates to its kernel's ``memory_bytes``), follows a ``graph``
    attribute (``EdgePartition``, ``PlantedInstance``), and sums over
    tuples/lists.  Everything else counts zero — this sizes the
    dominant adjacency payload for sweep logs, it is not a full object
    graph measurement.
    """
    if _depth >= _NBYTES_MAX_DEPTH or value is None:
        return 0
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    total = 0
    graph = getattr(value, "graph", None)
    if graph is not None:
        total += instance_nbytes(graph, _depth + 1)
    elif isinstance(value, (tuple, list)):
        for item in value:
            total += instance_nbytes(item, _depth + 1)
    return total


def canonical_key_bytes(key: Any) -> bytes:
    """A canonical, process-independent encoding of a cache key.

    ``repr`` is unstable across processes for keys containing dicts
    (insertion order), sets (hash order), or objects with default reprs
    (memory addresses) — silent disk-tier misses or collisions.  This
    encoding is recursive and type-tagged: dicts sort by encoded key,
    sets sort by encoded element, floats use shortest-roundtrip repr,
    and anything un-encodable is rejected loudly so a bad key never
    degrades into a wrong path.
    """
    parts: list[str] = []
    _encode_key(key, parts)
    return "".join(parts).encode()


def _encode_key(value: Any, out: list[str]) -> None:
    if value is None:
        out.append("N;")
    elif value is True:
        out.append("B1;")
    elif value is False:
        out.append("B0;")
    elif isinstance(value, int):
        out.append(f"I{value};")
    elif isinstance(value, float):
        out.append(f"F{value!r};")
    elif isinstance(value, str):
        out.append(f"S{len(value)}:{value};")
    elif isinstance(value, bytes):
        out.append(f"Y{value.hex()};")
    elif isinstance(value, (tuple, list)):
        out.append("T(" if isinstance(value, tuple) else "L(")
        for item in value:
            _encode_key(item, out)
        out.append(")")
    elif isinstance(value, (set, frozenset)):
        encoded = []
        for item in value:
            item_parts: list[str] = []
            _encode_key(item, item_parts)
            encoded.append("".join(item_parts))
        out.append("E{" + "".join(sorted(encoded)) + "}")
    elif isinstance(value, dict):
        encoded_items = []
        for k, v in value.items():
            k_parts: list[str] = []
            _encode_key(k, k_parts)
            v_parts: list[str] = []
            _encode_key(v, v_parts)
            encoded_items.append(("".join(k_parts), "".join(v_parts)))
        out.append(
            "D{" + "".join(k + "=" + v for k, v in sorted(encoded_items))
            + "}"
        )
    else:
        raise TypeError(
            f"cache key component {value!r} of type "
            f"{type(value).__name__} has no canonical encoding; use "
            "ints/floats/strings/bytes/bools/None and "
            "tuples/lists/sets/dicts of them"
        )


class InstanceCache:
    """LRU memory cache with an optional on-disk pickle tier."""

    def __init__(self, max_entries: int = 128,
                 disk_dir: str | Path | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_seconds = 0.0
        self.quarantined = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _disk_path(self, key: Hashable) -> Path | None:
        if self.disk_dir is None:
            return None
        digest = hashlib.blake2b(canonical_key_bytes(key), digest_size=16)
        return self.disk_dir / f"{digest.hexdigest()}.pkl"

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        if key in self._entries:
            self.hits += 1
            obs_metrics.inc("cache.hit")
            self._entries.move_to_end(key)
            return self._entries[key]
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except Exception as error:
                # A torn write from a killed worker, disk corruption, or
                # a stale incompatible pickle must not take the sweep
                # down — quarantine the file (keeping it for post-mortem)
                # and rebuild the instance as a plain miss.
                quarantine = path.with_suffix(".corrupt")
                with contextlib.suppress(OSError):
                    os.replace(path, quarantine)
                self.quarantined += 1
                obs_metrics.inc("cache.quarantined")
                obs_trace.event("cache_quarantine", path=str(path),
                                error=type(error).__name__)
                _LOGGER.warning(
                    "instance cache entry %s is corrupt (%s: %s); "
                    "quarantined to %s and rebuilding",
                    path, type(error).__name__, error, quarantine,
                )
            else:
                self.hits += 1
                obs_metrics.inc("cache.hit")
                obs_metrics.inc("cache.disk_hit")
                self._store_memory(key, value)
                return value
        self.misses += 1
        obs_metrics.inc("cache.miss")
        start = time.perf_counter()
        value = builder()
        self.builds += 1
        elapsed = time.perf_counter() - start
        self.build_seconds += elapsed
        obs_metrics.inc("cache.build")
        obs_metrics.inc("cache.build_seconds", elapsed)
        obs_metrics.observe("cache.build_time", elapsed)
        self._store_memory(key, value)
        if path is not None:
            # Per-writer tmp file + atomic rename: concurrent builders of
            # the same key each install a complete pickle, last one wins.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.disk_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle)
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        return value

    def _store_memory(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Counter snapshot — the capacity signal sweeps log.

        **Snapshot semantics**: the returned dict is a point-in-time
        copy, never a live view, and the counters behind it accumulate
        over the cache object's whole lifetime — a cache shared across
        several sweeps reports their *combined* traffic.  For per-run
        numbers, call :meth:`reset` at the start of the run (or diff
        two snapshots); ``entries``/``instance_bytes`` describe current
        occupancy and are unaffected by ``reset``.

        ``builds``/``build_seconds`` isolate real construction work from
        bookkeeping: a miss served from the disk tier counts as a hit,
        so ``builds`` is exactly the number of times ``builder()`` ran
        and ``build_seconds`` the wall-clock it consumed.
        ``instance_bytes`` sums :func:`instance_nbytes` over the live
        memory tier — what sweep logs report as resident instance
        memory at scale.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "builds": self.builds,
            "build_seconds": self.build_seconds,
            "quarantined": self.quarantined,
            "instance_bytes": sum(
                instance_nbytes(value) for value in self._entries.values()
            ),
        }

    def reset(self) -> None:
        """Zero the traffic counters, keeping the cached entries.

        The per-run companion to :meth:`stats`: reset at the start of a
        sweep, and the next snapshot describes that sweep alone — while
        the instances themselves stay warm for reuse.
        """
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_seconds = 0.0
        self.quarantined = 0

    def clear(self) -> None:
        """Drop every cached entry and zero the counters."""
        self._entries.clear()
        self.reset()

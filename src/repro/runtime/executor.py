"""Trial executors: serial and process-pool-parallel with identical output.

The contract every executor honours: given the same :class:`TrialTask`
and the same spec list, ``run_trials`` returns the same
:class:`~repro.runtime.spec.TrialResult` list in the same (spec) order.
Parallelism changes wall-clock only, never records — each trial's
randomness is fully determined by its spec's derived seed, so there is
no shared RNG state to race on.

``ParallelExecutor`` distributes work over a ``ProcessPoolExecutor``
and supports every start method:

* **fork** (the fast path where available): protocol and instance
  callables are typically closures (every Table 1 row builds them
  inline), which do not pickle; instead of pickling them per call, the
  active task is parked in a module global immediately before the pool
  forks, so workers inherit it through copy-on-write and only the small
  ``TrialSpec`` / ``TrialResult`` dataclasses ever cross the pipe.
* **spawn / forkserver** (Windows, macOS, and Python 3.14's default):
  the task is pickled *once* and shipped to each worker through the
  pool initializer, which parks it in the same module global — the
  per-trial traffic is identical to the fork path.  Tasks that do not
  pickle (closure-built) fall back to serial execution transparently;
  module-level callables (and the picklable callables in
  :mod:`repro.analysis.experiments`) parallelise everywhere.

Either way the records are byte-identical to serial execution: each
trial's randomness is fully determined by its spec's derived seed.

The **batched** path (``run_trials(..., batch=True)``) regroups specs
into per-grid-point :class:`~repro.runtime.spec.TrialBatch` units and
runs each through :meth:`TrialTask.run_batch`, which builds (or
cache-fetches) each distinct instance once per batch and reuses it
across the repetition axis.  Parallel sharding is by whole batch, so
instance reuse never crosses a process boundary and the records stay
byte-identical to per-trial execution in either engine.
"""

from __future__ import annotations

import abc
import contextlib
import inspect
import math
import multiprocessing
import os
import pickle
import tempfile
from collections import deque
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from typing import Callable, Iterable, Iterator, Sequence

from repro.comm.randomness import SharedRandomness
from repro.runtime.cache import InstanceCache
from repro.runtime.spec import TrialBatch, TrialResult, TrialSpec, batch_specs

__all__ = [
    "TrialTask",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "resolve_workers",
    "default_executor",
    "run_trials",
    "shared_cache",
]

#: Any callable mapping an ``EdgePartition``-like instance and a seed to an
#: object exposing ``total_bits`` and ``found`` (e.g. ``DetectionResult``).
ProtocolFn = Callable[..., object]
InstanceFn = Callable[[int, float, int], object]
MetricsFn = Callable[[TrialSpec, object, object], dict]


class TrialTask:
    """Executes one spec: build (or fetch) the instance, run the protocol.

    Parameters
    ----------
    instance_fn:
        ``(n, d, seed) -> instance``; must close over anything else it
        needs (epsilon, ...), mirroring the historical ``run_sweep``
        contract.  A builder that declares a ``k`` keyword parameter is
        instead called ``(n, d, seed, k=spec.k)`` so one builder can
        serve k-sweeps.
    protocol:
        ``(instance, seed) -> outcome`` where the outcome exposes
        ``total_bits`` and ``found``.
    cache / instance_key:
        When both are given, instances are memoised under
        ``(instance_key, n, d, k, seed)`` so other tasks with the same
        key reuse them; pick one key per instance *construction*.
    metrics:
        Optional ``(spec, instance, outcome) -> dict`` hook whose result
        lands in ``TrialResult.extras`` (picklable primitives only).
    """

    def __init__(self, instance_fn: InstanceFn, protocol: ProtocolFn, *,
                 cache: InstanceCache | None = None,
                 instance_key: str | None = None,
                 metrics: MetricsFn | None = None) -> None:
        self.instance_fn = instance_fn
        self.protocol = protocol
        self.cache = cache
        self.instance_key = instance_key
        self.metrics = metrics
        try:
            parameters = inspect.signature(instance_fn).parameters
            self._pass_k = "k" in parameters
        except (TypeError, ValueError):  # builtins / C callables
            self._pass_k = False
        try:
            parameters = inspect.signature(protocol).parameters
            self._pass_shared = "shared" in parameters
        except (TypeError, ValueError):  # builtins / C callables
            self._pass_shared = False

    def cache_key(self, spec: TrialSpec) -> tuple:
        return (
            self.instance_key, spec.n, spec.d, spec.k,
            spec.effective_instance_seed,
        )

    def _build(self, spec: TrialSpec) -> object:
        seed = spec.effective_instance_seed
        if self._pass_k:
            return self.instance_fn(spec.n, spec.d, seed, k=spec.k)
        return self.instance_fn(spec.n, spec.d, seed)

    def build_instance(self, spec: TrialSpec) -> object:
        if self.cache is not None and self.instance_key is not None:
            return self.cache.get_or_build(
                self.cache_key(spec), lambda: self._build(spec)
            )
        return self._build(spec)

    def __call__(self, spec: TrialSpec) -> TrialResult:
        instance = self.build_instance(spec)
        outcome = self.protocol(instance, spec.seed)
        extras = (
            self.metrics(spec, instance, outcome)
            if self.metrics is not None else None
        )
        return TrialResult.from_outcome(
            spec,
            bits=outcome.total_bits,
            found=outcome.found,
            extras=extras,
        )

    def run_batch(self, batch: TrialBatch) -> list[TrialResult]:
        """Run one grid point's trials against batch-local instances.

        Each distinct instance key is built (or cache-fetched) exactly
        once for the whole batch; with per-trial instance seeds the
        local map never coalesces anything and the path degenerates to
        the per-trial one.  Protocols that declare a ``shared`` keyword
        receive their coin stream from one batched
        :meth:`~repro.comm.randomness.SharedRandomness.batch`
        construction — draw-for-draw identical to the stream they would
        build internally from the spec seed, so outcomes are unchanged.
        """
        streams: Sequence[SharedRandomness | None]
        if self._pass_shared:
            streams = SharedRandomness.batch(
                [spec.seed for spec in batch.specs]
            )
        else:
            streams = [None] * len(batch.specs)
        local: dict[tuple, object] = {}
        results: list[TrialResult] = []
        for spec, stream in zip(batch.specs, streams):
            key = self.cache_key(spec)
            try:
                instance = local[key]
            except KeyError:
                instance = local[key] = self.build_instance(spec)
            if stream is not None:
                outcome = self.protocol(instance, spec.seed, shared=stream)
            else:
                outcome = self.protocol(instance, spec.seed)
            extras = (
                self.metrics(spec, instance, outcome)
                if self.metrics is not None else None
            )
            results.append(
                TrialResult.from_outcome(
                    spec,
                    bits=outcome.total_bits,
                    found=outcome.found,
                    extras=extras,
                )
            )
        return results


def resolve_workers(workers: int | None = None) -> int:
    """Worker-count policy: explicit arg > ``REPRO_WORKERS`` env > serial.

    Zero or negative means "all cores".
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


class Executor(abc.ABC):
    """Runs trials; subclasses choose how, never what."""

    @abc.abstractmethod
    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        """Execute every spec, returning results in spec order."""

    def run_batches(self, task: TrialTask,
                    batches: Iterable[TrialBatch]) -> list[TrialResult]:
        """Execute per-point batches, returning results in batch order.

        The default runs batches in-process one after another;
        :class:`ParallelExecutor` overrides it to shard whole batches
        across workers.
        """
        results: list[TrialResult] = []
        for batch in batches:
            results.extend(task.run_batch(batch))
        return results


class SerialExecutor(Executor):
    """In-process execution — the reference the parallel path must match."""

    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        return [task(spec) for spec in specs]


# The task a ParallelExecutor is currently running.  Fork workers
# inherit it via copy-on-write; spawn workers receive it pickled through
# the pool initializer below.
_ACTIVE_TASK: Callable[[TrialSpec], TrialResult] | None = None


def _run_active_task(spec: TrialSpec) -> TrialResult:
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    return _ACTIVE_TASK(spec)


def _run_active_batch(batch: TrialBatch) -> list[TrialResult]:
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    return _ACTIVE_TASK.run_batch(batch)


def _install_pickled_task(payload: bytes) -> None:
    """Spawn-worker initializer: unpickle the task into the shared slot."""
    global _ACTIVE_TASK
    _ACTIVE_TASK = pickle.loads(payload)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelExecutor(Executor):
    """Fan trials out over a process pool, in chunks.

    ``workers=None`` means all cores.  ``start_method=None`` picks
    ``fork`` where the platform offers it and ``spawn`` otherwise
    (Windows, macOS defaults, Python 3.14+); passing ``"fork"`` /
    ``"spawn"`` / ``"forkserver"`` pins it.  Falls back to serial
    execution when there is nothing to parallelise (one worker, one
    spec), when re-entered from within another parallel run (the shared
    task slot is single-occupancy), or when a spawn-method pool is asked
    to run a task that does not pickle.
    """

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None,
                 start_method: str | None = None) -> None:
        self.workers = (
            resolve_workers(workers) if workers is not None
            else (os.cpu_count() or 1)
        )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise ValueError(
                    f"start method {start_method!r} not available here "
                    f"(choose from {available})"
                )
        self.start_method = start_method

    def _chunk(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances scheduling overhead against the
        # skew of heterogeneous grid points (big-n trials dwarf small-n).
        return max(1, math.ceil(total / (self.workers * 4)))

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if _fork_available() else "spawn"

    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        global _ACTIVE_TASK
        spec_list = list(specs)
        workers = min(self.workers, len(spec_list))
        if workers <= 1 or _ACTIVE_TASK is not None:
            return SerialExecutor().run_trials(task, spec_list)
        method = self._resolve_start_method()
        pool_kwargs: dict = {}
        if method != "fork":
            # Spawned workers import this module fresh: ship the task
            # once, pickled, through the initializer.  Closure-built
            # tasks cannot travel that way — run them serially.
            try:
                payload = pickle.dumps(task)
            except Exception:
                return SerialExecutor().run_trials(task, spec_list)
            pool_kwargs = {
                "initializer": _install_pickled_task,
                "initargs": (payload,),
            }
        _ACTIVE_TASK = task
        try:
            context = multiprocessing.get_context(method)
            with _PoolExecutor(max_workers=workers,
                               mp_context=context, **pool_kwargs) as pool:
                return list(
                    pool.map(_run_active_task, spec_list,
                             chunksize=self._chunk(len(spec_list)))
                )
        finally:
            _ACTIVE_TASK = None

    def run_batches(self, task: TrialTask,
                    batches: Iterable[TrialBatch]) -> list[TrialResult]:
        global _ACTIVE_TASK
        batch_list = list(batches)
        workers = min(self.workers, len(batch_list))
        if workers <= 1 or _ACTIVE_TASK is not None:
            return super().run_batches(task, batch_list)
        method = self._resolve_start_method()
        pool_kwargs: dict = {}
        if method != "fork":
            try:
                payload = pickle.dumps(task)
            except Exception:
                return super().run_batches(task, batch_list)
            pool_kwargs = {
                "initializer": _install_pickled_task,
                "initargs": (payload,),
            }
        _ACTIVE_TASK = task
        try:
            context = multiprocessing.get_context(method)
            with _PoolExecutor(max_workers=workers,
                               mp_context=context, **pool_kwargs) as pool:
                # A batch is already a coarse unit of work (a whole grid
                # point), so no further chunking is needed.
                nested = pool.map(_run_active_batch, batch_list, chunksize=1)
                return [result for group in nested for result in group]
        finally:
            _ACTIVE_TASK = None


@contextlib.contextmanager
def shared_cache(workers: int | None = None,
                 max_entries: int = 128) -> Iterator[InstanceCache]:
    """Yield an :class:`InstanceCache` matched to the execution mode.

    Serial runs get a memory-only cache (same-process reuse suffices).
    Parallel runs add a temporary disk tier: instances a worker builds
    die with the worker, so only the disk tier lets the workers of a
    *later* sweep reuse what an earlier sweep generated.  The directory
    is removed when the context exits.
    """
    if resolve_workers(workers) <= 1:
        yield InstanceCache(max_entries=max_entries)
        return
    with tempfile.TemporaryDirectory(prefix="repro-instance-cache-") as tmp:
        yield InstanceCache(max_entries=max_entries, disk_dir=tmp)


def default_executor(workers: int | None = None) -> Executor:
    """Serial for one worker, parallel otherwise (after env resolution)."""
    count = resolve_workers(workers)
    return SerialExecutor() if count <= 1 else ParallelExecutor(count)


def run_trials(protocol: ProtocolFn, instance_fn: InstanceFn,
               specs: Sequence[TrialSpec], *,
               workers: int | None = None,
               executor: Executor | None = None,
               cache: InstanceCache | None = None,
               instance_key: str | None = None,
               metrics: MetricsFn | None = None,
               batch: bool = False) -> list[TrialResult]:
    """One-call convenience: wrap the callables in a task and execute.

    ``batch=True`` routes through the per-grid-point batched engine
    (instances built once per batch, coins from one batched
    construction); ``batch=False`` is the per-trial reference path.
    Both return the same records in the same (input spec) order.
    """
    task = TrialTask(instance_fn, protocol, cache=cache,
                     instance_key=instance_key, metrics=metrics)
    chosen = executor if executor is not None else default_executor(workers)
    if not batch:
        return chosen.run_trials(task, specs)
    spec_list = list(specs)
    batches = batch_specs(spec_list)
    flat = chosen.run_batches(task, batches)
    if len(batches) <= 1:
        return flat
    # Results come back grouped by point; deal them back out in input
    # spec order (a no-op for the usual point-major spec lists).
    queues: dict[int, deque[TrialResult]] = {}
    position = 0
    for group in batches:
        queues[group.point_index] = deque(
            flat[position:position + len(group.specs)]
        )
        position += len(group.specs)
    return [queues[spec.point_index].popleft() for spec in spec_list]

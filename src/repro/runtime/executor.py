"""Trial executors: serial and process-pool-parallel with identical output.

The contract every executor honours: given the same :class:`TrialTask`
and the same spec list, ``run_trials`` returns the same
:class:`~repro.runtime.spec.TrialResult` list in the same (spec) order.
Parallelism changes wall-clock only, never records — each trial's
randomness is fully determined by its spec's derived seed, so there is
no shared RNG state to race on.

``ParallelExecutor`` distributes work over a ``ProcessPoolExecutor``
and supports every start method:

* **fork** (the fast path where available): protocol and instance
  callables are typically closures (every Table 1 row builds them
  inline), which do not pickle; instead of pickling them per call, the
  active task is parked in a module global immediately before the pool
  forks, so workers inherit it through copy-on-write and only the small
  ``TrialSpec`` / ``TrialResult`` dataclasses ever cross the pipe.
* **spawn / forkserver** (Windows, macOS, and Python 3.14's default):
  the task is pickled *once* and shipped to each worker through the
  pool initializer, which parks it in the same module global — the
  per-trial traffic is identical to the fork path.  Tasks that do not
  pickle (closure-built) fall back to serial execution transparently;
  module-level callables (and the picklable callables in
  :mod:`repro.analysis.experiments`) parallelise everywhere.

Either way the records are byte-identical to serial execution: each
trial's randomness is fully determined by its spec's derived seed.

The **batched** path (``run_trials(..., batch=True)``) regroups specs
into per-grid-point :class:`~repro.runtime.spec.TrialBatch` units and
runs each through :meth:`TrialTask.run_batch`, which builds (or
cache-fetches) each distinct instance once per batch and reuses it
across the repetition axis.  Parallel sharding is by whole batch, so
instance reuse never crosses a process boundary and the records stay
byte-identical to per-trial execution in either engine.

The **supervised** path (engaged whenever ``run_trials`` is given a
``retry=``, ``journal=``, ``resume=``, or ``fault_plan=``) adds the
fault-tolerance layer:

* per-trial / per-batch **error capture** — a trial that raises becomes
  a ``status="error"`` :class:`TrialResult` instead of killing the
  sweep;
* a **wall-clock watchdog** (``RetryPolicy.timeout``) per unit of work
  — a hung trial times out instead of stalling the sweep forever (in
  parallel mode the hung worker's pool is killed and rebuilt, because a
  running pool worker cannot be cancelled);
* **bounded deterministic retry-with-backoff** — failed units are
  re-run up to ``RetryPolicy.max_attempts`` times with a fixed
  (jitter-free) backoff schedule; because trials are pure functions of
  their specs, retries can change wall-clock but never records;
* **pool rebuild** on ``BrokenProcessPool`` (a worker died), with
  graceful **degradation to serial** execution once
  ``RetryPolicy.max_pool_rebuilds`` is exhausted;
* incremental **journaling**: each completed unit's ok-results are
  durably appended to the :class:`~repro.runtime.journal.RunJournal`
  the moment they exist, so a crash loses at most the in-flight unit.
"""

from __future__ import annotations

import abc
import contextlib
import inspect
import logging
import math
import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.comm.randomness import SharedRandomness
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.runtime.cache import InstanceCache
from repro.runtime.journal import RunJournal
from repro.runtime.spec import TrialBatch, TrialResult, TrialSpec, batch_specs

if TYPE_CHECKING:  # circular-import-free type-only reference
    from repro.runtime.faults import FaultPlan

__all__ = [
    "TrialTask",
    "RetryPolicy",
    "TrialTimeout",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "resolve_workers",
    "default_executor",
    "run_trials",
    "shared_cache",
]

_LOGGER = logging.getLogger(__name__)


class TrialTimeout(RuntimeError):
    """A supervised unit of work exceeded its wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised executors respond to failure.

    ``max_attempts`` bounds runs per unit of work (a trial, or a whole
    batch in batched mode); ``backoff_base * backoff_factor**i`` seconds
    separate attempt ``i`` from attempt ``i+1`` — a fixed, jitter-free
    schedule, so failure handling is as deterministic as the trials
    themselves.  ``timeout`` (seconds per attempt, ``None`` = no
    watchdog) is the hang guard; in parallel mode a timeout kills and
    rebuilds the pool, and after ``max_pool_rebuilds`` rebuilds the
    remaining work degrades to in-process serial execution.  ``sleep``
    is injectable so tests can run the schedule without waiting it out.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    timeout: float | None = None
    max_pool_rebuilds: int = 3
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff terms must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-running after attempt ``attempt``."""
        return self.backoff_base * self.backoff_factor ** attempt

#: Any callable mapping an ``EdgePartition``-like instance and a seed to an
#: object exposing ``total_bits`` and ``found`` (e.g. ``DetectionResult``).
ProtocolFn = Callable[..., object]
InstanceFn = Callable[[int, float, int], object]
MetricsFn = Callable[[TrialSpec, object, object], dict]


class TrialTask:
    """Executes one spec: build (or fetch) the instance, run the protocol.

    Parameters
    ----------
    instance_fn:
        ``(n, d, seed) -> instance``; must close over anything else it
        needs (epsilon, ...), mirroring the historical ``run_sweep``
        contract.  A builder that declares a ``k`` keyword parameter is
        instead called ``(n, d, seed, k=spec.k)`` so one builder can
        serve k-sweeps.
    protocol:
        ``(instance, seed) -> outcome`` where the outcome exposes
        ``total_bits`` and ``found``.
    cache / instance_key:
        When both are given, instances are memoised under
        ``(instance_key, n, d, k, seed)`` so other tasks with the same
        key reuse them; pick one key per instance *construction*.
    metrics:
        Optional ``(spec, instance, outcome) -> dict`` hook whose result
        lands in ``TrialResult.extras`` (picklable primitives only).
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` consulted on
        the *supervised* execution paths only — the deterministic
        fault-injection seam the recovery machinery is tested through.
    profile:
        When true, a per-trial phase cost profile (``build`` /
        ``stream`` / ``protocol`` / ``referee`` seconds) is attached to
        ``TrialResult.extras["profile"]``.  Opt-in because it changes
        the record — see :mod:`repro.obs.profile`.
    """

    def __init__(self, instance_fn: InstanceFn, protocol: ProtocolFn, *,
                 cache: InstanceCache | None = None,
                 instance_key: str | None = None,
                 metrics: MetricsFn | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 profile: bool = False) -> None:
        self.instance_fn = instance_fn
        self.protocol = protocol
        self.cache = cache
        self.instance_key = instance_key
        self.metrics = metrics
        self.fault_plan = fault_plan
        self.profile = profile
        try:
            parameters = inspect.signature(instance_fn).parameters
            self._pass_k = "k" in parameters
        except (TypeError, ValueError):  # builtins / C callables
            self._pass_k = False
        try:
            parameters = inspect.signature(protocol).parameters
            self._pass_shared = "shared" in parameters
        except (TypeError, ValueError):  # builtins / C callables
            self._pass_shared = False

    def cache_key(self, spec: TrialSpec) -> tuple:
        return (
            self.instance_key, spec.n, spec.d, spec.k,
            spec.effective_instance_seed,
        )

    def _build(self, spec: TrialSpec) -> object:
        seed = spec.effective_instance_seed
        if self._pass_k:
            return self.instance_fn(spec.n, spec.d, seed, k=spec.k)
        return self.instance_fn(spec.n, spec.d, seed)

    def build_instance(self, spec: TrialSpec) -> object:
        if self.cache is not None and self.instance_key is not None:
            return self.cache.get_or_build(
                self.cache_key(spec), lambda: self._build(spec)
            )
        return self._build(spec)

    def _run_one(self, spec: TrialSpec,
                 stream: SharedRandomness | None,
                 local: dict[tuple, object],
                 stream_cost: float = 0.0) -> TrialResult:
        """One trial against a batch-local instance map — the shared core
        of the plain and supervised batch paths."""
        if not self.profile:
            return self._execute(spec, stream, local, None, stream_cost)
        with obs_profile.profile_scope() as profile:
            return self._execute(spec, stream, local, profile, stream_cost)

    def _execute(self, spec: TrialSpec,
                 stream: SharedRandomness | None,
                 local: dict[tuple, object],
                 profile: dict | None,
                 stream_cost: float) -> TrialResult:
        with obs_trace.span("trial", point=spec.point_index,
                            trial=spec.trial_index, n=spec.n), \
                obs_metrics.timer("trial.seconds"):
            if stream_cost:
                # This trial's even share of the batch's one stream
                # construction (per-trial runs build streams inside the
                # protocol, where the cost lands in the protocol phase).
                obs_profile.charge("stream", stream_cost)
            key = self.cache_key(spec)
            try:
                instance = local[key]
            except KeyError:
                with obs_trace.span("build"), obs_profile.phase("build"):
                    instance = local[key] = self.build_instance(spec)
            with obs_trace.span("protocol"), obs_profile.phase("protocol"):
                if stream is not None:
                    outcome = self.protocol(instance, spec.seed, shared=stream)
                else:
                    outcome = self.protocol(instance, spec.seed)
        extras = (
            self.metrics(spec, instance, outcome)
            if self.metrics is not None else None
        )
        if profile is not None:
            extras = dict(extras) if extras else {}
            extras["profile"] = {
                name: round(seconds, 9)
                for name, seconds in sorted(profile.items())
            }
        return TrialResult.from_outcome(
            spec,
            bits=outcome.total_bits,
            found=outcome.found,
            extras=extras,
        )

    def _batch_streams(self, batch: TrialBatch
                       ) -> Sequence[SharedRandomness | None]:
        if self._pass_shared:
            return SharedRandomness.batch([spec.seed for spec in batch.specs])
        return [None] * len(batch.specs)

    def __call__(self, spec: TrialSpec) -> TrialResult:
        # A one-entry local map makes this exactly the batched core with
        # nothing to coalesce, so both paths share the instrumentation.
        return self._run_one(spec, None, {})

    def run_batch(self, batch: TrialBatch) -> list[TrialResult]:
        """Run one grid point's trials against batch-local instances.

        Each distinct instance key is built (or cache-fetched) exactly
        once for the whole batch; with per-trial instance seeds the
        local map never coalesces anything and the path degenerates to
        the per-trial one.  Protocols that declare a ``shared`` keyword
        receive their coin stream from one batched
        :meth:`~repro.comm.randomness.SharedRandomness.batch`
        construction — draw-for-draw identical to the stream they would
        build internally from the spec seed, so outcomes are unchanged.
        """
        with obs_trace.span("batch", point=batch.point_index,
                            trials=len(batch.specs)):
            with obs_trace.span("streams"), \
                    obs_metrics.timer("batch.stream_seconds"):
                started = time.perf_counter()
                streams = self._batch_streams(batch)
                stream_cost = (
                    (time.perf_counter() - started) / max(1, len(batch.specs))
                    if self.profile else 0.0
                )
            local: dict[tuple, object] = {}
            return [
                self._run_one(spec, stream, local, stream_cost)
                for spec, stream in zip(batch.specs, streams)
            ]

    # -- supervised entries -------------------------------------------
    # Same computations as __call__/run_batch, but failures become
    # structured records instead of escaping, and the fault plan gets
    # its shot first.  Successful trials produce byte-identical results
    # on either path.

    def run_supervised(self, spec: TrialSpec, *,
                       attempt: int = 0) -> TrialResult:
        """One trial with fault injection and error capture."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.apply(spec, attempt)
            return self(spec)
        except Exception as error:
            return TrialResult.from_error(spec, error)

    def run_batch_supervised(self, batch: TrialBatch, *,
                             attempt: int = 0) -> list[TrialResult]:
        """One batch with per-trial fault injection and error capture.

        A failure inside one trial (fault, instance build, protocol)
        yields an error record for that trial only; the batch's other
        trials still run.  A failure building the batch coin streams
        fails the whole batch, since no trial can run without coins.
        """
        with obs_trace.span("batch", point=batch.point_index,
                            trials=len(batch.specs), attempt=attempt):
            try:
                started = time.perf_counter()
                streams = self._batch_streams(batch)
                stream_cost = (
                    (time.perf_counter() - started) / max(1, len(batch.specs))
                    if self.profile else 0.0
                )
            except Exception as error:
                return [TrialResult.from_error(s, error) for s in batch.specs]
            local: dict[tuple, object] = {}
            results: list[TrialResult] = []
            for spec, stream in zip(batch.specs, streams):
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply(spec, attempt)
                    results.append(
                        self._run_one(spec, stream, local, stream_cost)
                    )
                except Exception as error:
                    results.append(TrialResult.from_error(spec, error))
            return results


def resolve_workers(workers: int | None = None) -> int:
    """Worker-count policy: explicit arg > ``REPRO_WORKERS`` env > serial.

    Zero or negative means "all cores".
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


class Executor(abc.ABC):
    """Runs trials; subclasses choose how, never what."""

    @abc.abstractmethod
    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        """Execute every spec, returning results in spec order."""

    def run_batches(self, task: TrialTask,
                    batches: Iterable[TrialBatch]) -> list[TrialResult]:
        """Execute per-point batches, returning results in batch order.

        The default runs batches in-process one after another;
        :class:`ParallelExecutor` overrides it to shard whole batches
        across workers.
        """
        results: list[TrialResult] = []
        for batch in batches:
            results.extend(task.run_batch(batch))
        return results

    def run_supervised(self, task: TrialTask,
                       units: Iterable[TrialSpec | TrialBatch], *,
                       retry: RetryPolicy,
                       journal: RunJournal | None = None,
                       batch: bool = False) -> list[TrialResult]:
        """Execute units (specs, or batches with ``batch=True``) under
        supervision: fault injection, error capture, a wall-clock
        watchdog, bounded retry, and incremental journaling.

        The base implementation runs in-process, one unit at a time —
        the reference semantics, and the path pool degradation falls
        back to.  :class:`ParallelExecutor` overrides it with the
        pool-rebuilding engine.
        """
        results: list[TrialResult] = []
        for unit in units:
            results.extend(
                _supervise_serial_unit(task, unit, retry, journal, batch)
            )
        return results


class SerialExecutor(Executor):
    """In-process execution — the reference the parallel path must match."""

    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        return [task(spec) for spec in specs]


# The task a ParallelExecutor is currently running.  Fork workers
# inherit it via copy-on-write; spawn workers receive it pickled through
# the pool initializer below.
_ACTIVE_TASK: Callable[[TrialSpec], TrialResult] | None = None

# Every worker function returns ``(payload, metrics_snapshot)``: the
# snapshot is the worker registry's delta since its last shipment
# (``None`` when metrics are off, so the common case adds two bytes of
# pickle).  The driver folds the snapshots into its own registry as the
# results come home — see repro.obs.metrics.


def _run_active_task(spec: TrialSpec) -> tuple[TrialResult, dict | None]:
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    obs_metrics.worker_sync()
    result = _ACTIVE_TASK(spec)
    return result, obs_metrics.ship()


def _run_active_batch(batch: TrialBatch
                      ) -> tuple[list[TrialResult], dict | None]:
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    obs_metrics.worker_sync()
    results = _ACTIVE_TASK.run_batch(batch)
    return results, obs_metrics.ship()


def _run_supervised_trial(payload: tuple[TrialSpec, int]
                          ) -> tuple[list[TrialResult], dict | None]:
    spec, attempt = payload
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    obs_metrics.worker_sync()
    results = [_ACTIVE_TASK.run_supervised(spec, attempt=attempt)]
    return results, obs_metrics.ship()


def _run_supervised_batch(payload: tuple[TrialBatch, int]
                          ) -> tuple[list[TrialResult], dict | None]:
    batch, attempt = payload
    if _ACTIVE_TASK is None:
        raise RuntimeError("no active task in worker; pool misconfigured")
    obs_metrics.worker_sync()
    results = _ACTIVE_TASK.run_batch_supervised(batch, attempt=attempt)
    return results, obs_metrics.ship()


def _spawn_payload(task: object) -> bytes:
    """Pickle the task (plus whether metrics are on) for spawn workers."""
    return pickle.dumps((task, obs_metrics.get_metrics() is not None))


def _install_pickled_task(payload: bytes) -> None:
    """Spawn-worker initializer: unpickle the task into the shared slot.

    A spawned worker imports everything fresh, so unlike a fork worker
    it does not inherit the driver's metrics registry; when the driver
    had one, install a fresh registry here so the worker's counts are
    collected and shipped home all the same.
    """
    global _ACTIVE_TASK
    loaded = pickle.loads(payload)
    if (isinstance(loaded, tuple) and len(loaded) == 2
            and isinstance(loaded[1], bool)):
        task, metrics_on = loaded
    else:  # pre-metrics payload shape: just the task
        task, metrics_on = loaded, False
    _ACTIVE_TASK = task
    if metrics_on and obs_metrics.get_metrics() is None:
        obs_metrics.set_metrics(obs_metrics.MetricsRegistry())


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _task_name(task: object) -> str:
    """A human-readable task identity for degradation warnings."""
    protocol = getattr(task, "protocol", None)
    if protocol is None:
        return repr(task)
    instance_fn = getattr(task, "instance_fn", None)

    def name(fn: object) -> str:
        return getattr(fn, "__qualname__", None) or repr(fn)

    return (
        f"TrialTask(protocol={name(protocol)}, "
        f"instance_fn={name(instance_fn)})"
    )


# ----------------------------------------------------------------------
# Supervision helpers (shared by the serial and parallel engines)
# ----------------------------------------------------------------------

def _call_with_timeout(fn: Callable[[], object],
                       timeout: float | None) -> object:
    """Run ``fn`` with a wall-clock budget, in-process.

    With a timeout, ``fn`` runs on a daemon worker thread and a hang
    surfaces as :class:`TrialTimeout` after ``timeout`` seconds — the
    abandoned thread finishes (or sleeps out its injected hang) in the
    background, and its late result is discarded.  This is the only way
    to put a watchdog on in-process execution; parallel supervision
    instead waits on pool futures and kills the hung worker's pool.
    """
    if timeout is None:
        return fn()
    box: dict[str, object] = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as error:  # re-raised on the caller's thread
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TrialTimeout(f"no result within {timeout}s")
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["value"]


def _kill_pool(pool: _PoolExecutor) -> None:
    """Forcibly tear down a pool that may contain hung or dead workers.

    ``shutdown`` alone never terminates a *running* worker, so a hung
    trial would pin its process forever; terminate the children first
    (via the executor's process table), then release the executor's
    resources without waiting on them.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        with contextlib.suppress(Exception):
            process.terminate()
    with contextlib.suppress(Exception):
        pool.shutdown(wait=False, cancel_futures=True)


def _unit_specs(unit: TrialSpec | TrialBatch,
                batch: bool) -> list[TrialSpec]:
    return list(unit.specs) if batch else [unit]  # type: ignore[union-attr]


def _rebind_coordinates(unit: TrialSpec | TrialBatch, batch: bool,
                        outcome: Sequence[TrialResult]) -> list[TrialResult]:
    """Rebuild worker-returned records on the driver's own spec objects.

    Exactly what a driver-side ``TrialResult.from_outcome`` call would
    reference: within a grid point the specs share coordinate objects
    (one ``d`` float per point), so the pickled byte stream of the final
    record *list* matches serial execution no matter how the records
    were split across futures on the way home.
    """
    return [
        replace(
            result,
            point_index=spec.point_index, trial_index=spec.trial_index,
            n=spec.n, d=spec.d, k=spec.k, seed=spec.seed,
        )
        for spec, result in zip(_unit_specs(unit, batch), outcome)
    ]


def _timeout_results(unit: TrialSpec | TrialBatch, batch: bool,
                     retry: RetryPolicy) -> list[TrialResult]:
    message = f"trial timed out after {retry.timeout}s"
    return [
        TrialResult.from_error(spec, message, status="timeout")
        for spec in _unit_specs(unit, batch)
    ]


def _worker_lost_results(unit: TrialSpec | TrialBatch,
                         batch: bool) -> list[TrialResult]:
    return [
        TrialResult.from_error(spec, "worker process died (pool broken)")
        for spec in _unit_specs(unit, batch)
    ]


def _journal_unit(journal: RunJournal | None,
                  unit: TrialSpec | TrialBatch, batch: bool,
                  results: Sequence[TrialResult]) -> None:
    if journal is None:
        return
    for spec, result in zip(_unit_specs(unit, batch), results):
        journal.record(spec, result)


def _attempt_serial(task: TrialTask, unit: TrialSpec | TrialBatch,
                    attempt: int, batch: bool) -> list[TrialResult]:
    if batch:
        return task.run_batch_supervised(unit, attempt=attempt)
    return [task.run_supervised(unit, attempt=attempt)]


def _supervise_serial_unit(task: TrialTask, unit: TrialSpec | TrialBatch,
                           retry: RetryPolicy, journal: RunJournal | None,
                           batch: bool) -> list[TrialResult]:
    """The in-process attempt loop: timeout, capture, backoff, retry."""
    outcome: list[TrialResult] = []
    for attempt in range(retry.max_attempts):
        if attempt:
            obs_trace.event("retry", attempt=attempt)
            obs_metrics.inc("retry.attempts")
            retry.sleep(retry.backoff(attempt - 1))
        try:
            outcome = _call_with_timeout(
                lambda: _attempt_serial(task, unit, attempt, batch),
                retry.timeout,
            )
        except TrialTimeout:
            obs_trace.event("timeout", attempt=attempt,
                            timeout=retry.timeout)
            outcome = _timeout_results(unit, batch, retry)
            continue
        if all(result.ok for result in outcome):
            break
    _journal_unit(journal, unit, batch, outcome)
    return outcome


class ParallelExecutor(Executor):
    """Fan trials out over a process pool, in chunks.

    ``workers=None`` means all cores.  ``start_method=None`` picks
    ``fork`` where the platform offers it and ``spawn`` otherwise
    (Windows, macOS defaults, Python 3.14+); passing ``"fork"`` /
    ``"spawn"`` / ``"forkserver"`` pins it.  Falls back to serial
    execution when there is nothing to parallelise (one worker, one
    spec), when re-entered from within another parallel run (the shared
    task slot is single-occupancy), or when a spawn-method pool is asked
    to run a task that does not pickle.
    """

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None,
                 start_method: str | None = None) -> None:
        self.workers = (
            resolve_workers(workers) if workers is not None
            else (os.cpu_count() or 1)
        )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise ValueError(
                    f"start method {start_method!r} not available here "
                    f"(choose from {available})"
                )
        self.start_method = start_method

    def _chunk(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances scheduling overhead against the
        # skew of heterogeneous grid points (big-n trials dwarf small-n).
        return max(1, math.ceil(total / (self.workers * 4)))

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        env = os.environ.get("REPRO_START_METHOD", "").strip()
        if env:
            available = multiprocessing.get_all_start_methods()
            if env not in available:
                raise ValueError(
                    f"REPRO_START_METHOD={env!r} not available here "
                    f"(choose from {available})"
                )
            return env
        return "fork" if _fork_available() else "spawn"

    def run_trials(self, task: Callable[[TrialSpec], TrialResult],
                   specs: Iterable[TrialSpec]) -> list[TrialResult]:
        global _ACTIVE_TASK
        spec_list = list(specs)
        workers = min(self.workers, len(spec_list))
        if workers <= 1 or _ACTIVE_TASK is not None:
            return SerialExecutor().run_trials(task, spec_list)
        method = self._resolve_start_method()
        pool_kwargs: dict = {}
        if method != "fork":
            # Spawned workers import this module fresh: ship the task
            # once, pickled, through the initializer.  Closure-built
            # tasks cannot travel that way — run them serially.
            try:
                payload = _spawn_payload(task)
            except Exception as error:
                _LOGGER.warning(
                    "%s does not pickle under start method %r (%s); "
                    "falling back to serial execution — records are "
                    "identical but parallelism is disabled for this run",
                    _task_name(task), method, error,
                )
                return SerialExecutor().run_trials(task, spec_list)
            pool_kwargs = {
                "initializer": _install_pickled_task,
                "initargs": (payload,),
            }
        _ACTIVE_TASK = task
        try:
            context = multiprocessing.get_context(method)
            with _PoolExecutor(max_workers=workers,
                               mp_context=context, **pool_kwargs) as pool:
                results: list[TrialResult] = []
                for result, shipped in pool.map(
                        _run_active_task, spec_list,
                        chunksize=self._chunk(len(spec_list))):
                    obs_metrics.absorb(shipped)
                    results.append(result)
                return results
        finally:
            _ACTIVE_TASK = None

    def run_batches(self, task: TrialTask,
                    batches: Iterable[TrialBatch]) -> list[TrialResult]:
        global _ACTIVE_TASK
        batch_list = list(batches)
        workers = min(self.workers, len(batch_list))
        if workers <= 1 or _ACTIVE_TASK is not None:
            return super().run_batches(task, batch_list)
        method = self._resolve_start_method()
        pool_kwargs: dict = {}
        if method != "fork":
            try:
                payload = _spawn_payload(task)
            except Exception as error:
                _LOGGER.warning(
                    "%s does not pickle under start method %r (%s); "
                    "falling back to serial execution — records are "
                    "identical but parallelism is disabled for this run",
                    _task_name(task), method, error,
                )
                return super().run_batches(task, batch_list)
            pool_kwargs = {
                "initializer": _install_pickled_task,
                "initargs": (payload,),
            }
        _ACTIVE_TASK = task
        try:
            context = multiprocessing.get_context(method)
            with _PoolExecutor(max_workers=workers,
                               mp_context=context, **pool_kwargs) as pool:
                # A batch is already a coarse unit of work (a whole grid
                # point), so no further chunking is needed.
                results: list[TrialResult] = []
                for group, shipped in pool.map(_run_active_batch,
                                               batch_list, chunksize=1):
                    obs_metrics.absorb(shipped)
                    results.extend(group)
                return results
        finally:
            _ACTIVE_TASK = None

    def run_supervised(self, task: TrialTask,
                       units: Iterable[TrialSpec | TrialBatch], *,
                       retry: RetryPolicy,
                       journal: RunJournal | None = None,
                       batch: bool = False) -> list[TrialResult]:
        """The pool-rebuilding supervision engine.

        Work proceeds in *waves*: every unresolved unit is submitted to
        the pool, results are collected in unit order with the
        watchdog's per-unit budget, and failed units re-enter the next
        wave with an incremented attempt counter (after the backoff
        pause).  A timeout or a dead worker poisons the pool — running
        workers cannot be cancelled — so the pool is killed and rebuilt
        between waves, up to ``retry.max_pool_rebuilds`` times; after
        that the remaining units degrade to the in-process serial
        engine (where ``kill`` faults downgrade to ``raise``, and the
        sweep still finishes with structured error records at worst).

        A wave-wide ``BrokenProcessPool`` cannot be attributed to one
        unit, so every unit still unresolved in that wave is charged an
        attempt — this keeps the faulty unit's counter advancing (and
        fault plans deterministic) at the price of innocent units
        occasionally burning an attempt alongside it.
        """
        global _ACTIVE_TASK
        unit_list = list(units)
        workers = min(self.workers, len(unit_list))
        if workers <= 1 or _ACTIVE_TASK is not None:
            return super().run_supervised(
                task, unit_list, retry=retry, journal=journal, batch=batch
            )
        method = self._resolve_start_method()
        pool_kwargs: dict = {}
        if method != "fork":
            try:
                payload = _spawn_payload(task)
            except Exception as error:
                _LOGGER.warning(
                    "%s does not pickle under start method %r (%s); "
                    "falling back to serial execution — records are "
                    "identical but parallelism is disabled for this run",
                    _task_name(task), method, error,
                )
                return super().run_supervised(
                    task, unit_list, retry=retry, journal=journal,
                    batch=batch,
                )
            pool_kwargs = {
                "initializer": _install_pickled_task,
                "initargs": (payload,),
            }
        worker_fn = _run_supervised_batch if batch else _run_supervised_trial
        context = multiprocessing.get_context(method)

        def make_pool() -> _PoolExecutor:
            return _PoolExecutor(max_workers=workers, mp_context=context,
                                 **pool_kwargs)

        _ACTIVE_TASK = task
        pool: _PoolExecutor | None = make_pool()
        rebuilds = 0
        # unit index -> attempt counter; resolved units leave the map.
        remaining: dict[int, int] = {i: 0 for i in range(len(unit_list))}
        results: dict[int, list[TrialResult]] = {}
        last_outcome: dict[int, list[TrialResult]] = {}
        try:
            while remaining:
                if pool is None:
                    _LOGGER.warning(
                        "process pool could not be revived after %d "
                        "rebuild(s); degrading %d unit(s) to serial "
                        "execution", rebuilds, len(remaining),
                    )
                    obs_trace.event("degrade_serial", units=len(remaining),
                                    rebuilds=rebuilds)
                    obs_metrics.inc("pool.degrade_serial")
                    for i in sorted(remaining):
                        results[i] = _supervise_serial_unit(
                            task, unit_list[i], retry, journal, batch
                        )
                    remaining.clear()
                    break
                futures = {
                    i: pool.submit(worker_fn, (unit_list[i], remaining[i]))
                    for i in sorted(remaining)
                }
                break_kind: str | None = None  # None | "timeout" | "broken"
                failed: list[int] = []
                for i in sorted(futures):
                    future = futures[i]
                    if break_kind is not None and not future.done():
                        # The pool is going down; this unit never got to
                        # run — it re-enters the next wave at the same
                        # attempt (except after a worker death, charged
                        # below to keep fault counters advancing).
                        future.cancel()
                        if break_kind == "broken":
                            failed.append(i)
                            last_outcome[i] = _worker_lost_results(
                                unit_list[i], batch
                            )
                        continue
                    try:
                        wait = None if future.done() else retry.timeout
                        outcome, shipped = future.result(timeout=wait)
                        obs_metrics.absorb(shipped)
                    except _FuturesTimeout:
                        break_kind = break_kind or "timeout"
                        failed.append(i)
                        obs_trace.event("timeout", unit=i,
                                        timeout=retry.timeout)
                        last_outcome[i] = _timeout_results(
                            unit_list[i], batch, retry
                        )
                        continue
                    except BrokenExecutor:
                        break_kind = "broken"
                        failed.append(i)
                        obs_trace.event("worker_lost", unit=i)
                        obs_metrics.inc("pool.worker_lost")
                        last_outcome[i] = _worker_lost_results(
                            unit_list[i], batch
                        )
                        continue
                    except Exception as error:  # defensive: capture happens
                        failed.append(i)       # worker-side, so this is rare
                        last_outcome[i] = [
                            TrialResult.from_error(spec, error)
                            for spec in _unit_specs(unit_list[i], batch)
                        ]
                        continue
                    outcome = _rebind_coordinates(unit_list[i], batch, outcome)
                    if all(result.ok for result in outcome):
                        results[i] = outcome
                        _journal_unit(journal, unit_list[i], batch, outcome)
                        del remaining[i]
                    else:
                        failed.append(i)
                        last_outcome[i] = outcome
                # Resolve or re-queue this wave's failures.
                backoff_from = None
                for i in failed:
                    attempt = remaining[i]
                    if attempt + 1 >= retry.max_attempts:
                        results[i] = last_outcome[i]
                        _journal_unit(
                            journal, unit_list[i], batch, last_outcome[i]
                        )
                        del remaining[i]
                    else:
                        remaining[i] = attempt + 1
                        obs_trace.event("retry", unit=i, attempt=attempt + 1)
                        obs_metrics.inc("retry.attempts")
                        backoff_from = (
                            attempt if backoff_from is None
                            else max(backoff_from, attempt)
                        )
                if break_kind is not None:
                    _kill_pool(pool)
                    rebuilds += 1
                    obs_trace.event("pool_rebuild", kind=break_kind,
                                    rebuilds=rebuilds)
                    obs_metrics.inc("pool.rebuilds")
                    pool = (
                        make_pool() if rebuilds <= retry.max_pool_rebuilds
                        else None
                    )
                if remaining and backoff_from is not None:
                    retry.sleep(retry.backoff(backoff_from))
            return [
                result
                for i in range(len(unit_list))
                for result in results[i]
            ]
        finally:
            _ACTIVE_TASK = None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


@contextlib.contextmanager
def shared_cache(workers: int | None = None,
                 max_entries: int = 128) -> Iterator[InstanceCache]:
    """Yield an :class:`InstanceCache` matched to the execution mode.

    Serial runs get a memory-only cache (same-process reuse suffices).
    Parallel runs add a temporary disk tier: instances a worker builds
    die with the worker, so only the disk tier lets the workers of a
    *later* sweep reuse what an earlier sweep generated.  The directory
    is removed when the context exits.
    """
    if resolve_workers(workers) <= 1:
        yield InstanceCache(max_entries=max_entries)
        return
    with tempfile.TemporaryDirectory(prefix="repro-instance-cache-") as tmp:
        yield InstanceCache(max_entries=max_entries, disk_dir=tmp)


def default_executor(workers: int | None = None) -> Executor:
    """Serial for one worker, parallel otherwise (after env resolution)."""
    count = resolve_workers(workers)
    return SerialExecutor() if count <= 1 else ParallelExecutor(count)


def _deal_batches(batches: Sequence[TrialBatch],
                  flat: list[TrialResult],
                  spec_list: Sequence[TrialSpec]) -> list[TrialResult]:
    """Deal batch-grouped results back out in input spec order (a no-op
    for the usual point-major spec lists)."""
    if len(batches) <= 1:
        return flat
    queues: dict[int, deque[TrialResult]] = {}
    position = 0
    for group in batches:
        queues[group.point_index] = deque(
            flat[position:position + len(group.specs)]
        )
        position += len(group.specs)
    return [queues[spec.point_index].popleft() for spec in spec_list]


def run_trials(protocol: ProtocolFn, instance_fn: InstanceFn,
               specs: Sequence[TrialSpec], *,
               workers: int | None = None,
               executor: Executor | None = None,
               cache: InstanceCache | None = None,
               instance_key: str | None = None,
               metrics: MetricsFn | None = None,
               batch: bool = False,
               retry: RetryPolicy | None = None,
               journal: RunJournal | str | os.PathLike | None = None,
               resume: bool = False,
               fault_plan: "FaultPlan | None" = None,
               profile: bool = False) -> list[TrialResult]:
    """One-call convenience: wrap the callables in a task and execute.

    ``batch=True`` routes through the per-grid-point batched engine
    (instances built once per batch, coins from one batched
    construction); ``batch=False`` is the per-trial reference path.
    Both return the same records in the same (input spec) order.

    Fault-tolerance knobs (any of them engages the supervised engine;
    all default off, leaving the historical paths byte-for-byte):

    retry:
        A :class:`RetryPolicy` — error capture, per-unit wall-clock
        timeout, bounded deterministic retry-with-backoff, pool rebuild
        on worker death, serial degradation when the pool cannot be
        revived.
    journal:
        A :class:`~repro.runtime.journal.RunJournal` (or a path one is
        opened at — and closed again — for the duration of the call).
        Every completed ok-result is durably appended as it exists.
    resume:
        With a journal: specs already recorded are *not* re-run; their
        journaled results are returned verbatim, byte-identical to what
        an uninterrupted run would have produced.
    fault_plan:
        A :class:`~repro.runtime.faults.FaultPlan` injecting
        deterministic failures (raise / hang / kill-worker) into chosen
        trials — the CI seam that proves every recovery path above.
    profile:
        Attach a per-trial phase cost profile to
        ``TrialResult.extras["profile"]`` (opt-in; changes the record —
        see :mod:`repro.obs.profile`).
    """
    with obs_trace.span("run_trials", specs=len(specs), batch=batch):
        results = _run_trials_impl(
            protocol, instance_fn, specs, workers=workers,
            executor=executor, cache=cache, instance_key=instance_key,
            metrics=metrics, batch=batch, retry=retry, journal=journal,
            resume=resume, fault_plan=fault_plan, profile=profile,
        )
    registry = obs_metrics.get_metrics()
    if registry is not None:
        for result in results:
            registry.inc(f"trial.{result.status}")
    return results


def _run_trials_impl(protocol: ProtocolFn, instance_fn: InstanceFn,
                     specs: Sequence[TrialSpec], *,
                     workers: int | None,
                     executor: Executor | None,
                     cache: InstanceCache | None,
                     instance_key: str | None,
                     metrics: MetricsFn | None,
                     batch: bool,
                     retry: RetryPolicy | None,
                     journal: RunJournal | str | os.PathLike | None,
                     resume: bool,
                     fault_plan: "FaultPlan | None",
                     profile: bool) -> list[TrialResult]:
    task = TrialTask(instance_fn, protocol, cache=cache,
                     instance_key=instance_key, metrics=metrics,
                     fault_plan=fault_plan, profile=profile)
    chosen = executor if executor is not None else default_executor(workers)
    supervised = (
        retry is not None or journal is not None or resume
        or fault_plan is not None
    )
    if not supervised:
        if not batch:
            return chosen.run_trials(task, specs)
        spec_list = list(specs)
        batches = batch_specs(spec_list)
        return _deal_batches(
            batches, chosen.run_batches(task, batches), spec_list
        )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal")
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    owns_journal = journal is not None and not isinstance(journal, RunJournal)
    journal_obj: RunJournal | None = (
        RunJournal(journal) if owns_journal else journal  # type: ignore[arg-type]
    )
    spec_list = list(specs)
    try:
        replayed: dict[int, TrialResult] = {}
        if resume and journal_obj is not None:
            for index, spec in enumerate(spec_list):
                recorded = journal_obj.get(spec)
                if recorded is not None:
                    # Rebuild the record on the caller's own spec
                    # coordinate objects, exactly as a live
                    # ``TrialResult.from_outcome`` would — this keeps
                    # the within-point object sharing (and hence the
                    # pickled byte stream of the whole record list)
                    # identical to an uninterrupted run.
                    replayed[index] = replace(
                        recorded,
                        point_index=spec.point_index,
                        trial_index=spec.trial_index,
                        n=spec.n, d=spec.d, k=spec.k, seed=spec.seed,
                    )
        if replayed:
            obs_metrics.inc("journal.replayed", len(replayed))
            obs_trace.event("resume", replayed=len(replayed),
                            pending=len(spec_list) - len(replayed))
        pending_indices = [
            i for i in range(len(spec_list)) if i not in replayed
        ]
        pending = [spec_list[i] for i in pending_indices]
        if batch:
            batches = batch_specs(pending)
            flat = chosen.run_supervised(
                task, batches, retry=policy, journal=journal_obj, batch=True
            )
            fresh = _deal_batches(batches, flat, pending)
        else:
            fresh = chosen.run_supervised(
                task, pending, retry=policy, journal=journal_obj, batch=False
            )
        merged: list[TrialResult | None] = [None] * len(spec_list)
        for index, result in zip(pending_indices, fresh):
            merged[index] = result
        for index, result in replayed.items():
            merged[index] = result
        return merged  # type: ignore[return-value]
    finally:
        if owns_journal and journal_obj is not None:
            journal_obj.close()

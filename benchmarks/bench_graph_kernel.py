"""Graph kernel benchmarks: bitset vs set, and packed vs bignum.

Two generations of kernel rewrites, one driver:

* **bitset vs set** (PR 2's bar): the bignum mask kernel against the
  original adjacency-``set`` implementation on the small reference
  grids.
* **packed vs bignum** (the word-packed kernel's bar): the numpy uint64
  backend against the bignum backend on large grids up to n = 10^5,
  where the packed kernel's wedge-scan natives (O(1) word-addressable
  bit probes) replace the edge-AND sweep.  Instances are built once on
  the bignum backend and converted losslessly via ``to_backend``, so
  both kernels see bit-identical graphs and outputs are asserted equal.

The packed acceptance bar: >= 3x on ``count_triangles`` and
``greedy_triangle_packing`` at the largest quick-grid n, identical
outputs, emitted to ``BENCH_packed_kernel.json`` for the CI artifact.

``--scale-check`` additionally reruns a Table 1 grid point (the T1-R2a
sim-low configuration) and the row X-2 pattern sweep at n = 10^5 under
``REPRO_GRAPH_BACKEND=bigint`` and ``=packed`` with fresh instances, and
asserts the full trial records are byte-identical — the end-to-end
pinned-seed guarantee at the scale the packed kernel exists for.

Usage::

    python benchmarks/bench_graph_kernel.py                  # full grids
    python benchmarks/bench_graph_kernel.py --quick          # CI smoke
    python benchmarks/bench_graph_kernel.py --scale-check    # + n=1e5 identity
    python benchmarks/bench_graph_kernel.py --check-baseline # vs committed
    python benchmarks/bench_graph_kernel.py --json PATH      # artifact path

Also collected by ``pytest benchmarks/`` as correctness+speedup tests
on the smallest qualifying sizes.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

from baseline import check_baseline
from timing_helpers import best_of

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import (
    PATTERN_ROW_PATTERNS,
    PatternProtocol,
    PlantedPatternBuilder,
    far_disjoint_instance,
)
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.subgraph_detection import SubgraphParams
from repro.graphs.generators import planted_disjoint_triangles
from repro.graphs.graph import Graph
from repro.graphs.reference import (
    SetGraph,
    count_triangles_reference,
    greedy_triangle_packing_reference,
    iter_triangles_reference,
)
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
    iter_triangles,
)

#: (n, d): the Table 1 density regimes at kernel-relevant sizes.  The
#: bitset advantage grows with density (set sizes scale with d, mask
#: width with n): at these reference points it is 3.5-5.5x; at very
#: sparse large-n points (d=8, n=8000) it compresses to ~2-3x.
FULL_GRID = [(2000, 8.0), (2000, 16.0), (4000, 16.0)]
QUICK_GRID = [(2000, 16.0)]

SPEEDUP_FLOOR = 3.0

#: (n, d) for packed vs bignum: the regime the packed kernel opens.  The
#: wedge scan's advantage grows with n (the bignum edge-AND pays n/30
#: digits per probe, the packed probe pays one word): ~4x at 32768,
#: ~10x at 10^5 on d=8 planted instances.
PACKED_FULL_GRID = [(32768, 8.0), (65536, 8.0), (100000, 8.0)]
PACKED_QUICK_GRID = [(8192, 8.0), (32768, 8.0)]

PACKED_SPEEDUP_FLOOR = 3.0
#: Cases gated by the packed floor, at the largest n of the grid in use.
PACKED_GATED = ("count_triangles", "greedy_packing")

SCALE_CHECK_N = 100_000


def build_instance(n: int, d: float, seed: int = 1) -> tuple[Graph, SetGraph]:
    """The same planted epsilon-far instance in both backends."""
    instance = planted_disjoint_triangles(
        n, n // 10, seed=seed, background_degree=d
    )
    bitset = instance.graph
    reference = SetGraph(n, bitset.edges())
    assert bitset.num_edges == reference.num_edges
    return bitset, reference


def run_grid(grid, repeats: int = 7) -> list[dict]:
    rows = []
    for n, d in grid:
        bitset, reference = build_instance(n, d)
        cases = [
            ("count_triangles", count_triangles, count_triangles_reference),
            ("greedy_packing", greedy_triangle_packing,
             greedy_triangle_packing_reference),
            ("iter_triangles", lambda g: list(iter_triangles(g)),
             lambda g: list(iter_triangles_reference(g))),
        ]
        for name, fast_fn, slow_fn in cases:
            fast_time, fast_out = best_of(repeats, fast_fn, bitset)
            slow_time, slow_out = best_of(repeats, slow_fn, reference)
            assert fast_out == slow_out, (
                f"{name} output mismatch at n={n}, d={d}"
            )
            rows.append({
                "n": n, "d": d, "case": name,
                "bitset_s": fast_time, "set_s": slow_time,
                "speedup": slow_time / max(fast_time, 1e-12),
            })
    return rows


def build_packed_instance(n: int, d: float,
                          seed: int = 1) -> tuple[Graph, Graph]:
    """One planted instance, bit-identical on both mask kernels."""
    instance = planted_disjoint_triangles(
        n, n // 10, seed=seed, background_degree=d, backend="bigint"
    )
    bigint = instance.graph
    packed = bigint.to_backend("packed")
    assert packed.num_edges == bigint.num_edges
    return bigint, packed


def run_packed_grid(grid, repeats: int = 3) -> list[dict]:
    """packed-vs-bignum timings; outputs asserted identical per case."""
    rows = []
    for n, d in grid:
        bigint, packed = build_packed_instance(n, d)
        cases = [
            ("count_triangles", count_triangles),
            ("greedy_packing", greedy_triangle_packing),
            ("find_triangle", find_triangle),
        ]
        for name, fn in cases:
            packed_time, packed_out = best_of(repeats, fn, packed)
            bigint_time, bigint_out = best_of(repeats, fn, bigint)
            assert packed_out == bigint_out, (
                f"{name} output mismatch at n={n}, d={d}"
            )
            rows.append({
                "n": n, "d": d, "case": name,
                "bigint_s": bigint_time, "packed_s": packed_time,
                "speedup": bigint_time / max(packed_time, 1e-12),
            })
    return rows


def print_table(rows) -> None:
    header = f"{'n':>6} {'d':>5} {'case':<16} {'set':>9} {'bitset':>9} {'x':>7}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['d']:>5.1f} {row['case']:<16} "
            f"{row['set_s'] * 1e3:>7.1f}ms {row['bitset_s'] * 1e3:>7.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def print_packed_table(rows) -> None:
    header = (
        f"{'n':>7} {'d':>5} {'case':<16} {'bigint':>10} {'packed':>10} "
        f"{'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>7} {row['d']:>5.1f} {row['case']:<16} "
            f"{row['bigint_s'] * 1e3:>8.1f}ms "
            f"{row['packed_s'] * 1e3:>8.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: gated cases must clear SPEEDUP_FLOOR."""
    failures = []
    for row in rows:
        gated = row["case"] in ("count_triangles", "greedy_packing")
        if gated and row["n"] >= 2000 and row["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{row['case']} at n={row['n']}: "
                f"{row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
            )
    return failures


def check_packed_floor(rows) -> list[str]:
    """Packed bar: gated cases clear the floor at the grid's largest n."""
    if not rows:
        return []
    top_n = max(row["n"] for row in rows)
    failures = []
    for row in rows:
        if (
            row["case"] in PACKED_GATED
            and row["n"] == top_n
            and row["speedup"] < PACKED_SPEEDUP_FLOOR
        ):
            failures.append(
                f"packed {row['case']} at n={row['n']}: "
                f"{row['speedup']:.1f}x < {PACKED_SPEEDUP_FLOOR}x"
            )
    return failures


def run_scale_check(n: int = SCALE_CHECK_N) -> list[str]:
    """Pinned-seed record identity, bigint vs packed, at n = 10^5.

    Two end-to-end pipelines at the target scale, each run once per
    backend (selected via ``REPRO_GRAPH_BACKEND``, fresh instances per
    run — no shared cache, so the second run cannot reuse the first
    backend's graphs):

    * the T1-R2a simultaneous-low configuration on its epsilon-far
      disjoint-triangle instance (d = 3 keeps the requested farness
      under the n//3 disjointness cap, so no RuntimeWarning fires);
    * the row X-2 pattern sweep: every catalog representative through
      the planted-H builder and the generalized induced-sample tester.

    Returns mismatch descriptions (empty = byte-identical records).
    """
    failures: list[str] = []
    sim_params = SimLowParams(epsilon=0.2, delta=0.2)
    pattern_params = SubgraphParams(epsilon=0.15, c=1.6, rounds=4)
    k = 3

    sweeps: list[tuple[str, object, object]] = [(
        "sim-low@T1-R2a",
        lambda partition, s: find_triangle_sim_low(
            partition, sim_params, seed=s
        ),
        far_disjoint_instance(epsilon=0.2, k=k),
    )]
    for pattern in PATTERN_ROW_PATTERNS:
        sweeps.append((
            f"patterns@X-2:{pattern.name}",
            PatternProtocol(pattern, pattern_params),
            PlantedPatternBuilder(pattern, k),
        ))

    for label, protocol, instance_fn in sweeps:
        grid = [(n, 3.0 if label.startswith("sim-low") else 4.0, k)]
        per_backend = {}
        for backend in ("bigint", "packed"):
            os.environ["REPRO_GRAPH_BACKEND"] = backend
            try:
                per_backend[backend] = run_sweep(
                    protocol, instance_fn, grid, trials=2, seed=0
                ).records
            finally:
                os.environ.pop("REPRO_GRAPH_BACKEND", None)
        if per_backend["bigint"] != per_backend["packed"]:
            failures.append(f"{label}: records differ across backends")
        else:
            bits = [r.bits for r in per_backend["bigint"]]
            print(
                f"scale-check {label}: n={n} records identical "
                f"(bits={bits})"
            )
    return failures


def write_json(packed_rows, path: Path, scale_check=None) -> None:
    payload = {
        "bench": "packed_kernel",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "speedup_floor": PACKED_SPEEDUP_FLOOR,
        "gated_cases": list(PACKED_GATED),
        "rows": packed_rows,
    }
    if scale_check is not None:
        payload["scale_check"] = scale_check
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_kernel_speedup_and_identical_outputs(benchmark, print_row):
    """pytest entry: quick grid, outputs identical, floor respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_GRID, repeats=2), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"kernel {row['case']} n={row['n']}: {row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['case']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_floor(rows)


def test_packed_kernel_speedup_and_identical_outputs(benchmark, print_row):
    """pytest entry: packed quick grid, identical outputs, 3x floor."""
    rows = benchmark.pedantic(
        lambda: run_packed_grid(PACKED_QUICK_GRID, repeats=2),
        rounds=1, iterations=1,
    )
    for row in rows:
        print_row(
            f"packed {row['case']} n={row['n']}: {row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['case']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_packed_floor(rows)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_path = Path(__file__).with_name("BENCH_packed_kernel.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print(
                "usage: bench_graph_kernel.py [--quick] [--scale-check] "
                "[--check-baseline] [--json PATH]"
            )
            return 2
        json_path = Path(argv[operand])

    rows = run_grid(QUICK_GRID if quick else FULL_GRID)
    print_table(rows)
    failures = check_floor(rows)

    packed_rows = run_packed_grid(
        PACKED_QUICK_GRID if quick else PACKED_FULL_GRID,
        repeats=2 if quick else 3,
    )
    print_packed_table(packed_rows)
    failures.extend(check_packed_floor(packed_rows))

    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy.  Only
        # the gated cases: find_triangle's early-exit probe finishes in
        # ~2ms, so its ratio is all noise run to run.
        gated_rows = [r for r in packed_rows if r["case"] in PACKED_GATED]
        baseline_failures = check_baseline(
            gated_rows, Path(__file__).with_name("BENCH_packed_kernel.json")
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")

    scale_check = None
    if "--scale-check" in argv:
        scale_failures = run_scale_check()
        failures.extend(scale_failures)
        scale_check = {
            "n": SCALE_CHECK_N,
            "identical": not scale_failures,
        }

    write_json(packed_rows, json_path, scale_check)
    print(f"wrote {json_path}")

    if failures:
        print("SPEEDUP FLOOR MISSED / IDENTITY BROKEN:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: gated cases >= {SPEEDUP_FLOOR}x (bitset) and "
        f">= {PACKED_SPEEDUP_FLOOR}x (packed), outputs identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Bitset graph kernel vs the set-based reference backend.

The triangle hot path (``count_triangles``, ``greedy_triangle_packing``)
is where every protocol, generator, and Table 1 sweep spends its time.
This driver builds identical instances in both backends on the reference
grids, checks the outputs match exactly, and measures the speedup of the
bitset kernel (one adjacency-mask int per vertex, common neighbourhoods
via a single ``&``) over the original adjacency-``set`` implementation.

The kernel PR's acceptance bar: >= 3x on ``count_triangles`` and
``greedy_triangle_packing`` at n >= 2000, with identical outputs.

Usage::

    python benchmarks/bench_graph_kernel.py            # full grid
    python benchmarks/bench_graph_kernel.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+speedup test
on the smallest qualifying size.
"""

from __future__ import annotations

import sys

from timing_helpers import best_of

from repro.graphs.generators import planted_disjoint_triangles
from repro.graphs.graph import Graph
from repro.graphs.reference import (
    SetGraph,
    count_triangles_reference,
    greedy_triangle_packing_reference,
    iter_triangles_reference,
)
from repro.graphs.triangles import (
    count_triangles,
    greedy_triangle_packing,
    iter_triangles,
)

#: (n, d): the Table 1 density regimes at kernel-relevant sizes.  The
#: bitset advantage grows with density (set sizes scale with d, mask
#: width with n): at these reference points it is 3.5-5.5x; at very
#: sparse large-n points (d=8, n=8000) it compresses to ~2-3x.
FULL_GRID = [(2000, 8.0), (2000, 16.0), (4000, 16.0)]
QUICK_GRID = [(2000, 16.0)]

SPEEDUP_FLOOR = 3.0


def build_instance(n: int, d: float, seed: int = 1) -> tuple[Graph, SetGraph]:
    """The same planted epsilon-far instance in both backends."""
    instance = planted_disjoint_triangles(
        n, n // 10, seed=seed, background_degree=d
    )
    bitset = instance.graph
    reference = SetGraph(n, bitset.edges())
    assert bitset.num_edges == reference.num_edges
    return bitset, reference


def run_grid(grid, repeats: int = 7) -> list[dict]:
    rows = []
    for n, d in grid:
        bitset, reference = build_instance(n, d)
        cases = [
            ("count_triangles", count_triangles, count_triangles_reference),
            ("greedy_packing", greedy_triangle_packing,
             greedy_triangle_packing_reference),
            ("iter_triangles", lambda g: list(iter_triangles(g)),
             lambda g: list(iter_triangles_reference(g))),
        ]
        for name, fast_fn, slow_fn in cases:
            fast_time, fast_out = best_of(repeats, fast_fn, bitset)
            slow_time, slow_out = best_of(repeats, slow_fn, reference)
            assert fast_out == slow_out, (
                f"{name} output mismatch at n={n}, d={d}"
            )
            rows.append({
                "n": n, "d": d, "case": name,
                "bitset_s": fast_time, "set_s": slow_time,
                "speedup": slow_time / max(fast_time, 1e-12),
            })
    return rows


def print_table(rows) -> None:
    header = f"{'n':>6} {'d':>5} {'case':<16} {'set':>9} {'bitset':>9} {'x':>7}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['d']:>5.1f} {row['case']:<16} "
            f"{row['set_s'] * 1e3:>7.1f}ms {row['bitset_s'] * 1e3:>7.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: gated cases must clear SPEEDUP_FLOOR."""
    failures = []
    for row in rows:
        gated = row["case"] in ("count_triangles", "greedy_packing")
        if gated and row["n"] >= 2000 and row["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{row['case']} at n={row['n']}: "
                f"{row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
            )
    return failures


def test_kernel_speedup_and_identical_outputs(benchmark, print_row):
    """pytest entry: quick grid, outputs identical, floor respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_GRID, repeats=2), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"kernel {row['case']} n={row['n']}: {row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['case']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    grid = QUICK_GRID if "--quick" in argv else FULL_GRID
    rows = run_grid(grid)
    print_table(rows)
    failures = check_floor(rows)
    if failures:
        print("SPEEDUP FLOOR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: all gated cases >= {SPEEDUP_FLOOR}x, outputs identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""X-2: Section 3.1 building-block costs.

The paper prices each primitive; this bench measures them:

* degree approximation (Theorem 3.1): cost grows ~log log d, not d — the
  whole point versus the Ω(k d) exact bound under duplication;
* random incident edge: O(k log n);
* the no-duplication degree shortcut (Lemma 3.2) undercuts Theorem 3.1.
"""

from __future__ import annotations

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.core.building_blocks import random_incident_edge
from repro.core.degree_approx import (
    DegreeApproxParams,
    approx_degree,
    approx_degree_no_duplication,
)
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    partition_disjoint,
    partition_with_duplication,
)

PARAMS = DegreeApproxParams(alpha=2.0, tau=0.1, experiments_override=16)


def star(degree: int) -> Graph:
    return Graph(degree + 1, [(0, i) for i in range(1, degree + 1)])


def test_degree_approx_loglog_cost(benchmark, print_row):
    degrees = [8, 64, 512, 4096]

    def sweep():
        costs = []
        for degree in degrees:
            graph = star(degree)
            partition = partition_with_duplication(graph, 4, seed=1)
            rt = CoordinatorRuntime(
                make_players(partition), SharedRandomness(2)
            )
            approx_degree(rt, 0, PARAMS)
            costs.append(rt.ledger.total_bits)
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["bits_by_degree"] = dict(zip(degrees, costs))
    print_row(
        "X-2a     approx_degree cost vs degree: "
        + ", ".join(f"d={d}: {c}b" for d, c in zip(degrees, costs))
    )
    # Degree grew 512x; cost must grow far slower than linearly — the
    # exact-under-duplication alternative would be >= k*d bits.
    assert costs[-1] < 8 * costs[0]
    assert costs[-1] < 4 * 4096  # beats the Omega(k d) exact bound


def test_degree_accuracy_across_degrees(benchmark, print_row):
    degrees = [16, 256, 2048]

    def sweep():
        ratios = []
        for degree in degrees:
            graph = star(degree)
            partition = partition_with_duplication(graph, 4, seed=3)
            rt = CoordinatorRuntime(
                make_players(partition), SharedRandomness(4)
            )
            estimate = approx_degree(rt, 0, PARAMS)
            ratios.append(estimate.value / degree)
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["ratios"] = dict(zip(degrees, ratios))
    print_row(
        "X-2b     approx_degree accuracy (estimate/true): "
        + ", ".join(f"d={d}: {r:.2f}" for d, r in zip(degrees, ratios))
    )
    for ratio in ratios:
        assert 1 / (2 * PARAMS.alpha) <= ratio <= 2 * PARAMS.alpha


def test_nodup_shortcut_cheaper(benchmark, print_row):
    degree = 1024
    graph = star(degree)

    def run():
        disjoint = partition_disjoint(graph, 4, seed=5)
        rt_full = CoordinatorRuntime(
            make_players(disjoint), SharedRandomness(6)
        )
        approx_degree(rt_full, 0, PARAMS)
        rt_short = CoordinatorRuntime(
            make_players(disjoint), SharedRandomness(6)
        )
        approx_degree_no_duplication(rt_short, 0, alpha=2.0)
        return rt_full.ledger.total_bits, rt_short.ledger.total_bits

    full_bits, short_bits = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["theorem31_bits"] = full_bits
    benchmark.extra_info["lemma32_bits"] = short_bits
    print_row(
        f"X-2c     degree at d={degree}: Theorem 3.1 {full_bits}b vs "
        f"Lemma 3.2 (no dup) {short_bits}b"
    )
    assert short_bits < full_bits


def test_random_incident_edge_cost(benchmark, print_row):
    sizes = [64, 512, 4096]

    def sweep():
        costs = []
        for n in sizes:
            graph = Graph(n, [(0, i) for i in range(1, min(n, 30))])
            partition = partition_with_duplication(graph, 4, seed=7)
            rt = CoordinatorRuntime(
                make_players(partition), SharedRandomness(8)
            )
            random_incident_edge(rt, 0)
            costs.append(rt.ledger.total_bits)
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["bits_by_n"] = dict(zip(sizes, costs))
    print_row(
        "X-2d     random_incident_edge cost (O(k log n)): "
        + ", ".join(f"n={n}: {c}b" for n, c in zip(sizes, costs))
    )
    # log n doubles from 64 to 4096: cost grows, but gently.
    assert costs[-1] <= 3 * costs[0]

"""X-3, X-4, X-5, X-6: the ablations DESIGN.md calls out.

* X-3 blackboard (Theorem 3.23): posting edges once saves the factor-k
  broadcast of the coordinator model.
* X-4 duplication (Corollaries 3.25/3.27): duplication costs ~k in the
  simultaneous testers.
* X-5 embedding (Lemma 4.17): bounds transfer down in degree — the padded
  instance is exactly as hard, and the transferred bound formulas match
  the direct ones on the diagonal.
* X-6 streaming corollary: reservoir space vs success on µ, and the chain
  reduction's per-hop cost = streaming state.
"""

from __future__ import annotations

import math

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import tuned_unrestricted_params
from repro.comm.encoding import edge_bits
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.unrestricted import find_triangle_unrestricted
from repro.runtime import InstanceCache
from repro.graphs.generators import (
    far_instance,
    triangle_free_degree_spread,
)
from repro.graphs.partition import (
    partition_all_to_all,
    partition_disjoint,
)
from repro.lowerbounds.embedding import (
    embed_mu_for_degree,
    transferred_oneway_bound,
    transferred_simultaneous_bound,
)
from repro.streaming.reduction import streaming_to_oneway
from repro.streaming.triangle_stream import ReservoirTriangleFinder


def test_x3_blackboard_saves(benchmark, print_row):
    """Both model variants route through the runtime with a shared
    instance cache and key, so the blackboard run replays the exact
    partition the coordinator run was measured on."""
    from dataclasses import replace

    n, d, k = 2048, 8.0, 8
    params = tuned_unrestricted_params(k, d)
    grid = [(n, d, k)]

    def instance(n_: int, d_: float, seed: int):
        graph = triangle_free_degree_spread(
            n_, d_, int(math.sqrt(n_ * d_ / 0.2)), seed=seed
        )
        return partition_disjoint(graph, k, seed=seed + 1)

    def run():
        cache = InstanceCache()
        coordinator = run_sweep(
            lambda partition, s: find_triangle_unrestricted(
                partition, params, seed=s
            ),
            instance, grid, trials=1, seed=1,
            cache=cache, instance_key="x3-trifree",
        )
        blackboard = run_sweep(
            lambda partition, s: find_triangle_unrestricted(
                partition, replace(params, blackboard=True), seed=s
            ),
            instance, grid, trials=1, seed=1,
            cache=cache, instance_key="x3-trifree",
        )
        assert cache.hits >= 1, "blackboard run must reuse the instance"
        return coordinator.records[0].bits, blackboard.records[0].bits

    coordinator_bits, blackboard_bits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    saving = coordinator_bits / max(1, blackboard_bits)
    benchmark.extra_info["coordinator_bits"] = coordinator_bits
    benchmark.extra_info["blackboard_bits"] = blackboard_bits
    print_row(
        f"X-3      blackboard ablation (k={k}): coordinator "
        f"{coordinator_bits}b vs blackboard {blackboard_bits}b "
        f"({saving:.2f}x saved on the edge-posting term)"
    )
    assert blackboard_bits < coordinator_bits


def test_x4_duplication_costs_k(benchmark, print_row):
    """Disjoint and all-to-all partitionings run at the same spec seed,
    so both protocols see the same underlying far instance."""
    n, k = 900, 6
    d = math.sqrt(n)
    params = SimHighParams(epsilon=0.2, delta=0.2, c=2.0)
    grid = [(n, d, k)]

    def disjoint(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_disjoint(built.graph, k, seed=seed + 1)

    def duplicated(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_all_to_all(built.graph, k)

    def protocol(partition, seed: int):
        return find_triangle_sim_high(partition, params, seed=seed)

    def run():
        disjoint_bits = run_sweep(
            protocol, disjoint, grid, trials=1, seed=4
        ).records[0].bits
        duplicated_bits = run_sweep(
            protocol, duplicated, grid, trials=1, seed=4
        ).records[0].bits
        return disjoint_bits, duplicated_bits

    disjoint_bits, duplicated_bits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = duplicated_bits / max(1, disjoint_bits)
    benchmark.extra_info["ratio"] = ratio
    print_row(
        f"X-4      duplication ablation (k={k}, sim-high): "
        f"{ratio:.1f}x cost under full duplication (paper: ~k)"
    )
    assert ratio > k / 3


def test_x5_embedding_transfers(benchmark, print_row):
    n = 6000

    def run():
        instance = embed_mu_for_degree(n, 2.0, gamma=1.4, seed=7)
        from repro.graphs.triangles import count_triangles

        return instance, count_triangles(instance.graph)

    instance, triangles = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = instance.core_size ** 0.25  # Omega(n'^{1/4}) at the core
    transferred = transferred_oneway_bound(n, instance.achieved_degree)
    benchmark.extra_info["core_size"] = instance.core_size
    benchmark.extra_info["direct_bound"] = direct
    benchmark.extra_info["transferred_bound"] = transferred
    print_row(
        f"X-5      embedding: core n'={instance.core_size} "
        f"(deg {instance.core_average_degree:.1f}) padded to n={n} "
        f"(deg {instance.achieved_degree:.2f}); bound n'^0.25={direct:.1f} "
        f"vs (nd)^(1/6)={transferred:.1f}; triangles preserved={triangles}"
    )
    # Lemma 4.17's bookkeeping: the two bound forms agree up to constants.
    assert 0.4 <= direct / transferred <= 2.5
    assert triangles > 0
    sim_bound = transferred_simultaneous_bound(n, instance.achieved_degree)
    assert sim_bound > transferred  # (nd)^{1/3} dominates (nd)^{1/6}


def test_x6_streaming_chain_cost(benchmark, print_row):
    from repro.lowerbounds.distributions import MuDistribution

    mu = MuDistribution(part_size=60, gamma=1.3)
    reservoir = 64

    def run():
        sample = mu.sample(seed=8)
        chain = streaming_to_oneway(
            sample.partition,
            lambda: ReservoirTriangleFinder(
                sample.graph.n, reservoir, seed=9
            ),
        )
        return sample, chain

    sample, chain = benchmark.pedantic(run, rounds=1, iterations=1)
    per_hop_cap = (reservoir + 1) * edge_bits(sample.graph.n)
    benchmark.extra_info["chain_bits"] = chain.total_bits
    benchmark.extra_info["per_hop_cap"] = per_hop_cap
    print_row(
        f"X-6      streaming->one-way chain on mu (n={sample.graph.n}): "
        f"{chain.total_bits}b over 2 hops (cap {per_hop_cap}b/hop = "
        "reservoir state)"
    )
    assert chain.total_bits <= 2 * per_hop_cap

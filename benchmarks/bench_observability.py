"""Observability overhead on the sim-low reference sweep (PR 10).

The observability subsystem (``repro.obs``) promises two things besides
byte-identical records: enabled tracing+metrics cost little, and the
*disabled* instrumentation — one module-global load plus a ``None``
check at every seam — costs essentially nothing.  This driver measures
both on the repo's bread-and-butter workload, a batched serial sim-low
detection sweep:

* ``stub``     — the obs module helpers replaced by literal no-ops, the
  closest approximation of the pre-PR-10 uninstrumented runtime;
* ``disabled`` — the shipped code with no recorder/registry installed
  (the default every user sees);
* ``traced``   — a live ``TraceRecorder`` and ``MetricsRegistry``
  installed for the whole sweep.

Gates, asserted per grid row on interleaved, per-repeat-paired timings
(the minimum observed ratio — noise only ever inflates a ratio, so the
smallest pairing is the best estimate of the true seam cost):

* ``traced / disabled``  <= 1.1x  (the ISSUE's tracing-overhead gate);
* ``disabled / stub``    <= 1.02x (the disabled seams are free);
* traced records byte-identical to the disabled run's.

Results go to ``BENCH_observability.json`` (or ``--json PATH``).

Usage::

    python benchmarks/bench_observability.py            # full grid
    python benchmarks/bench_observability.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+overhead test
on the quick grid.
"""

from __future__ import annotations

import contextlib
import json
import pickle
import platform
import sys
import tempfile
from pathlib import Path

from timing_helpers import best_of, quiet_generator_shortfall

from repro.analysis.experiments import DefaultInstanceBuilder, run_sweep
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry

FULL_NS = [2000, 3000, 4000]
QUICK_NS = [2000]

TRACED_CEILING = 1.1
DISABLED_CEILING = 1.02
D = 8.0
K = 3
TRIALS = 16
SWEEP_SEED = 7
REPEATS = 5

PARAMS = SimLowParams(epsilon=0.2, delta=0.2)


def sim_low_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_low(partition, PARAMS, seed=seed, shared=shared)


@contextlib.contextmanager
def stubbed_obs():
    """Swap the obs seam helpers for literal no-ops.

    The disabled path already costs only a global load and a ``None``
    check; the stub removes even that, giving the reference point the
    ``disabled/stub`` ratio is measured against.
    """
    null_span = obs_trace._NULL_SPAN
    null_timer = obs_metrics._NULL_TIMER
    null_phase = obs_profile._NULL_PHASE
    saved = [
        (obs_trace, "span", obs_trace.span),
        (obs_trace, "event", obs_trace.event),
        (obs_metrics, "inc", obs_metrics.inc),
        (obs_metrics, "gauge", obs_metrics.gauge),
        (obs_metrics, "observe", obs_metrics.observe),
        (obs_metrics, "timer", obs_metrics.timer),
        (obs_profile, "phase", obs_profile.phase),
        (obs_profile, "charge", obs_profile.charge),
    ]
    obs_trace.span = lambda name, **attrs: null_span
    obs_trace.event = lambda name, **attrs: None
    obs_metrics.inc = lambda name, value=1: None
    obs_metrics.gauge = lambda name, value: None
    obs_metrics.observe = lambda name, seconds: None
    obs_metrics.timer = lambda name: null_timer
    obs_profile.phase = lambda name: null_phase
    obs_profile.charge = lambda name, seconds: None
    try:
        yield
    finally:
        for module, name, original in saved:
            setattr(module, name, original)


def _sweep(n: int, **kwargs):
    return run_sweep(
        sim_low_protocol, DefaultInstanceBuilder(epsilon=0.2, k=K),
        [(n, D, K)], trials=TRIALS, seed=SWEEP_SEED, workers=1, **kwargs,
    )


def _row(n: int, repeats: int) -> dict:
    plain = _sweep(n)  # warm-up: imports, allocator, branch caches
    stub_runs, disabled_runs, traced_runs = [], [], []
    traced = None
    with tempfile.TemporaryDirectory() as trace_dir:
        def traced_sweep(n):
            return _sweep(n, trace=Path(trace_dir) / "trace.jsonl",
                          metrics=MetricsRegistry())
        # Interleave the variants: each repeat times all three back to
        # back, so clock-speed / load drift across the measurement
        # window biases all three equally instead of whichever ran last.
        for _ in range(repeats):
            with stubbed_obs():
                elapsed, _ = best_of(1, _sweep, n)
            stub_runs.append(elapsed)
            elapsed, plain = best_of(1, _sweep, n)
            disabled_runs.append(elapsed)
            elapsed, traced = best_of(1, traced_sweep, n)
            traced_runs.append(elapsed)
    # Overheads are paired per repeat and the minimum kept: ambient
    # machine noise only ever inflates a ratio (the true seam cost is a
    # constant), so the smallest observed pairing is the best estimate
    # of the real overhead and the one the ceiling gates.
    return {
        "n": n,
        "trials": TRIALS,
        "stub_s": min(stub_runs),
        "disabled_s": min(disabled_runs),
        "traced_s": min(traced_runs),
        "traced_overhead": min(
            t / max(d, 1e-12) for t, d in zip(traced_runs, disabled_runs)
        ),
        "disabled_overhead": min(
            d / max(s, 1e-12) for d, s in zip(disabled_runs, stub_runs)
        ),
        "identical": pickle.dumps(traced.records) == pickle.dumps(plain.records),
    }


def run_grid(ns: list[int], repeats: int = REPEATS) -> list[dict]:
    with quiet_generator_shortfall():
        return [_row(n, repeats) for n in ns]


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'trials':>7} {'stub':>9} {'disabled':>9} {'traced':>9} "
        f"{'dis x':>7} {'trc x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['trials']:>7} "
            f"{row['stub_s'] * 1e3:>7.1f}ms "
            f"{row['disabled_s'] * 1e3:>7.1f}ms "
            f"{row['traced_s'] * 1e3:>7.1f}ms "
            f"{row['disabled_overhead']:>6.3f}x "
            f"{row['traced_overhead']:>6.3f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical records, both overheads bounded."""
    failures = [
        f"n={row['n']}: traced records differ from untraced"
        for row in rows if not row["identical"]
    ]
    failures.extend(
        f"n={row['n']}: traced overhead {row['traced_overhead']:.3f}x "
        f"> {TRACED_CEILING}x"
        for row in rows if row["traced_overhead"] > TRACED_CEILING
    )
    failures.extend(
        f"n={row['n']}: disabled-instrumentation overhead "
        f"{row['disabled_overhead']:.3f}x > {DISABLED_CEILING}x"
        for row in rows if row["disabled_overhead"] > DISABLED_CEILING
    )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "observability",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "traced_ceiling": TRACED_CEILING,
        "disabled_ceiling": DISABLED_CEILING,
        "rows": rows,
    }, indent=2) + "\n")


def test_observability_overhead_and_identical_records(benchmark, print_row):
    """pytest entry: quick grid, records identical, ceilings respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_NS), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"obs n={row['n']}: disabled {row['disabled_overhead']:.3f}x, "
            f"traced {row['traced_overhead']:.3f}x"
        )
    benchmark.extra_info["overheads"] = {
        str(r["n"]): round(r["traced_overhead"], 3) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    ns = QUICK_NS if "--quick" in argv else FULL_NS
    json_path = Path(__file__).with_name("BENCH_observability.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_observability.py [--quick] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(ns)
    print_table(rows)
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    failures = check_floor(rows)
    if failures:
        print("OVERHEAD CEILING MISSED / IDENTITY BROKEN:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: tracing <= {TRACED_CEILING}x, disabled seams <= "
        f"{DISABLED_CEILING}x, records identical throughout"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Committed-baseline regression checks for the bench harnesses.

Every ``bench_*`` driver writes a ``BENCH_<name>.json`` artifact whose
``rows`` carry a speedup (or other scalar) per (case, n) cell.  The
committed copies of those files are the *expected* performance of the
code as merged; ``check_baseline`` compares a fresh run against them so
a silent perf regression fails the bench the same way a broken speedup
floor does.

The comparison is deliberately loose: CI machines, laptops and noisy
neighbours move absolute timings a lot, so only a *relative collapse*
of a cell below ``(1 - rel_tolerance)`` of its committed value is a
failure.  Cells present in only one of the two runs (quick vs full
grids) are skipped — the floor checks in each driver still gate those.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["check_baseline", "DEFAULT_REL_TOLERANCE"]

#: A fresh run may fall this far below the committed value before the
#: check fails — wide enough for machine-to-machine noise, tight enough
#: to catch an accidental O(n)-to-O(n^2) regression (those show up as
#: 5-100x collapses, not 40%).
DEFAULT_REL_TOLERANCE = 0.6


def _cell_key(row: dict, key_fields: tuple[str, ...]) -> tuple:
    return tuple(row.get(field) for field in key_fields)


def check_baseline(rows: list[dict], baseline_path: str | Path,
                   key_fields: tuple[str, ...] = ("case", "n"),
                   value_field: str = "speedup",
                   rel_tolerance: float = DEFAULT_REL_TOLERANCE,
                   ) -> list[str]:
    """Compare fresh bench ``rows`` against a committed baseline JSON.

    Returns failure strings (empty = within tolerance).  Call this
    *before* the driver overwrites ``baseline_path`` with the fresh
    results.  A missing or unreadable baseline is itself a failure —
    the flag is only passed where a baseline is known to be committed.
    """
    path = Path(baseline_path)
    if not path.exists():
        return [f"baseline {path} does not exist"]
    try:
        payload = json.loads(path.read_text())
        baseline_rows = payload["rows"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        return [f"baseline {path} is unreadable: {error}"]

    expected = {
        _cell_key(row, key_fields): row[value_field]
        for row in baseline_rows
        if value_field in row
    }
    failures: list[str] = []
    compared = 0
    for row in rows:
        key = _cell_key(row, key_fields)
        if key not in expected or value_field not in row:
            continue
        compared += 1
        floor = expected[key] * (1.0 - rel_tolerance)
        if row[value_field] < floor:
            cell = ", ".join(
                f"{field}={value}" for field, value in zip(key_fields, key)
            )
            failures.append(
                f"{value_field} regression at ({cell}): "
                f"{row[value_field]:.2f} < {floor:.2f} "
                f"(committed {expected[key]:.2f}, "
                f"tolerance {rel_tolerance:.0%})"
            )
    if compared == 0:
        failures.append(
            f"no cells of {path.name} overlap the fresh run — "
            f"baseline check compared nothing"
        )
    return failures

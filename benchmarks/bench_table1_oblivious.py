"""T1-R2c: the degree-oblivious protocol matches degree-aware up to polylog.

Theorem 3.32: a single simultaneous protocol, never told d, costs
O~(k sqrt(n)) on sparse inputs and O~(k (nd)^{1/3}) on dense ones.  We run
it against the degree-aware references on both regimes and on adversarially
skewed partitions (most players irrelevant), and check the overhead stays
within the polylog budget.
"""

from __future__ import annotations

import math
import statistics

from repro.analysis.table1 import row_oblivious
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import far_instance
from repro.graphs.partition import (
    partition_adversarial_skew,
    partition_disjoint,
)


def test_overhead_vs_degree_aware(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_oblivious(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["overhead_ratio"] = report.measured
    print_row(report.formatted())
    n = 1600
    assert report.measured <= math.log2(n) ** 2, (
        "oblivious overhead exceeded the polylog budget"
    )


def test_both_regimes_detected(benchmark, print_row):
    params = ObliviousParams(epsilon=0.2, delta=0.1)

    def sweep():
        results = {}
        sparse = far_instance(2400, 5.0, 0.2, seed=1)
        sparse_partition = partition_disjoint(sparse.graph, 4, seed=2)
        dense = far_instance(900, 30.0, 0.2, seed=3)
        dense_partition = partition_disjoint(dense.graph, 4, seed=4)
        for name, partition in (
            ("sparse", sparse_partition), ("dense", dense_partition)
        ):
            hits = sum(
                find_triangle_sim_oblivious(
                    partition, params, seed=seed
                ).found
                for seed in range(4)
            )
            results[name] = hits / 4
        return results

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(rates)
    print_row(
        f"T1-R2c2  oblivious detection: sparse={rates['sparse']:.2f}, "
        f"dense={rates['dense']:.2f} (d never revealed to players)"
    )
    assert rates["sparse"] >= 0.75
    assert rates["dense"] >= 0.75


def test_skewed_partition_cost_bounded(benchmark, print_row):
    """Irrelevant players (tiny local density) must not blow up the cost:
    their guess ranges sit below the truth and their instances are cheap."""
    n, d, k = 2400, 5.0, 6
    params = ObliviousParams(epsilon=0.2, delta=0.2)

    def run():
        instance = far_instance(n, d, 0.2, seed=5)
        balanced = partition_disjoint(instance.graph, k, seed=6)
        skewed = partition_adversarial_skew(
            instance.graph, k, seed=7, heavy_fraction=0.9
        )
        balanced_bits = statistics.median(
            find_triangle_sim_oblivious(balanced, params, seed=s).total_bits
            for s in range(3)
        )
        skewed_bits = statistics.median(
            find_triangle_sim_oblivious(skewed, params, seed=s).total_bits
            for s in range(3)
        )
        return balanced_bits, skewed_bits

    balanced_bits, skewed_bits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["balanced_bits"] = balanced_bits
    benchmark.extra_info["skewed_bits"] = skewed_bits
    print_row(
        f"T1-R2c3  oblivious under skew (k={k}): balanced "
        f"{balanced_bits:.0f}b vs 90%-skew {skewed_bits:.0f}b"
    )
    assert skewed_bits <= 3 * balanced_bits

"""T1-R2c: the degree-oblivious protocol matches degree-aware up to polylog.

Theorem 3.32: a single simultaneous protocol, never told d, costs
O~(k sqrt(n)) on sparse inputs and O~(k (nd)^{1/3}) on dense ones.  We run
it against the degree-aware references on both regimes and on adversarially
skewed partitions (most players irrelevant), and check the overhead stays
within the polylog budget.

All trial execution routes through :mod:`repro.runtime` (``run_sweep``),
so ``REPRO_WORKERS`` parallelises these sweeps too.
"""

from __future__ import annotations

import math

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import far_disjoint_instance, row_oblivious
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.graphs.generators import far_instance
from repro.graphs.partition import partition_adversarial_skew


def test_overhead_vs_degree_aware(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_oblivious(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["overhead_ratio"] = report.measured
    print_row(report.formatted())
    n = 1600
    assert report.measured <= math.log2(n) ** 2, (
        "oblivious overhead exceeded the polylog budget"
    )


def test_both_regimes_detected(benchmark, print_row):
    params = ObliviousParams(epsilon=0.2, delta=0.1)

    def protocol(partition, seed: int):
        return find_triangle_sim_oblivious(partition, params, seed=seed)

    def sweep():
        instance = far_disjoint_instance(epsilon=0.2, k=4)
        sparse = run_sweep(
            protocol, instance, [(2400, 5.0, 4)], trials=4, seed=1
        )
        dense = run_sweep(
            protocol, instance, [(900, 30.0, 4)], trials=4, seed=3
        )
        return {
            "sparse": sparse.points[0].detection_rate,
            "dense": dense.points[0].detection_rate,
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(rates)
    print_row(
        f"T1-R2c2  oblivious detection: sparse={rates['sparse']:.2f}, "
        f"dense={rates['dense']:.2f} (d never revealed to players)"
    )
    assert rates["sparse"] >= 0.75
    assert rates["dense"] >= 0.75


def test_skewed_partition_cost_bounded(benchmark, print_row):
    """Irrelevant players (tiny local density) must not blow up the cost:
    their guess ranges sit below the truth and their instances are cheap.

    Balanced and skewed partitionings run at the same spec seeds, so both
    cost medians are measured over the same underlying graphs.
    """
    n, d, k = 2400, 5.0, 6
    params = ObliviousParams(epsilon=0.2, delta=0.2)
    grid = [(n, d, k)]

    def skewed(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_adversarial_skew(
            built.graph, k, seed=seed + 1, heavy_fraction=0.9
        )

    def protocol(partition, seed: int):
        return find_triangle_sim_oblivious(partition, params, seed=seed)

    def run():
        balanced = run_sweep(
            protocol, far_disjoint_instance(epsilon=0.2, k=k),
            grid, trials=3, seed=5,
        )
        skew = run_sweep(protocol, skewed, grid, trials=3, seed=5)
        return balanced.points[0].median_bits, skew.points[0].median_bits

    balanced_bits, skewed_bits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["balanced_bits"] = balanced_bits
    benchmark.extra_info["skewed_bits"] = skewed_bits
    print_row(
        f"T1-R2c3  oblivious under skew (k={k}): balanced "
        f"{balanced_bits:.0f}b vs 90%-skew {skewed_bits:.0f}b"
    )
    assert skewed_bits <= 3 * balanced_bits

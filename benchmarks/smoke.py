"""Bench-smoke: one tiny grid point per Table 1 driver family, serially.

CI's fast harness-rot check: every protocol the ``bench_table1_*``
drivers measure runs one miniature trial batch through the runtime's
:class:`~repro.runtime.executor.SerialExecutor`.  Seconds, not minutes —
it asserts the harness *runs* and stays deterministic, not that the
paper's exponents hold (the full drivers do that).

Usage::

    PYTHONPATH=src python benchmarks/smoke.py
"""

from __future__ import annotations

import math
import sys
from dataclasses import replace

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import (
    tuned_unrestricted_params,
    far_disjoint_instance,
)
from repro.core.exact_baseline import exact_triangle_detection
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.unrestricted import find_triangle_unrestricted
from repro.graphs.generators import triangle_free_degree_spread
from repro.graphs.partition import partition_disjoint
from repro.runtime import InstanceCache, SerialExecutor


def _trifree_instance(n: int, d: float, seed: int):
    graph = triangle_free_degree_spread(
        n, d, int(math.sqrt(n * d / 0.2)), seed=seed
    )
    return partition_disjoint(graph, k=3, seed=seed + 1)


def smoke_points() -> list[tuple[str, object, object, tuple[int, float, int]]]:
    """(driver, protocol, instance_fn, grid point) per bench family."""
    k = 3
    return [
        (
            "bench_table1_unrestricted",
            lambda p, s: find_triangle_unrestricted(
                p, tuned_unrestricted_params(k, 8.0), seed=s
            ),
            _trifree_instance,
            (512, 8.0, k),
        ),
        (
            "bench_table1_sim_low",
            lambda p, s: find_triangle_sim_low(
                p, SimLowParams(epsilon=0.2, delta=0.2), seed=s
            ),
            far_disjoint_instance(epsilon=0.2, k=k),
            (400, 6.0, k),
        ),
        (
            "bench_table1_sim_high",
            lambda p, s: find_triangle_sim_high(
                p, SimHighParams(epsilon=0.2, delta=0.2, c=2.0), seed=s
            ),
            far_disjoint_instance(epsilon=0.2, k=k),
            (400, 20.0, k),
        ),
        (
            "bench_table1_oblivious",
            lambda p, s: find_triangle_sim_oblivious(
                p, ObliviousParams(epsilon=0.2, delta=0.2), seed=s
            ),
            far_disjoint_instance(epsilon=0.2, k=k),
            (400, 6.0, k),
        ),
        (
            "bench_table1_lower_bounds/exact-baseline",
            lambda p, _s: exact_triangle_detection(p),
            far_disjoint_instance(epsilon=0.2, k=k),
            (400, 6.0, k),
        ),
        (
            "bench_ablations/blackboard",
            lambda p, s: find_triangle_unrestricted(
                p,
                replace(tuned_unrestricted_params(k, 8.0), blackboard=True),
                seed=s,
            ),
            _trifree_instance,
            (512, 8.0, k),
        ),
    ]


def main() -> int:
    executor = SerialExecutor()
    cache = InstanceCache()
    failures = 0
    for name, protocol, instance_fn, point in smoke_points():
        try:
            sweep = run_sweep(
                protocol, instance_fn, [point], trials=2, seed=0,
                executor=executor, cache=cache,
                instance_key=f"smoke:{name}",
            )
            repeat = run_sweep(
                protocol, instance_fn, [point], trials=2, seed=0,
                executor=executor, cache=cache,
                instance_key=f"smoke:{name}",
            )
            if sweep.records != repeat.records:
                raise AssertionError("non-deterministic records")
            bits = sweep.points[0].median_bits
            print(f"ok   {name:<44} {point} median={bits:.0f}b")
        except Exception as exc:  # noqa: BLE001 — report every family
            failures += 1
            print(f"FAIL {name:<44} {point} {exc!r}")
    stats = cache.stats()
    print(
        f"cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({stats['entries']} entries)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

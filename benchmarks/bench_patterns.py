"""Pattern engine vs the networkx VF2 path it replaced.

Three trial families per (n, pattern), each timing the H-copy search
exactly as :func:`repro.core.subgraph_detection.find_subgraph_simultaneous`'s
referee performs it — mask path
(:func:`repro.core.referee.rows_union_subgraph_referee`, rows union +
canonical-first engine) vs the historical ``set[Edge]`` union + networkx
VF2 (:func:`repro.core.referee.set_union_subgraph_referee`) — on the
protocol's real per-round messages:

* **referee-miss** — messages from a certifiably H-free control
  (triangle-free bipartite for K4/C5 — no triangles, no odd cycles —
  and the girth-6 projective-plane incidence graph for C4), so every
  round's search is exhaustive.  This is the regime that dominates the
  one-sided tester's cost (it pays full search exactly when nothing is
  found) and the gated comparison: the acceptance bar is >= 3x at
  n=2000-4000.
* **referee-hit** — messages from a planted ε-far instance; the loop
  stops at the winning round.  Reported ungated: when the union is
  copy-rich both searches return in ~1ms and the ratio mostly measures
  how lucky VF2's first branch got.
* **matcher** — whole-host search: the rows engine
  (:func:`repro.patterns.matcher.find_copy`) vs VF2 on the same planted
  graph, reported ungated (same direction, larger hosts).

Outputs are asserted identical before any speedup is reported: both
referees must agree on found/not-found *and* the winning round, and
every reported copy is validated as a genuine monomorphism image of its
round's union via :func:`repro.patterns.matcher.is_copy_in_rows` (VF2's
copy may legitimately differ from the canonical-first one, so images are
certified, not compared bit for bit).  Results go to
``BENCH_patterns.json`` (or ``--json PATH``).

Requires networkx (the optional ``reference`` extra) for the VF2 side.

Usage::

    python benchmarks/bench_patterns.py            # full grid
    python benchmarks/bench_patterns.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+speedup test
on the quick grid.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from baseline import check_baseline
from timing_helpers import best_of

from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.core.referee import (
    rows_union_subgraph_referee,
    set_union_subgraph_referee,
    union_rows,
)
from repro.core.subgraph_detection import SubgraphParams
from repro.graphs.generators import bipartite_triangle_free
from repro.graphs.partition import partition_disjoint
from repro.patterns.catalog import FIVE_CYCLE, FOUR_CLIQUE, FOUR_CYCLE
from repro.patterns.matcher import find_copy, is_copy_in_rows
from repro.patterns.plant import (
    incidence_c4_free,
    planted_disjoint_subgraphs,
)
from repro.patterns.reference import find_copy_among_reference

FULL_NS = [2000, 3000, 4000]
QUICK_NS = [2000]

PATTERNS = (FOUR_CLIQUE, FOUR_CYCLE, FIVE_CYCLE)
SPEEDUP_FLOOR = 3.0
GATED = ("referee-miss",)
D = 8.0
K = 3
PARAMS = SubgraphParams(epsilon=0.2, c=1.5, rounds=3)

#: Primes q with 2(q^2+q+1) nearest each grid n: the C4-free control's
#: size is quantized by the projective plane's order.
C4_FREE_ORDER = {2000: 31, 3000: 37, 4000: 43}


def _instance(n: int, pattern, seed: int):
    copies = max(5, int(0.15 * n / 8))
    instance = planted_disjoint_subgraphs(
        n, pattern, copies, seed=seed, background_degree=D
    )
    return instance, partition_disjoint(instance.graph, k=K, seed=seed + 1)


def _referee_messages(partition, pattern, seed: int):
    """The protocol's real per-player per-round messages, precomputed."""
    players = make_players(partition)
    n = partition.graph.n
    shared = SharedRandomness(seed)
    p = PARAMS.sample_probability(
        n, partition.graph.average_degree(), pattern
    )
    samples = [
        shared.bernoulli_subset_mask(n, p, tag=100 + r)
        for r in range(PARAMS.rounds)
    ]
    return [
        [player.edges_within_mask(sample) for sample in samples]
        for player in players
    ]


def _control_partition(n: int, pattern):
    """A certifiably H-free control: every referee round misses."""
    if pattern.name == "C4":
        control = incidence_c4_free(C4_FREE_ORDER[n])
    else:
        # Bipartite => triangle-free => K4-free, and no odd cycles => C5-free.
        control = bipartite_triangle_free(n, D, seed=7)
    return partition_disjoint(control, k=K, seed=8)


def _referee_miss_trial(n: int, pattern, repeats: int) -> dict:
    partition = _control_partition(n, pattern)
    # VF2's exhaustive miss search runs seconds per call and the margin
    # is ~10x the floor: best-of-2 keeps the CI grid inside a minute.
    row = _time_referees(partition, pattern, min(repeats, 2))
    # On an H-free control a found copy would be a matcher bug: fold the
    # must-miss check into the identity flag.
    row["identical"] &= not row["found"]
    return row


def _referee_hit_trial(n: int, pattern, repeats: int) -> dict:
    _, partition = _instance(n, pattern, seed=7)
    return _time_referees(partition, pattern, repeats)


def _time_referees(partition, pattern, repeats: int) -> dict:
    n = partition.graph.n
    messages = _referee_messages(partition, pattern, seed=1)
    rounds = PARAMS.rounds

    def mask_referee():
        for round_index in range(rounds):
            copy = rows_union_subgraph_referee(
                (message[round_index] for message in messages), n, pattern
            )
            if copy is not None:
                return copy, round_index
        return None, None

    def vf2_referee():
        for round_index in range(rounds):
            copy = set_union_subgraph_referee(
                (message[round_index] for message in messages), pattern
            )
            if copy is not None:
                return copy, round_index
        return None, None

    mask_s, (mask_copy, mask_round) = best_of(repeats, mask_referee)
    set_s, (set_copy, set_round) = best_of(repeats, vf2_referee)
    identical = (mask_copy is None) == (set_copy is None) and \
        mask_round == set_round
    for copy, round_index in ((mask_copy, mask_round),
                              (set_copy, set_round)):
        if copy is not None:
            round_rows = union_rows(
                (message[round_index] for message in messages), n
            )
            identical &= is_copy_in_rows(round_rows, pattern, copy)
    return {
        "mask_s": mask_s, "set_s": set_s, "identical": identical,
        "found": mask_copy is not None, "winning_round": mask_round,
    }


def _matcher_trial(n: int, pattern, repeats: int) -> dict:
    instance, _ = _instance(n, pattern, seed=7)
    graph = instance.graph
    edges = sorted(graph.edges())

    mask_s, mask_copy = best_of(repeats, lambda: find_copy(graph, pattern))
    set_s, vf2_copy = best_of(
        repeats, lambda: find_copy_among_reference(edges, pattern)
    )
    rows = graph.adjacency_rows()
    identical = (
        mask_copy is not None and vf2_copy is not None
        and is_copy_in_rows(rows, pattern, mask_copy)
        and is_copy_in_rows(rows, pattern, vf2_copy)
    )
    return {
        "mask_s": mask_s, "set_s": set_s, "identical": identical,
        "found": mask_copy is not None, "winning_round": None,
    }


TRIALS = [
    ("referee-miss", _referee_miss_trial),
    ("referee-hit", _referee_hit_trial),
    ("matcher", _matcher_trial),
]


def run_grid(ns: list[int], repeats: int = 5) -> list[dict]:
    rows = []
    for n in ns:
        for pattern in PATTERNS:
            for name, trial in TRIALS:
                row = trial(n, pattern, repeats)
                # Mismatches are recorded, not raised: the JSON must
                # reflect the failing run (written before the gate fires).
                rows.append({
                    "n": n, "pattern": pattern.name, "family": name,
                    "speedup": row["set_s"] / max(row["mask_s"], 1e-12),
                    **row,
                })
    return rows


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'pattern':<8} {'family':<13} "
        f"{'vf2':>9} {'mask':>9} {'x':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['pattern']:<8} {row['family']:<13} "
            f"{row['set_s'] * 1e3:>7.2f}ms {row['mask_s'] * 1e3:>7.2f}ms "
            f"{row['speedup']:>7.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical outputs, gated families >= floor."""
    failures = [
        f"{row['family']}/{row['pattern']} at n={row['n']}: "
        "mask and reference outputs differ"
        for row in rows if not row["identical"]
    ]
    failures.extend(
        f"{row['family']}/{row['pattern']} at n={row['n']}: "
        f"{row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
        for row in rows
        if row["family"] in GATED and row["speedup"] < SPEEDUP_FLOOR
    )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "patterns",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "speedup_floor": SPEEDUP_FLOOR,
        "gated_families": list(GATED),
        "rows": rows,
    }, indent=2) + "\n")


def test_pattern_engine_speedup_and_identical_results(benchmark, print_row):
    """pytest entry: quick grid, outputs identical, floors respected."""
    import pytest

    pytest.importorskip("networkx")
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_NS, repeats=3), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"patterns {row['family']}/{row['pattern']} n={row['n']}: "
            f"{row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['family']}/{r['pattern']}@{r['n']}": round(r["speedup"], 2)
        for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    ns = QUICK_NS if "--quick" in argv else FULL_NS
    json_path = Path(__file__).with_name("BENCH_patterns.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_patterns.py [--quick] "
                  "[--check-baseline] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(ns)
    print_table(rows)
    failures = check_floor(rows)
    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy; only
        # the gated family — hit-path and matcher micro rows finish too
        # fast for their ratios to be stable.
        gated_rows = [r for r in rows if r["family"] in GATED]
        baseline_failures = check_baseline(
            gated_rows, Path(__file__).with_name("BENCH_patterns.json"),
            key_fields=("family", "pattern", "n"),
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    if failures:
        print("SPEEDUP FLOOR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: miss-path referee H-copy search >= {SPEEDUP_FLOOR}x, "
        "all outputs identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

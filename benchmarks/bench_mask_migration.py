"""Mask-native migration of the last set-based layers vs their references.

PR 2 made the graph kernel word-wide and PR 3 the simultaneous protocol
engine; this driver measures the three layers PR 4 migrated:

* **chain-reduction** — the streaming → one-way chain
  (:func:`repro.streaming.reduction.streaming_to_oneway`, row-batched
  feed + rows-serialized states) vs the preserved per-edge pipeline
  (:func:`repro.streaming.reference.streaming_to_oneway_reference` with
  the ``set[Edge]``-state exact finder);
* **oneway-curve** — the sample-and-intersect one-way protocol on µ
  (partition-adjacency-row messages, per-U-vertex mask intersection) vs
  :func:`repro.lowerbounds.reference.oneway_triangle_edge_protocol_reference`;
* **blackboard** — deduplicating edge-posting rounds on the posted-rows
  board (:meth:`~repro.comm.blackboard.BlackboardRuntime.post_rows_in_turns`)
  vs the set-of-tuples loop preserved in
  :func:`repro.comm.reference.post_edges_in_turns_reference`, on an
  all-to-all duplicated input (the Theorem 3.23 regime).

Every trial asserts the mask and reference paths produce identical
outputs — chain outputs, per-hop charges, and forwarded edge sets;
one-way transcripts byte for byte; posted payloads, board, and ledger
summaries — before a speedup is reported.  The acceptance bar gates
chain-reduction and blackboard at >= 2x for n in 2000-4000 (the one-way
speedup is reported ungated; it runs well above the floor).  Results are
written to ``BENCH_mask_migration.json`` (or ``--json PATH``).

Usage::

    python benchmarks/bench_mask_migration.py            # full grid
    python benchmarks/bench_mask_migration.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+speedup test
on the quick grid.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from baseline import check_baseline
from timing_helpers import best_of, quiet_generator_shortfall

from repro.analysis.table1 import far_disjoint_instance
from repro.comm.blackboard import BlackboardRuntime
from repro.comm.encoding import edge_bits
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.reference import post_edges_in_turns_reference
from repro.graphs.generators import gnd
from repro.graphs.partition import partition_all_to_all
from repro.lowerbounds.distributions import MuDistribution
from repro.lowerbounds.oneway_protocols import oneway_triangle_edge_protocol
from repro.lowerbounds.reference import (
    oneway_triangle_edge_protocol_reference,
)
from repro.streaming.reduction import streaming_to_oneway
from repro.streaming.reference import (
    CountingExactFinderReference,
    state_edges,
    streaming_to_oneway_reference,
)
from repro.streaming.triangle_stream import CountingExactFinder

FULL_NS = [2000, 3000, 4000]
QUICK_NS = [2000]

SPEEDUP_FLOOR = 2.0
GATED = ("chain-reduction", "blackboard")
D = 8.0
#: Theorem 3.23's saving is a factor of the duplication: every player
#: past the first is pure stale-harvest dedup work, which the board does
#: as one mask scan per player and the set reference does per edge.
K_BLACKBOARD = 6
ONEWAY_BUDGET = 256


def _chain_trial(n: int, repeats: int) -> dict:
    partition = far_disjoint_instance(epsilon=0.2, k=3)(n, D, 7)
    mask_s, mask_run = best_of(
        repeats,
        lambda: streaming_to_oneway(
            partition, lambda: CountingExactFinder(n)
        ),
    )
    set_s, set_run = best_of(
        repeats,
        lambda: streaming_to_oneway_reference(
            partition, lambda: CountingExactFinderReference(n)
        ),
    )
    identical = (
        mask_run.output == set_run.output
        and mask_run.total_bits == set_run.total_bits
        and [m[2] for m in mask_run.transcript.messages]
        == [m[2] for m in set_run.transcript.messages]
        and [state_edges(m[1]) for m in mask_run.transcript.messages]
        == [state_edges(m[1]) for m in set_run.transcript.messages]
    )
    return {
        "mask_s": mask_s, "set_s": set_s, "identical": identical,
        "total_bits": mask_run.total_bits,
    }


def _oneway_trial(n: int, repeats: int) -> dict:
    mu = MuDistribution(part_size=n // 3, gamma=1.0)
    sample = mu.sample_far(seed=7)
    mask_s, mask_run = best_of(
        repeats,
        lambda: oneway_triangle_edge_protocol(sample, ONEWAY_BUDGET, seed=1),
    )
    set_s, set_run = best_of(
        repeats,
        lambda: oneway_triangle_edge_protocol_reference(
            sample, ONEWAY_BUDGET, seed=1
        ),
    )
    identical = (
        mask_run.output == set_run.output
        and mask_run.total_bits == set_run.total_bits
        and mask_run.transcript.messages == set_run.transcript.messages
    )
    return {
        "mask_s": mask_s, "set_s": set_s, "identical": identical,
        "total_bits": mask_run.total_bits,
    }


def _blackboard_trial(n: int, repeats: int) -> dict:
    graph = gnd(n, D, seed=5)
    partition = partition_all_to_all(graph, K_BLACKBOARD)
    players = make_players(partition)

    def mask_post():
        rt = BlackboardRuntime(players, SharedRandomness(2))
        posted = rt.post_rows_in_turns(
            lambda p: p.adjacency_rows(), edge_bits(n)
        )
        return rt, posted

    def set_post():
        rt = BlackboardRuntime(players, SharedRandomness(2))
        posted = post_edges_in_turns_reference(
            rt, lambda p: p.sorted_edges(), edge_bits(n)
        )
        return rt, posted

    mask_s, (mask_rt, mask_posted) = best_of(repeats, mask_post)
    set_s, (set_rt, set_posted) = best_of(repeats, set_post)
    identical = (
        set(mask_posted) == set_posted
        and mask_rt.board == set_rt.board
        and mask_rt.ledger.summary() == set_rt.ledger.summary()
    )
    return {
        "mask_s": mask_s, "set_s": set_s, "identical": identical,
        "total_bits": mask_rt.ledger.total_bits,
    }


TRIALS = [
    ("chain-reduction", _chain_trial),
    ("oneway-curve", _oneway_trial),
    ("blackboard", _blackboard_trial),
]


def run_grid(ns: list[int], repeats: int = 5) -> list[dict]:
    rows = []
    with quiet_generator_shortfall():
        for n in ns:
            for name, trial in TRIALS:
                row = trial(n, repeats)
                # Mismatches are recorded, not raised: the JSON must
                # reflect the failing run (written before the gate fires).
                rows.append({
                    "n": n, "layer": name,
                    "speedup": row["set_s"] / max(row["mask_s"], 1e-12),
                    **row,
                })
    return rows


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'layer':<16} {'set':>9} {'mask':>9} {'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['layer']:<16} "
            f"{row['set_s'] * 1e3:>7.1f}ms {row['mask_s'] * 1e3:>7.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical outputs, gated layers >= the floor."""
    failures = [
        f"{row['layer']} at n={row['n']}: mask and reference outputs differ"
        for row in rows if not row["identical"]
    ]
    failures.extend(
        f"{row['layer']} at n={row['n']}: "
        f"{row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
        for row in rows
        if row["layer"] in GATED and row["speedup"] < SPEEDUP_FLOOR
    )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "mask_migration",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "speedup_floor": SPEEDUP_FLOOR,
        "gated_layers": list(GATED),
        "rows": rows,
    }, indent=2) + "\n")


def test_mask_migration_speedup_and_identical_results(benchmark, print_row):
    """pytest entry: quick grid, outputs identical, floors respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_NS, repeats=3), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"migration {row['layer']} n={row['n']}: {row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['layer']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    ns = QUICK_NS if "--quick" in argv else FULL_NS
    json_path = Path(__file__).with_name("BENCH_mask_migration.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_mask_migration.py [--quick] "
                  "[--check-baseline] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(ns)
    print_table(rows)
    failures = check_floor(rows)
    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy; only
        # the gated layers — oneway-curve finishes in microseconds, so
        # its ratio is all noise.
        gated_rows = [r for r in rows if r["layer"] in GATED]
        baseline_failures = check_baseline(
            gated_rows, Path(__file__).with_name("BENCH_mask_migration.json"),
            key_fields=("layer", "n"),
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    if failures:
        print("SPEEDUP FLOOR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: chain-reduction and blackboard >= {SPEEDUP_FLOOR}x, "
        "all outputs identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""T1-R2b: simultaneous upper bound O~(k (nd)^{1/3}) for d = Ω(sqrt(n)).

Regenerates the dense-regime column of Table 1's simultaneous row along the
d = sqrt(n) diagonal, plus a fixed-n density sweep confirming the d^{1/3}
dependence in isolation.

All trial execution routes through :mod:`repro.runtime` (``run_sweep``),
so ``REPRO_WORKERS`` parallelises these sweeps too.
"""

from __future__ import annotations

import math
import statistics

from repro.analysis.experiments import run_sweep
from repro.analysis.scaling import fit_axis
from repro.analysis.table1 import far_disjoint_instance, row_sim_high_upper
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high


def test_exponent_on_nd(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_sim_high_upper(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["claimed_exponent"] = report.claimed
    benchmark.extra_info["measured_exponent"] = report.measured
    print_row(report.formatted())
    assert abs(report.measured - report.claimed) < 0.12, report.formatted()


def test_density_sweep_at_fixed_n(benchmark, print_row):
    """At fixed n, bits should fall like d^{-?}... no: |S| ~ (n²/d)^{1/3}
    shrinks but induced edges ~ |S|²d/n² · nd grow as d^{1/3} — fit it."""
    n = 1600
    densities = [40.0, 80.0, 160.0, 320.0]
    params = SimHighParams(epsilon=0.2, delta=0.2, c=2.0)

    def sweep():
        return run_sweep(
            lambda partition, s: find_triangle_sim_high(
                partition, params, seed=s
            ),
            far_disjoint_instance(epsilon=0.2, k=3),
            [(n, d, 3) for d in densities], trials=3, seed=0,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = fit_axis(result.xs("d"), result.bits())
    benchmark.extra_info["d_exponent"] = fit.exponent
    print_row(
        f"T1-R2bd  sim-high density sweep at n={n}: bits ~ d^"
        f"{fit.exponent:.2f} (claimed 1/3) R²={fit.r_squared:.3f}"
    )
    assert abs(fit.exponent - 1.0 / 3.0) < 0.2, fit


def test_detection_stays_high(benchmark, print_row):
    """The cheaper protocol still detects: rate >= 0.8 across the sweep."""
    params = SimHighParams(epsilon=0.2, delta=0.1, c=2.0)

    def sweep():
        result = run_sweep(
            lambda partition, s: find_triangle_sim_high(
                partition, params, seed=s
            ),
            far_disjoint_instance(epsilon=0.2, k=3),
            [(n, math.sqrt(n), 3) for n in (400, 900, 1600)],
            trials=4, seed=0,
        )
        return statistics.fmean(result.detection_rates())

    rate = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["detection_rate"] = rate
    print_row(f"T1-R2bv  sim-high detection rate across sweep: {rate:.2f}")
    assert rate >= 0.8

"""Extension benchmarks: H-freeness, model equivalences, Newman pools.

Not paper rows — these cover the extensions DESIGN.md lists beyond
Table 1: the generalized H-freeness tester (the paper's future-work
direction), the Section 2 message-passing <-> coordinator equivalence
overhead, and the Newman private-coin announcement cost.
"""

from __future__ import annotations

import statistics

from repro.analysis.scaling import fit_power_law
from repro.comm.encoding import bits_for_universe
from repro.comm.messagepassing import (
    MessagePassingRuntime,
    coordinator_cost_of_transcript,
)
from repro.comm.newman import build_pool
from repro.comm.players import Player
from repro.core.subgraph_detection import (
    FOUR_CLIQUE,
    FOUR_CYCLE,
    SubgraphParams,
    find_subgraph_simultaneous,
    planted_disjoint_subgraphs,
)
from repro.graphs.partition import partition_disjoint


def test_h_freeness_scaling(benchmark, print_row):
    """Cost of the generalized tester grows sublinearly in n for C4."""
    ns = [400, 800, 1600, 3200]
    params = SubgraphParams(epsilon=0.15, c=2.0, rounds=3)

    def sweep():
        costs = []
        detections = []
        for n in ns:
            bits = []
            hits = 0
            for seed in range(3):
                instance = planted_disjoint_subgraphs(
                    n, FOUR_CYCLE, max(5, int(0.15 * n / 8)), seed=seed,
                    background_degree=1.0,
                )
                partition = partition_disjoint(
                    instance.graph, 3, seed=seed + 1
                )
                result = find_subgraph_simultaneous(
                    partition, FOUR_CYCLE, params, seed=seed
                )
                bits.append(result.total_bits)
                hits += result.found
            costs.append(statistics.median(bits))
            detections.append(hits / 3)
        return costs, detections

    costs, detections = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = fit_power_law([float(n) for n in ns], costs)
    benchmark.extra_info["n_exponent"] = fit.exponent
    benchmark.extra_info["detections"] = detections
    print_row(
        f"EXT-H    C4-freeness tester: bits ~ n^{fit.exponent:.2f} "
        f"(sublinear; exact would be ~n), detection "
        + "/".join(f"{r:.2f}" for r in detections)
    )
    assert fit.exponent < 0.9
    assert statistics.fmean(detections) >= 0.65


def test_k4_detection_cost(benchmark, print_row):
    # The (nd)^{1-2/h} vs nd advantage needs enough density: at n=4000,
    # d~9 the K4 tester already undercuts exact (and widens beyond).
    n = 4000

    def run():
        instance = planted_disjoint_subgraphs(
            n, FOUR_CLIQUE, 250, seed=3, background_degree=8.0
        )
        params = SubgraphParams(
            epsilon=instance.epsilon_certified, c=1.2, rounds=3
        )
        partition = partition_disjoint(instance.graph, 4, seed=4)
        from repro.core.exact_baseline import exact_triangle_detection

        tester = find_subgraph_simultaneous(
            partition, FOUR_CLIQUE, params, seed=5
        )
        exact = exact_triangle_detection(partition)
        return tester, exact

    tester, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["tester_bits"] = tester.total_bits
    benchmark.extra_info["exact_bits"] = exact.total_bits
    print_row(
        f"EXT-K4   K4 tester {tester.total_bits}b (found={tester.found}) "
        f"vs exact {exact.total_bits}b at n={n}"
    )
    assert tester.total_bits < exact.total_bits


def test_message_passing_equivalence_overhead(benchmark, print_row):
    """The Section 2 simulation overhead is exactly 2 + ceil(log k)/size."""
    ks = [4, 16, 64]

    def sweep():
        factors = []
        for k in ks:
            players = [Player(j, 10, []) for j in range(k)]
            rt = MessagePassingRuntime(players)
            message_bits = 32
            for sender in range(k - 1):
                rt.send(sender, sender + 1, "x", message_bits)
            simulated = coordinator_cost_of_transcript(rt.transcript, k)
            factors.append(simulated / rt.total_bits)
        return factors

    factors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["overhead_factors"] = dict(zip(ks, factors))
    print_row(
        "EXT-MP   message-passing -> coordinator overhead: "
        + ", ".join(f"k={k}: {f:.2f}x" for k, f in zip(ks, factors))
    )
    for k, factor in zip(ks, factors):
        assert factor <= 2 + bits_for_universe(k) / 32 + 1e-9


def test_newman_announcement_cost(benchmark, print_row):
    """Private-coin conversion costs k·ceil(log t) bits — O(k) here."""
    ks = [3, 10, 30, 100]

    def sweep():
        return [
            build_pool(k, gamma=0.1, delta_prime=0.05).announcement_bits
            for k in ks
        ]

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = fit_power_law([float(k) for k in ks], [float(c) for c in costs])
    benchmark.extra_info["bits_by_k"] = dict(zip(ks, costs))
    print_row(
        "EXT-NW   Newman announcement bits: "
        + ", ".join(f"k={k}: {c}" for k, c in zip(ks, costs))
        + f" (~k^{fit.exponent:.2f})"
    )
    assert abs(fit.exponent - 1.0) < 0.05

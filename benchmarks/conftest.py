"""Shared fixtures and helpers for the Table 1 benchmark harness.

Every benchmark measures wall time via pytest-benchmark *and* records the
communication quantities the paper's Table 1 is actually about in
``benchmark.extra_info`` — bits, fitted exponents, detection rates — and
prints its table row(s), so running ``pytest benchmarks/ --benchmark-only``
regenerates the paper's results summary as measured numbers.

Import-path policy: there are deliberately no ``sys.path`` hacks here or
in ``tests/``.  Both suites resolve :mod:`repro` the same two ways —
``pip install -e .`` (packaged install), or plain ``pytest`` from the
repo root, where ``[tool.pytest.ini_options] pythonpath = ["src"]`` in
``pyproject.toml`` is the single source of path setup.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def print_row(capsys):
    """Print a table row that survives pytest's capture (via -s or summary)."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n  {text}")

    return emit

"""T1-R3..R6 + Lemma 4.5: the lower-bound rows of Table 1, executed.

A lower bound is reproduced by executing its construction and measuring the
quantity it certifies:

* T1-R3 (ext. one-way / streaming, Ω((nd)^{1/6})): space needed by the
  reservoir streaming finder on µ grows with n.
* T1-R4 (simultaneous 3p, Ω((nd)^{1/3})): exact posteriors — covered pairs
  at the 9/10 threshold appear only as the message budget grows.
* T1-R5 (k players, Ω(k (nd)^{1/6})): the symmetrization cost identity
  E|Π′| = (2/k)·CC(Π) measured on real protocol runs.
* T1-R6 (d = Θ(1), Ω(sqrt n)): the BM reduction dichotomy, verified.
* Lemma 4.5: µ samples are Ω(1)-far with probability >= 1/2.
"""

from __future__ import annotations

from repro.analysis.table1 import (
    row_bm_lower,
    row_mu_farness,
    row_oneway_streaming_lower,
    row_sim_covered_lower,
    row_symmetrization,
)


def test_oneway_streaming_space_growth(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_oneway_streaming_lower(quick=True, seed=0),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["space_growth"] = report.measured
    benchmark.extra_info["minimum_predicted"] = report.claimed
    print_row(report.formatted())
    # The bound demands growth of at least 4^{1/4}; measured must comply.
    assert report.measured >= report.claimed, report.formatted()


def test_covered_edges_need_budget(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_sim_covered_lower(quick=True, seed=0),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["covered_gain"] = report.measured
    print_row(report.formatted())
    assert report.measured > 0.5, report.formatted()


def test_symmetrization_identity(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_symmetrization(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["measured_ratio"] = report.measured
    benchmark.extra_info["predicted_ratio"] = report.claimed
    print_row(report.formatted())
    assert abs(report.measured - report.claimed) < 0.25 * report.claimed


def test_bm_dichotomy(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_bm_lower(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["verified_rate"] = report.measured
    print_row(report.formatted())
    assert report.measured == 1.0, report.formatted()


def test_mu_farness(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_mu_farness(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["far_probability"] = report.measured
    print_row(report.formatted())
    assert report.measured >= 0.5, report.formatted()


def test_oneway_protocol_budget_curve(benchmark, print_row):
    """A concrete extended one-way protocol (sample-and-intersect) on µ:
    the budget/success curve Theorem 4.7 constrains, at graph scale."""
    from repro.lowerbounds.distributions import MuDistribution
    from repro.lowerbounds.oneway_protocols import budget_success_curve

    mu = MuDistribution(part_size=40, gamma=1.3)
    budgets = [2, 8, 32, 128]

    def run():
        return budget_success_curve(mu, budgets, trials=8, seed=0)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["curve"] = [
        {"budget": p.alice_budget, "bits": p.mean_bits,
         "success": p.success_rate}
        for p in points
    ]
    print_row(
        "T1-R3c   one-way sample-and-intersect on mu: "
        + ", ".join(
            f"{p.mean_bits:.0f}b->{p.success_rate:.2f}" for p in points
        )
    )
    assert points[-1].success_rate > points[0].success_rate
    assert points[-1].success_rate >= 0.75


def test_budget_starved_protocols_fail_on_mu(benchmark, print_row):
    """The qualitative content of the bounds: on µ, success degrades as the
    simultaneous budget drops — a budget sweep traces the trade-off.

    Each budget's trials run through the runtime at the same sweep seed,
    so every budget is evaluated on the same µ samples; vacuous trials
    (triangle-free samples) short-circuit before the protocol runs —
    exactly like the old inline loop's ``continue`` — and are flagged
    via the metrics hook so the rate skips them.
    """
    from repro.analysis.experiments import run_sweep
    from repro.comm.ledger import CostSummary
    from repro.core.results import DetectionResult
    from repro.core.simultaneous_low import (
        SimLowParams,
        find_triangle_sim_low,
    )
    from repro.graphs.triangles import is_triangle_free
    from repro.lowerbounds.distributions import MuDistribution

    mu = MuDistribution(part_size=50, gamma=1.3)
    budgets = (0.15, 0.5, 1.5, 6.0)

    def instance(_n: int, _d: float, seed: int):
        sample = mu.sample(seed=seed)
        return sample.partition

    def vacuous(_spec, _partition, outcome) -> dict:
        # The protocol only short-circuits on vacuous samples, so the
        # flag rides on the outcome — no second triangle scan needed.
        return {"vacuous": outcome.details.get("vacuous", False)}

    def sweep():
        rates = []
        for c in budgets:
            def protocol(partition, s, c=c):
                if is_triangle_free(partition.graph):
                    # Nothing to find: skip the run, as the old loop did.
                    return DetectionResult(
                        found=False, triangle=None,
                        cost=CostSummary(0, 0, 0, 0, 0),
                        details={"vacuous": True},
                    )
                return find_triangle_sim_low(
                    partition, SimLowParams(epsilon=0.2, delta=0.2, c=c),
                    seed=s,
                )

            result = run_sweep(
                protocol, instance, [(mu.n, 0.0, 3)], trials=8, seed=0,
                metrics=vacuous,
            )
            live = [r for r in result.records if not r.extras["vacuous"]]
            hits = sum(1 for r in live if r.found)
            rates.append(hits / max(1, len(live)))
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["success_by_budget"] = dict(zip(budgets, rates))
    print_row(
        "T1-R4b   success vs budget on mu: "
        + ", ".join(f"c={c}: {r:.2f}" for c, r in zip(budgets, rates))
    )
    assert rates[-1] > rates[0], "more budget must help on mu"

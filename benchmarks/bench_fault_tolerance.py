"""Fault-tolerant sweep runtime: what supervision and journaling cost.

The supervised executor paths (retry/timeout bookkeeping, the durable
trial journal, crash-safe resume) wrap the same trial engine the plain
paths use, and the wrapper must stay cheap: fault tolerance that taxes
every healthy sweep would be paid for constantly and used rarely.

The workload is the standard detection-probability estimate (sim-low
protocol, one grid point, seeded trials).  Each row measures, against
the plain serial path:

* ``supervised`` — retry policy engaged, no faults, no journal;
* ``journal`` — every completed trial fsync'd to a JSONL journal;
* ``journal_nofsync`` — the same with ``fsync=False`` (close-time
  durability only), isolating the fsync cost;
* ``resume`` — re-running the sweep against its complete journal, i.e.
  the pure replay path.

The acceptance bar, asserted before any number is reported:

* every variant's records are byte-identical to the plain run's
  (``pickle.dumps`` equality — the repo's record-stream invariant);
* supervision + journaling cost <= ``OVERHEAD_CEILING`` (2x) on this
  real workload;
* resume replays >= ``RESUME_FLOOR`` (5x) faster than recomputing.

Results go to ``BENCH_fault_tolerance.json`` (or ``--json PATH``).

Usage::

    python benchmarks/bench_fault_tolerance.py            # full grid
    python benchmarks/bench_fault_tolerance.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` on the quick grid.
"""

from __future__ import annotations

import json
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path

from baseline import check_baseline
from timing_helpers import quiet_generator_shortfall

from repro.analysis.experiments import DefaultInstanceBuilder
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.runtime import RetryPolicy, SerialExecutor, build_specs, run_trials

FULL_NS = [1000, 2000]
QUICK_NS = [1000]

OVERHEAD_CEILING = 2.0
RESUME_FLOOR = 5.0
D = 8.0
K = 3
TRIALS = 8
SWEEP_SEED = 7

PARAMS = SimLowParams(epsilon=0.2, delta=0.2)


def sim_low_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_low(partition, PARAMS, seed=seed, shared=shared)


def _timed(fn):
    start = time.perf_counter()
    records = fn()
    return records, time.perf_counter() - start


def _trial(n: int) -> dict:
    builder = DefaultInstanceBuilder(epsilon=0.2, k=K)
    specs = build_specs([(n, D, K)], TRIALS, SWEEP_SEED)
    retry = RetryPolicy(max_attempts=3, backoff_base=0.0)

    plain, plain_s = _timed(lambda: run_trials(
        sim_low_protocol, builder, specs, executor=SerialExecutor()))

    supervised, supervised_s = _timed(lambda: run_trials(
        sim_low_protocol, builder, specs, executor=SerialExecutor(),
        retry=retry))

    with tempfile.TemporaryDirectory() as tmp:
        from repro.runtime import RunJournal

        fsync_path = str(Path(tmp) / "fsync.jsonl")
        journaled, journal_s = _timed(lambda: run_trials(
            sim_low_protocol, builder, specs, executor=SerialExecutor(),
            journal=fsync_path))

        nofsync_path = Path(tmp) / "nofsync.jsonl"
        with RunJournal(nofsync_path, fsync=False) as journal:
            nofsync, nofsync_s = _timed(lambda: run_trials(
                sim_low_protocol, builder, specs, executor=SerialExecutor(),
                journal=journal))

        resumed, resume_s = _timed(lambda: run_trials(
            sim_low_protocol, builder, specs, executor=SerialExecutor(),
            journal=fsync_path, resume=True))

    baseline = pickle.dumps(plain)
    return {
        "plain_s": plain_s,
        "supervised_s": supervised_s,
        "journal_s": journal_s,
        "journal_nofsync_s": nofsync_s,
        "resume_s": resume_s,
        "supervised_identical": pickle.dumps(supervised) == baseline,
        "journal_identical": pickle.dumps(journaled) == baseline,
        "nofsync_identical": pickle.dumps(nofsync) == baseline,
        "resume_identical": pickle.dumps(resumed) == baseline,
        "trials": TRIALS,
    }


def run_grid(ns: list[int]) -> list[dict]:
    rows = []
    with quiet_generator_shortfall():
        for n in ns:
            row = _trial(n)
            rows.append({
                "n": n,
                "supervised_overhead":
                    row["supervised_s"] / max(row["plain_s"], 1e-12),
                "journal_overhead":
                    row["journal_s"] / max(row["plain_s"], 1e-12),
                "resume_speedup":
                    row["plain_s"] / max(row["resume_s"], 1e-12),
                **row,
            })
    return rows


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'plain':>8} {'superv':>8} {'journal':>8} "
        f"{'resume':>8} {'ovh':>6} {'replay':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} "
            f"{row['plain_s'] * 1e3:>6.1f}ms "
            f"{row['supervised_s'] * 1e3:>6.1f}ms "
            f"{row['journal_s'] * 1e3:>6.1f}ms "
            f"{row['resume_s'] * 1e3:>6.1f}ms "
            f"{row['journal_overhead']:>5.2f}x "
            f"{row['resume_speedup']:>7.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical records, bounded cost, fast replay."""
    failures = []
    for row in rows:
        for variant in ("supervised", "journal", "nofsync", "resume"):
            if not row[f"{variant}_identical"]:
                failures.append(
                    f"n={row['n']}: {variant} records differ from plain"
                )
        for overhead in ("supervised_overhead", "journal_overhead"):
            if row[overhead] > OVERHEAD_CEILING:
                failures.append(
                    f"n={row['n']}: {overhead} {row[overhead]:.2f}x "
                    f"> {OVERHEAD_CEILING}x"
                )
        if row["resume_speedup"] < RESUME_FLOOR:
            failures.append(
                f"n={row['n']}: resume replay {row['resume_speedup']:.1f}x "
                f"< {RESUME_FLOOR}x"
            )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "fault_tolerance",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "overhead_ceiling": OVERHEAD_CEILING,
        "resume_floor": RESUME_FLOOR,
        "rows": rows,
    }, indent=2) + "\n")


def test_fault_tolerance_overhead_and_identical_records(benchmark, print_row):
    """pytest entry: quick grid, identical records, bounded overhead."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_NS), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"fault-tolerance n={row['n']}: journal "
            f"{row['journal_overhead']:.2f}x, replay "
            f"{row['resume_speedup']:.1f}x"
        )
    benchmark.extra_info["journal_overheads"] = {
        str(r["n"]): round(r["journal_overhead"], 3) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    ns = QUICK_NS if "--quick" in argv else FULL_NS
    json_path = Path(__file__).with_name("BENCH_fault_tolerance.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_fault_tolerance.py [--quick] "
                  "[--check-baseline] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(ns)
    print_table(rows)
    failures = check_floor(rows)
    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy.  The
        # gated quantity is replay speed: journal/supervision overheads
        # hover near 1.0x and have their own absolute ceiling above.
        baseline_failures = check_baseline(
            rows, Path(__file__).with_name("BENCH_fault_tolerance.json"),
            key_fields=("n",), value_field="resume_speedup",
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    if failures:
        print("ACCEPTANCE BAR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: supervision + journal <= {OVERHEAD_CEILING}x plain, "
        f"resume replay >= {RESUME_FLOOR}x, records identical throughout"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

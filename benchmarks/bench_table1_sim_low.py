"""T1-R2a: simultaneous upper bound O~(k sqrt(n)) for d = O(sqrt(n)).

Regenerates the sparse-regime column of Table 1's simultaneous row: the
n-sweep fits the exponent of communication against n (claimed 1/2), the
k-sweep confirms linearity in k, and the detection rate on certified
epsilon-far instances stays high throughout.

All trial execution routes through :mod:`repro.runtime` (``run_sweep``),
so ``REPRO_WORKERS`` parallelises these sweeps too.
"""

from __future__ import annotations

from repro.analysis.experiments import run_sweep
from repro.analysis.scaling import fit_axis
from repro.analysis.table1 import row_sim_low_upper
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import far_instance
from repro.graphs.partition import partition_all_to_all, partition_disjoint


def test_exponent_on_n(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_sim_low_upper(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["claimed_exponent"] = report.claimed
    benchmark.extra_info["measured_exponent"] = report.measured
    print_row(report.formatted())
    assert abs(report.measured - report.claimed) < 0.12, report.formatted()


def test_linear_in_k(benchmark, print_row):
    """The O~(k sqrt(n)) worst case is the duplicated regime: every player
    may hold (and send) every sampled edge.  Under all-to-all duplication
    the k-sweep is linear; with disjoint inputs the k-dependence vanishes
    (Corollary 3.27 — see test_no_duplication_saves_factor_k)."""
    n, d = 2400, 6.0
    ks = [2, 4, 8, 16]
    params = SimLowParams(epsilon=0.2, delta=0.2)

    def instance(n_: int, d_: float, seed: int, k: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_all_to_all(built.graph, k)

    def sweep():
        return run_sweep(
            lambda partition, s: find_triangle_sim_low(
                partition, params, seed=s
            ),
            instance, [(n, d, k) for k in ks], trials=3, seed=0,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = fit_axis(result.xs("k"), result.bits())
    benchmark.extra_info["k_exponent"] = fit.exponent
    print_row(
        f"T1-R2ak  sim-low k-sweep (worst-case duplication) at n={n}: "
        f"bits ~ k^{fit.exponent:.2f} (claimed 1.0) R²={fit.r_squared:.3f}"
    )
    assert abs(fit.exponent - 1.0) < 0.15, fit


def test_no_duplication_saves_factor_k(benchmark, print_row):
    """Corollary 3.27: without duplication, total sends are O~(sqrt n),
    independent of k — each distinct edge is sent by one player only.

    Both partitionings run through the runtime at the same spec seed, so
    they see the same underlying graph.
    """
    n, d, k = 2400, 6.0, 8
    params = SimLowParams(epsilon=0.2, delta=0.2)
    grid = [(n, d, k)]

    def disjoint(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_disjoint(built.graph, k, seed=seed + 1)

    def duplicated(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_all_to_all(built.graph, k)

    def protocol(partition, seed: int):
        return find_triangle_sim_low(partition, params, seed=seed)

    def run():
        without = run_sweep(protocol, disjoint, grid, trials=1, seed=7)
        duped = run_sweep(protocol, duplicated, grid, trials=1, seed=7)
        return without.records[0], duped.records[0]

    disjoint_run, duplicated_run = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = duplicated_run.bits / max(1, disjoint_run.bits)
    benchmark.extra_info["duplication_ratio"] = ratio
    benchmark.extra_info["k"] = k
    print_row(
        f"T1-R2an  no-duplication saving at k={k}: full duplication costs "
        f"{ratio:.1f}x the disjoint run (paper: factor ~k = {k})"
    )
    assert ratio > k / 3, "duplication should cost roughly a factor k"

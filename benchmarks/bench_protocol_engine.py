"""Mask-native protocol engine vs the set-based reference players.

PR 2 made the *graph* layer word-wide; this driver measures the protocol
*execution* layer that PR 3 rebuilt on the same kernel: whole-protocol
trials of the simultaneous testers (sim-low, sim-high, oblivious) on the
canonical epsilon-far disjoint partition, run once with the mask-native
:class:`~repro.comm.players.Player` (cached partition adjacency rows,
mask harvests, O(1) ledger) and once with the preserved
:class:`~repro.comm.reference.SetPlayer` (per-trial frozenset shredding,
per-edge Python set harvests).  Both execute the identical protocol code
through the ``player_factory`` seam, and every ``DetectionResult`` —
triangle, witness edges, cost summary, details — is asserted equal
before a speedup is reported.

The engine PR's acceptance bar: >= 3x on every protocol at n in
2000-4000, byte-identical outputs.  Results are also written to
``BENCH_protocol_engine.json`` next to this file (or ``--json PATH``) so
the perf trajectory has machine-readable data points.

Usage::

    python benchmarks/bench_protocol_engine.py            # full grid
    python benchmarks/bench_protocol_engine.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+speedup test
on the quick grid.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from baseline import check_baseline
from timing_helpers import best_of

from repro.analysis.table1 import far_disjoint_instance
from repro.comm.players import make_players
from repro.comm.reference import make_set_players
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low

#: (n, d) on the canonical far instance (epsilon=0.2, k=3, seed 7).
FULL_GRID = [(2000, 8.0), (3000, 8.0), (4000, 8.0)]
QUICK_GRID = [(2000, 8.0)]

SPEEDUP_FLOOR = 3.0
TRIAL_SEED = 1
K = 3

PROTOCOLS = [
    (
        "sim-low",
        lambda part, factory: find_triangle_sim_low(
            part, SimLowParams(epsilon=0.2, delta=0.2), seed=TRIAL_SEED,
            player_factory=factory,
        ),
    ),
    (
        "sim-high",
        lambda part, factory: find_triangle_sim_high(
            part, SimHighParams(epsilon=0.2, delta=0.2, c=2.0),
            seed=TRIAL_SEED, player_factory=factory,
        ),
    ),
    (
        "oblivious",
        lambda part, factory: find_triangle_sim_oblivious(
            part, ObliviousParams(epsilon=0.2, delta=0.2), seed=TRIAL_SEED,
            player_factory=factory,
        ),
    ),
]


def run_grid(grid, repeats: int = 5) -> list[dict]:
    build = far_disjoint_instance(epsilon=0.2, k=K)
    rows = []
    for n, d in grid:
        partition = build(n, d, 7)
        for name, protocol in PROTOCOLS:
            mask_s, mask_out = best_of(
                repeats, lambda: protocol(partition, make_players)
            )
            set_s, set_out = best_of(
                repeats, lambda: protocol(partition, make_set_players)
            )
            # Mismatches are recorded, not raised: the JSON must reflect
            # the failing run (it is written before the gate fires).
            rows.append({
                "n": n, "d": d, "protocol": name,
                "mask_s": mask_s, "set_s": set_s,
                "speedup": set_s / max(mask_s, 1e-12),
                "identical": mask_out == set_out,
                "found": mask_out.found,
                "total_bits": mask_out.cost.total_bits,
            })
    return rows


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'d':>5} {'protocol':<12} {'set':>9} {'mask':>9} {'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['d']:>5.1f} {row['protocol']:<12} "
            f"{row['set_s'] * 1e3:>7.1f}ms {row['mask_s'] * 1e3:>7.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical outputs, every trial >= the floor."""
    failures = [
        f"{row['protocol']} at n={row['n']}: DetectionResult mismatch "
        "between mask and reference players"
        for row in rows if not row["identical"]
    ]
    failures.extend(
        f"{row['protocol']} at n={row['n']}: "
        f"{row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
        for row in rows
        if row["n"] >= 2000 and row["speedup"] < SPEEDUP_FLOOR
    )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "protocol_engine",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    }, indent=2) + "\n")


def test_protocol_engine_speedup_and_identical_results(benchmark, print_row):
    """pytest entry: quick grid, results identical, floor respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_GRID, repeats=3), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"engine {row['protocol']} n={row['n']}: {row['speedup']:.1f}x"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['protocol']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    grid = QUICK_GRID if "--quick" in argv else FULL_GRID
    json_path = Path(__file__).with_name("BENCH_protocol_engine.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_protocol_engine.py [--quick] "
                  "[--check-baseline] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(grid)
    print_table(rows)
    failures = check_floor(rows)
    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy.
        baseline_failures = check_baseline(
            rows, Path(__file__).with_name("BENCH_protocol_engine.json"),
            key_fields=("protocol", "n"),
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    if failures:
        print("SPEEDUP FLOOR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: all protocols >= {SPEEDUP_FLOOR}x, DetectionResults identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""CSR kernel + vectorized generator benchmarks: the n = 10^6 regime.

Three claims, one driver:

* **Vectorized generation** (the ≥ 3x bar): ``gnd`` and
  ``powerlaw_host`` through the numpy edge-array path vs the scalar
  reference loop at n = 10^5, produced graphs asserted identical —
  the vectorized contract means the speedup is pure implementation.
* **CSR triangle natives** (the ≥ 1x bar): merge-intersection
  ``count_triangles`` / ``greedy_triangle_packing`` vs the packed
  kernel's wedge scan on sparse planted hosts, outputs asserted
  identical.  The packed scan walks the full n²/64-word bitmap; the
  CSR scan is O(m)-shaped, so its advantage *grows* with n at fixed d
  (measured ~3x at 32768, ~4x at 10^5).
* **Memory**: per-backend adjacency bytes (``Graph.nbytes``) on the
  same sparse host — the csr column is what makes n = 10^6 fit.

``--scale-check`` runs the end-to-end demonstration: a full-disclosure
referee sweep (every player ships its view, referee answers
``find_triangle``) on sparse planted epsilon-far hosts — records
asserted byte-identical across {bigint, packed, csr} at n = 10^4 and
across {packed, csr} at n = 10^5, then the Table-row-style point at
**n = 10^6** on the csr backend alone, executed in a subprocess so its
peak RSS is measured in isolation and gated against
``MILLION_MEMORY_BUDGET`` (the packed bitmap alone would be 125 GB).

``--check-baseline`` compares the fresh speedups against the committed
``BENCH_csr_kernel.json`` (see :mod:`baseline`) before overwriting it.

Usage::

    python benchmarks/bench_csr_kernel.py                  # full grids
    python benchmarks/bench_csr_kernel.py --quick          # CI smoke
    python benchmarks/bench_csr_kernel.py --scale-check    # + n=1e6 sweep
    python benchmarks/bench_csr_kernel.py --check-baseline # vs committed
    python benchmarks/bench_csr_kernel.py --json PATH      # artifact path

Also collected by ``pytest benchmarks/`` as correctness+speedup tests
on the smallest qualifying sizes.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from baseline import check_baseline
from timing_helpers import best_of

from repro.analysis.experiments import run_sweep
from repro.comm.encoding import edge_bits
from repro.comm.ledger import CostSummary
from repro.core.results import DetectionResult
from repro.graphs.generators import (
    gnd,
    planted_disjoint_triangles,
    powerlaw_host,
)
from repro.graphs.kernels import BACKEND_ENV_VAR
from repro.graphs.partition import EdgePartition, partition_disjoint
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
)

#: (n, d) for the generation gate.  The bar holds from n = 10^5 up; the
#: scalar loop is the expensive side, so one point keeps the bench fast.
GEN_GRID = [(100_000, 8.0)]
GEN_SPEEDUP_FLOOR = 3.0
GEN_GATED = ("gnd_generation", "powerlaw_generation")

#: (n, d) for csr vs packed triangle natives, sparse planted hosts.
TRIANGLE_FULL_GRID = [(32768, 8.0), (65536, 8.0), (100_000, 8.0)]
TRIANGLE_QUICK_GRID = [(32768, 8.0)]
#: csr must at least match the packed wedge scan on sparse hosts (it
#: measures ~3-4x ahead; 1.0 is the never-regress line).
CSR_TRIANGLE_FLOOR = 1.0
CSR_GATED = ("count_triangles", "greedy_packing")

#: Memory table sizes; bigint/packed columns only where their footprint
#: is itself benign to allocate.
MEMORY_SMALL_N = 10_000
MEMORY_MID_N = 100_000

MILLION_N = 1_000_000
IDENTITY_SMALL_N = 10_000
IDENTITY_MID_N = 100_000
#: Peak-RSS budget for the whole n = 10^6 sweep subprocess (instance
#: generation + partition + protocol).  Measured 2.86 GiB; the budget
#: leaves ~40% headroom and is still 30x under the packed bitmap alone.
MILLION_MEMORY_BUDGET = 4 << 30


# ----------------------------------------------------------------------
# The full-disclosure sweep protocol (picklable, backend-oblivious)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SparseFarBuilder:
    """``(n, d, seed) -> EdgePartition``: sparse planted far instance.

    ``n // 100`` vertex-disjoint planted triangles over a G(n, d)
    background, disjointly partitioned — the constant-degree host whose
    edge count (≈ n(d + 0.06)/2) stays O(n) at every scale.
    """

    k: int

    def __call__(self, n: int, d: float, seed: int) -> EdgePartition:
        instance = planted_disjoint_triangles(
            n, max(1, n // 100), seed=seed, background_degree=d
        )
        return partition_disjoint(instance.graph, k=self.k, seed=seed + 1)


@dataclass(frozen=True)
class FullDisclosureReferee:
    """Every player ships its whole view; the referee answers exactly.

    The cost model is the trivial upper bound the paper's protocols
    beat — |E_j| edges at ``edge_bits(n)`` each — but as a *sweep
    protocol* it is deliberately lean: detection is one
    ``find_triangle`` on the ground-truth union, which dispatches to
    the active kernel's native scan, so the sweep exercises the full
    generator → partition → kernel pipeline at any n the kernel can
    hold.  Deterministic and backend-oblivious, hence record-identical
    across backends on pinned seeds.
    """

    def __call__(self, partition: EdgePartition,
                 seed: int) -> DetectionResult:
        per_edge = edge_bits(partition.graph.n)
        shipped = sum(len(view) for view in partition.views)
        triangle = find_triangle(partition.graph)
        cost = CostSummary(
            total_bits=shipped * per_edge,
            upstream_bits=shipped * per_edge,
            downstream_bits=0,
            rounds=1,
            messages=partition.k,
        )
        witness = ()
        if triangle is not None:
            a, b, c = triangle
            witness = ((a, b), (a, c), (b, c))
        return DetectionResult(
            found=triangle is not None, triangle=triangle,
            cost=cost, witness_edges=witness,
        )


def _graph_nbytes_metric(spec, instance, outcome) -> dict:
    return {"graph_nbytes": instance.graph.nbytes}


# ----------------------------------------------------------------------
# Generation: vectorized vs scalar
# ----------------------------------------------------------------------
def run_generation_grid(grid, repeats: int = 2) -> list[dict]:
    rows = []
    for n, d in grid:
        cases = [
            ("gnd_generation",
             lambda vec: gnd(n, d, seed=3, vectorized=vec)),
            ("powerlaw_generation",
             lambda vec: powerlaw_host(n, d, seed=3, vectorized=vec)),
        ]
        for name, build in cases:
            vector_time, vector_graph = best_of(repeats, build, True)
            scalar_time, scalar_graph = best_of(repeats, build, False)
            assert scalar_graph == vector_graph, (
                f"{name} edge sets differ at n={n}, d={d}"
            )
            rows.append({
                "n": n, "d": d, "case": name,
                "scalar_s": scalar_time, "vector_s": vector_time,
                "speedup": scalar_time / max(vector_time, 1e-12),
                "edges": scalar_graph.num_edges,
            })
    return rows


# ----------------------------------------------------------------------
# Triangle natives: csr vs packed
# ----------------------------------------------------------------------
def build_sparse_host(n: int, d: float, seed: int = 1):
    """One planted instance, bit-identical on the packed and csr kernels."""
    instance = planted_disjoint_triangles(
        n, n // 10, seed=seed, background_degree=d, backend="csr"
    )
    csr = instance.graph
    packed = csr.to_backend("packed")
    assert packed.num_edges == csr.num_edges
    return packed, csr


def run_triangle_grid(grid, repeats: int = 3) -> list[dict]:
    rows = []
    for n, d in grid:
        packed, csr = build_sparse_host(n, d)
        cases = [
            ("count_triangles", count_triangles),
            ("greedy_packing", greedy_triangle_packing),
            ("find_triangle", find_triangle),
        ]
        for name, fn in cases:
            csr_time, csr_out = best_of(repeats, fn, csr)
            packed_time, packed_out = best_of(repeats, fn, packed)
            assert csr_out == packed_out, (
                f"{name} output mismatch at n={n}, d={d}"
            )
            rows.append({
                "n": n, "d": d, "case": name,
                "packed_s": packed_time, "csr_s": csr_time,
                "speedup": packed_time / max(csr_time, 1e-12),
            })
    return rows


# ----------------------------------------------------------------------
# Memory table
# ----------------------------------------------------------------------
def run_memory_table(include_mid_packed: bool) -> list[dict]:
    """Per-backend ``Graph.nbytes`` on the same sparse host.

    The bigint column is only sampled at n = 10^4 and the packed column
    at ≤ 10^5 (full mode): above that, *allocating* those kernels is the
    cost the csr backend exists to avoid.
    """
    rows = []
    for n in (MEMORY_SMALL_N, MEMORY_MID_N):
        csr = planted_disjoint_triangles(
            n, n // 100, seed=1, background_degree=8.0, backend="csr"
        ).graph
        backends = {"csr": csr}
        if n <= MEMORY_SMALL_N:
            backends["bigint"] = csr.to_backend("bigint")
            backends["packed"] = csr.to_backend("packed")
        elif include_mid_packed:
            backends["packed"] = csr.to_backend("packed")
        for backend, graph in backends.items():
            rows.append({
                "case": "memory", "n": n, "backend": backend,
                "edges": graph.num_edges, "nbytes": graph.nbytes,
            })
    return rows


# ----------------------------------------------------------------------
# Floors
# ----------------------------------------------------------------------
def check_generation_floor(rows) -> list[str]:
    failures = []
    for row in rows:
        if (
            row["case"] in GEN_GATED
            and row["n"] >= 100_000
            and row["speedup"] < GEN_SPEEDUP_FLOOR
        ):
            failures.append(
                f"{row['case']} at n={row['n']}: "
                f"{row['speedup']:.1f}x < {GEN_SPEEDUP_FLOOR}x"
            )
    return failures


def check_triangle_floor(rows) -> list[str]:
    failures = []
    for row in rows:
        if row["case"] in CSR_GATED and row["speedup"] < CSR_TRIANGLE_FLOOR:
            failures.append(
                f"csr {row['case']} at n={row['n']}: "
                f"{row['speedup']:.2f}x < {CSR_TRIANGLE_FLOOR}x vs packed"
            )
    return failures


# ----------------------------------------------------------------------
# Scale check
# ----------------------------------------------------------------------
def _run_identity_sweep(n: int, backends, trials: int) -> list[str]:
    """Full-disclosure sweep records must match across ``backends``."""
    grid = [(n, 3.0, 3)]
    per_backend = {}
    for backend in backends:
        os.environ[BACKEND_ENV_VAR] = backend
        try:
            per_backend[backend] = run_sweep(
                FullDisclosureReferee(), SparseFarBuilder(k=3),
                grid, trials=trials, seed=0,
            ).records
        finally:
            os.environ.pop(BACKEND_ENV_VAR, None)
    reference = per_backend[backends[0]]
    failures = []
    for backend in backends[1:]:
        if per_backend[backend] != reference:
            failures.append(
                f"records differ at n={n}: {backends[0]} vs {backend}"
            )
    if not failures:
        print(
            f"scale-check n={n}: records identical across "
            f"{'/'.join(backends)} (bits={[r.bits for r in reference]})"
        )
    return failures


def run_million_point() -> dict:
    """The n = 10^6 sweep point, run in *this* process (child mode)."""
    os.environ[BACKEND_ENV_VAR] = "csr"
    try:
        start = time.perf_counter()
        result = run_sweep(
            FullDisclosureReferee(), SparseFarBuilder(k=3),
            [(MILLION_N, 3.0, 3)], trials=1, seed=0,
            metrics=_graph_nbytes_metric,
        )
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop(BACKEND_ENV_VAR, None)
    record = result.records[0]
    point = result.points[0]
    return {
        "n": MILLION_N,
        "found": record.found,
        "bits": record.bits,
        "graph_nbytes": record.extras["graph_nbytes"],
        "detection_rate": point.detection_rate,
        "seconds": round(elapsed, 2),
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss * 1024,
    }


def run_scale_check() -> tuple[list[str], dict]:
    """Identity at 10^4/10^5, then the isolated n = 10^6 point."""
    failures = _run_identity_sweep(
        IDENTITY_SMALL_N, ("bigint", "packed", "csr"), trials=2
    )
    failures += _run_identity_sweep(
        IDENTITY_MID_N, ("packed", "csr"), trials=1
    )
    # The million point runs in a subprocess so its peak RSS reflects
    # only that pipeline, not the packed bitmaps allocated above.
    child = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--million-child"],
        capture_output=True, text=True, env=os.environ.copy(),
    )
    if child.returncode != 0:
        failures.append(
            f"n={MILLION_N} child failed "
            f"(rc={child.returncode}): {child.stderr.strip()[-500:]}"
        )
        return failures, {}
    summary = json.loads(child.stdout.strip().splitlines()[-1])
    if not summary["found"]:
        failures.append(
            f"n={MILLION_N}: full disclosure missed the planted triangles"
        )
    if summary["peak_rss_bytes"] > MILLION_MEMORY_BUDGET:
        failures.append(
            f"n={MILLION_N}: peak RSS "
            f"{summary['peak_rss_bytes'] / 2**30:.2f} GiB exceeds the "
            f"{MILLION_MEMORY_BUDGET / 2**30:.0f} GiB budget"
        )
    print(
        f"scale-check n={MILLION_N}: csr sweep ok in "
        f"{summary['seconds']}s — bits={summary['bits']}, "
        f"graph={summary['graph_nbytes'] / 2**20:.1f} MiB, "
        f"peak RSS={summary['peak_rss_bytes'] / 2**30:.2f} GiB "
        f"(budget {MILLION_MEMORY_BUDGET / 2**30:.0f} GiB)"
    )
    return failures, summary


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def print_generation_table(rows) -> None:
    header = (
        f"{'n':>7} {'d':>5} {'case':<20} {'scalar':>10} {'vector':>10} "
        f"{'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>7} {row['d']:>5.1f} {row['case']:<20} "
            f"{row['scalar_s'] * 1e3:>8.1f}ms "
            f"{row['vector_s'] * 1e3:>8.1f}ms {row['speedup']:>6.1f}x"
        )


def print_triangle_table(rows) -> None:
    header = (
        f"{'n':>7} {'d':>5} {'case':<20} {'packed':>10} {'csr':>10} "
        f"{'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>7} {row['d']:>5.1f} {row['case']:<20} "
            f"{row['packed_s'] * 1e3:>8.1f}ms "
            f"{row['csr_s'] * 1e3:>8.1f}ms {row['speedup']:>6.1f}x"
        )


def print_memory_table(rows) -> None:
    header = f"{'n':>7} {'backend':<8} {'edges':>9} {'adjacency':>12}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>7} {row['backend']:<8} {row['edges']:>9} "
            f"{row['nbytes'] / 2**20:>10.1f}Mi"
        )


def write_json(rows, path: Path, scale_check=None) -> None:
    payload = {
        "bench": "csr_kernel",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generation_floor": GEN_SPEEDUP_FLOOR,
        "csr_triangle_floor": CSR_TRIANGLE_FLOOR,
        "gated_cases": list(GEN_GATED) + list(CSR_GATED),
        "rows": rows,
    }
    if scale_check is not None:
        payload["scale_check"] = scale_check
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest entries (small qualifying sizes)
# ----------------------------------------------------------------------
def test_csr_triangle_natives_beat_packed(benchmark, print_row):
    """pytest entry: csr quick grid, identical outputs, ≥1x floor."""
    rows = benchmark.pedantic(
        lambda: run_triangle_grid(TRIANGLE_QUICK_GRID, repeats=2),
        rounds=1, iterations=1,
    )
    for row in rows:
        print_row(f"csr {row['case']} n={row['n']}: {row['speedup']:.1f}x")
    benchmark.extra_info["speedups"] = {
        f"{r['case']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_triangle_floor(rows)


def test_vectorized_generation_speedup(benchmark, print_row):
    """pytest entry: generation gate at n = 10^5, identical edge sets."""
    rows = benchmark.pedantic(
        lambda: run_generation_grid(GEN_GRID, repeats=1),
        rounds=1, iterations=1,
    )
    for row in rows:
        print_row(f"{row['case']} n={row['n']}: {row['speedup']:.1f}x")
    benchmark.extra_info["speedups"] = {
        f"{r['case']}@{r['n']}": round(r["speedup"], 2) for r in rows
    }
    assert not check_generation_floor(rows)


# ----------------------------------------------------------------------
def main(argv: list[str]) -> int:
    if "--million-child" in argv:
        print(json.dumps(run_million_point()))
        return 0

    quick = "--quick" in argv
    json_path = Path(__file__).with_name("BENCH_csr_kernel.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print(
                "usage: bench_csr_kernel.py [--quick] [--scale-check] "
                "[--check-baseline] [--json PATH]"
            )
            return 2
        json_path = Path(argv[operand])

    gen_rows = run_generation_grid(GEN_GRID, repeats=1 if quick else 2)
    print_generation_table(gen_rows)
    failures = check_generation_floor(gen_rows)

    triangle_rows = run_triangle_grid(
        TRIANGLE_QUICK_GRID if quick else TRIANGLE_FULL_GRID,
        repeats=2 if quick else 3,
    )
    print_triangle_table(triangle_rows)
    failures.extend(check_triangle_floor(triangle_rows))

    memory_rows = run_memory_table(include_mid_packed=not quick)
    print_memory_table(memory_rows)

    all_rows = gen_rows + triangle_rows + memory_rows

    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy.  Only
        # the gated cases: find_triangle's packed early-exit finishes in
        # ~2ms so its ratio is all noise, and memory rows carry no
        # speedup at all.
        gated_rows = [
            r for r in all_rows
            if r["case"] in GEN_GATED + CSR_GATED
        ]
        baseline_failures = check_baseline(
            gated_rows, Path(__file__).with_name("BENCH_csr_kernel.json")
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")

    scale_check = None
    if "--scale-check" in argv:
        scale_failures, summary = run_scale_check()
        failures.extend(scale_failures)
        scale_check = {"identical": not scale_failures, **summary}

    write_json(all_rows, json_path, scale_check)
    print(f"wrote {json_path}")

    if failures:
        print("SPEEDUP FLOOR MISSED / IDENTITY BROKEN / BUDGET EXCEEDED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: generation >= {GEN_SPEEDUP_FLOOR}x vectorized, csr natives "
        f">= {CSR_TRIANGLE_FLOOR}x vs packed on sparse hosts, "
        f"outputs identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""T1-R3 vs T1-R4: the quadratic-vs-linear coverage gap, measured exactly.

Why is the one-way lower bound Ω((nd)^{1/6}) but the simultaneous one
Ω((nd)^{1/3})?  Because a one-way transcript's coverage can grow with the
*square* of its information spend ΣΔ⁺, while a simultaneous referee —
forced to pre-commit to a target edge set — only gets linear growth.  On a
small µ universe with exact posteriors we measure both sides of
Theorem 4.7's inequality per budget and watch the quadratic term engage.
"""

from __future__ import annotations

from repro.lowerbounds.covered import analyze_player, truncation_message
from repro.lowerbounds.oneway_analysis import (
    analyze_transcript,
    coverage_bound_rhs,
    expected_transcript_stats,
)

PART = 2
PRIOR = 0.3
U_PART = list(range(PART))
ALICE_UNIVERSE = [(u, v1) for u in U_PART for v1 in range(PART)]
BOB_UNIVERSE = [(u, v2) for u in U_PART for v2 in range(PART)]
PAIRS = [(v1, v2) for v1 in range(PART) for v2 in range(PART)]


def test_coverage_bound_tightness(benchmark, print_row):
    """Bound vs actual coverage across budgets: the bound holds on every
    transcript and the slack stays bounded (the inequality is doing work,
    not trivially loose)."""

    def sweep():
        rows = []
        for budget in (0, 1, 2, 4):
            alice = analyze_player(
                ALICE_UNIVERSE, PRIOR, truncation_message(budget)
            )
            bob = analyze_player(
                BOB_UNIVERSE, PRIOR, truncation_message(budget)
            )
            worst_ratio = 0.0
            expected_bound = 0.0
            expected_mass = 0.0
            for m1, p1 in alice.message_probabilities.items():
                for m2, p2 in bob.message_probabilities.items():
                    stats = analyze_transcript(
                        alice, bob, m1, m2, PAIRS, U_PART
                    )
                    bound = coverage_bound_rhs(
                        stats.delta_plus_alice, stats.delta_plus_bob,
                        PRIOR, PART, PART, PART,
                    )
                    assert stats.cover_mass <= bound + 1e-9
                    if bound > 0:
                        worst_ratio = max(
                            worst_ratio, stats.cover_mass / bound
                        )
                    expected_bound += p1 * p2 * bound
                    expected_mass += p1 * p2 * stats.cover_mass
            rows.append((budget, worst_ratio, expected_mass, expected_bound))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {"budget": b, "tightness": t} for b, t, _, _ in rows
    ]
    print_row(
        "T1-R34   coverage bound tightness (mass/bound per budget): "
        + ", ".join(f"b={b}: {t:.2f}" for b, t, _, _ in rows)
    )
    # The bound must actually bind somewhere (tightness not ~0 everywhere).
    assert max(t for _, t, _, _ in rows) > 0.3


def test_certainty_needs_budget_but_mass_is_free(benchmark, print_row):
    """E[cover mass] is invariant; E[|C(t)|] starts at zero — the exact
    statement separating what communication buys from what the prior gives."""

    def sweep():
        masses = []
        counts = []
        for budget in (0, 1, 2, 4):
            alice = analyze_player(
                ALICE_UNIVERSE, PRIOR, truncation_message(budget)
            )
            bob = analyze_player(
                BOB_UNIVERSE, PRIOR, truncation_message(budget)
            )
            _, mass, count = expected_transcript_stats(
                alice, bob, PAIRS, U_PART
            )
            masses.append(mass)
            counts.append(count)
        return masses, counts

    masses, counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["masses"] = masses
    benchmark.extra_info["counts"] = counts
    print_row(
        "T1-R34b  E[mass] per budget: "
        + "/".join(f"{m:.3f}" for m in masses)
        + "  E[|C|]: "
        + "/".join(f"{c:.3f}" for c in counts)
    )
    spread = max(masses) - min(masses)
    assert spread < 1e-9, "tower rule violated"
    assert counts[0] == 0.0
    assert counts[-1] > 0.5

"""Batched trial engine vs the per-trial reference path (PR 7).

The workload is the repo's bread-and-butter experiment: estimating a
protocol's detection probability at one grid point by running many
seeded trials against one instance.  The historical path pays the full
cost per trial — rebuild the instance, rebuild the players, reseed the
coins.  The batched engine (``run_trials(..., batch=True)`` on
shared-instance specs) builds the instance once per grid point, reuses
the players' packed adjacency rows across the repetition axis, and
constructs all trial coin streams in one pass.

Every row asserts the acceptance bar before any speedup is reported:

* batched records == per-trial records, byte for byte (same specs, both
  executors) — the engine is a pure throughput change;
* serial-batched == parallel-batched — sharding by grid point preserves
  the record stream.

The gate is >= 5x on the sim-low detection-probability estimate for
n in 2000-4000.  Results go to ``BENCH_trial_batching.json`` (or
``--json PATH``).

Usage::

    python benchmarks/bench_trial_batching.py            # full grid
    python benchmarks/bench_trial_batching.py --quick    # CI smoke grid

Also collected by ``pytest benchmarks/`` as a correctness+speedup test
on the quick grid.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from baseline import check_baseline
from timing_helpers import quiet_generator_shortfall

from repro.analysis.experiments import DefaultInstanceBuilder
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.runtime import ParallelExecutor, SerialExecutor, build_specs, run_trials

FULL_NS = [2000, 3000, 4000]
QUICK_NS = [2000, 4000]

SPEEDUP_FLOOR = 5.0
D = 8.0
K = 3
TRIALS = 16
SWEEP_SEED = 7

PARAMS = SimLowParams(epsilon=0.2, delta=0.2)


def sim_low_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_low(partition, PARAMS, seed=seed, shared=shared)


def _trial(n: int) -> dict:
    """One detection-probability estimate, per-trial vs batched."""
    import time

    builder = DefaultInstanceBuilder(epsilon=0.2, k=K)
    specs = build_specs([(n, D, K)], TRIALS, SWEEP_SEED,
                        shared_instances=True)

    start = time.perf_counter()
    per_trial = run_trials(sim_low_protocol, builder, specs,
                           executor=SerialExecutor())
    per_trial_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_trials(sim_low_protocol, builder, specs,
                         executor=SerialExecutor(), batch=True)
    batched_s = time.perf_counter() - start

    parallel = run_trials(sim_low_protocol, builder, specs,
                          executor=ParallelExecutor(workers=2), batch=True)

    detection_rate = sum(1 for r in batched if r.found) / TRIALS
    return {
        "per_trial_s": per_trial_s,
        "batched_s": batched_s,
        "identical": batched == per_trial,
        "parallel_identical": parallel == batched,
        "detection_rate": detection_rate,
        "trials": TRIALS,
    }


def run_grid(ns: list[int]) -> list[dict]:
    rows = []
    with quiet_generator_shortfall():
        for n in ns:
            row = _trial(n)
            # Mismatches are recorded, not raised: the JSON must reflect
            # the failing run (written before the gate fires).
            rows.append({
                "n": n,
                "speedup": row["per_trial_s"] / max(row["batched_s"], 1e-12),
                **row,
            })
    return rows


def print_table(rows) -> None:
    header = (
        f"{'n':>6} {'trials':>7} {'per-trial':>10} {'batched':>9} {'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>6} {row['trials']:>7} "
            f"{row['per_trial_s'] * 1e3:>8.1f}ms "
            f"{row['batched_s'] * 1e3:>7.1f}ms "
            f"{row['speedup']:>6.1f}x"
        )


def check_floor(rows) -> list[str]:
    """The acceptance bar: identical records, speedup >= the floor."""
    failures = [
        f"n={row['n']}: batched and per-trial records differ"
        for row in rows if not row["identical"]
    ]
    failures.extend(
        f"n={row['n']}: serial and parallel batched records differ"
        for row in rows if not row["parallel_identical"]
    )
    failures.extend(
        f"n={row['n']}: {row['speedup']:.1f}x < {SPEEDUP_FLOOR}x"
        for row in rows if row["speedup"] < SPEEDUP_FLOOR
    )
    return failures


def write_json(rows, path: Path) -> None:
    path.write_text(json.dumps({
        "bench": "trial_batching",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    }, indent=2) + "\n")


def test_trial_batching_speedup_and_identical_records(benchmark, print_row):
    """pytest entry: quick grid, records identical, floor respected."""
    rows = benchmark.pedantic(
        lambda: run_grid(QUICK_NS), rounds=1, iterations=1
    )
    for row in rows:
        print_row(
            f"batching n={row['n']}: {row['speedup']:.1f}x "
            f"(detection {row['detection_rate']:.2f})"
        )
    benchmark.extra_info["speedups"] = {
        str(r["n"]): round(r["speedup"], 2) for r in rows
    }
    assert not check_floor(rows)


def main(argv: list[str]) -> int:
    ns = QUICK_NS if "--quick" in argv else FULL_NS
    json_path = Path(__file__).with_name("BENCH_trial_batching.json")
    if "--json" in argv:
        operand = argv.index("--json") + 1
        if operand >= len(argv):
            print("usage: bench_trial_batching.py [--quick] "
                  "[--check-baseline] [--json PATH]")
            return 2
        json_path = Path(argv[operand])
    rows = run_grid(ns)
    print_table(rows)
    failures = check_floor(rows)
    if "--check-baseline" in argv:
        # Compare before write_json overwrites the committed copy.
        baseline_failures = check_baseline(
            rows, Path(__file__).with_name("BENCH_trial_batching.json"),
            key_fields=("n",),
        )
        failures.extend(baseline_failures)
        if not baseline_failures:
            print("baseline check: within tolerance of committed results")
    write_json(rows, json_path)
    print(f"wrote {json_path}")
    if failures:
        print("ACCEPTANCE BAR MISSED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"ok: batched >= {SPEEDUP_FLOOR}x per-trial, "
        "records identical across paths and executors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

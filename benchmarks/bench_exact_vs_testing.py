"""X-1: property testing vs exact detection — the Section 5 headline.

[38] showed exact triangle detection needs Ω(k n d) bits; the paper's point
is that the property-testing relaxation breaks that barrier even for
simultaneous protocols.  This bench regenerates the comparison: the exact
baseline's exponent on nd is ~1, every tester's is far below, and the
absolute gap widens with n.
"""

from __future__ import annotations

import statistics

from repro.analysis.table1 import row_exact_baseline
from repro.core.exact_baseline import exact_triangle_detection
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import far_instance
from repro.graphs.partition import partition_disjoint


def test_exact_pays_linear(benchmark, print_row):
    report = benchmark.pedantic(
        lambda: row_exact_baseline(quick=True, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["measured_exponent"] = report.measured
    print_row(report.formatted())
    assert abs(report.measured - 1.0) < 0.1, report.formatted()


def test_gap_widens_with_n(benchmark, print_row):
    ns = [600, 1200, 2400, 4800]
    d, k = 6.0, 3
    params = SimLowParams(epsilon=0.2, delta=0.2)

    def sweep():
        ratios = []
        for n in ns:
            per_seed = []
            for seed in range(2):
                instance = far_instance(n, d, 0.2, seed=seed)
                partition = partition_disjoint(
                    instance.graph, k, seed=seed + 1
                )
                exact_bits = exact_triangle_detection(partition).total_bits
                test_bits = find_triangle_sim_low(
                    partition, params, seed=seed
                ).total_bits
                per_seed.append(exact_bits / max(1, test_bits))
            ratios.append(statistics.median(per_seed))
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["exact_over_testing"] = dict(zip(ns, ratios))
    print_row(
        "X-1g     exact/testing cost ratio: "
        + ", ".join(f"n={n}: {r:.1f}x" for n, r in zip(ns, ratios))
    )
    assert ratios[-1] > ratios[0], "the advantage must widen with n"


def test_testing_beats_exact_even_oblivious(benchmark, print_row):
    """Even the degree-oblivious simultaneous tester beats exact at scale."""
    n, d, k = 4800, 6.0, 4

    def run():
        instance = far_instance(n, d, 0.2, seed=9)
        partition = partition_disjoint(instance.graph, k, seed=10)
        exact_bits = exact_triangle_detection(partition).total_bits
        oblivious_bits = find_triangle_sim_oblivious(
            partition, ObliviousParams(epsilon=0.2, delta=0.2), seed=11
        ).total_bits
        return exact_bits, oblivious_bits

    exact_bits, oblivious_bits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["exact_bits"] = exact_bits
    benchmark.extra_info["oblivious_bits"] = oblivious_bits
    print_row(
        f"X-1o     n={n}: exact {exact_bits}b vs oblivious tester "
        f"{oblivious_bits}b ({exact_bits / oblivious_bits:.1f}x saved)"
    )
    assert oblivious_bits < exact_bits

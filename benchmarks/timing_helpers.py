"""Shared helpers for the benchmark drivers.

One definition of the best-of-N wall-clock measurement every
``bench_*`` driver uses, so methodology changes (warmup, median, ...)
land in one place.  Imported as a sibling module — both entry points
resolve it: ``python benchmarks/bench_X.py`` puts ``benchmarks/`` on
``sys.path[0]``, and pytest inserts the rootdir-relative test directory
(the same mechanism ``tests/`` uses for its ``*_helpers`` modules).
"""

from __future__ import annotations

import contextlib
import logging
import time
import warnings

__all__ = ["best_of", "quiet_generator_shortfall"]


def best_of(repeats: int, fn, *args) -> tuple[float, object]:
    """(best wall-time, result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


@contextlib.contextmanager
def quiet_generator_shortfall():
    """Silence ``far_instance``'s epsilon-shortfall diagnostic.

    The drivers run known-shortfall constructions on purpose (the
    planted grids max out the n//3 disjointness cap), and repeated
    trials would repeat the message once per instance.  Covers both the
    historical ``RuntimeWarning`` and today's logging-based warning.
    """
    logger = logging.getLogger("repro.graphs.generators")
    previous = logger.level
    logger.setLevel(logging.ERROR)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        logger.setLevel(previous)

"""Shared timing helper for the benchmark drivers.

One definition of the best-of-N wall-clock measurement every
``bench_*`` driver uses, so methodology changes (warmup, median, ...)
land in one place.  Imported as a sibling module — both entry points
resolve it: ``python benchmarks/bench_X.py`` puts ``benchmarks/`` on
``sys.path[0]``, and pytest inserts the rootdir-relative test directory
(the same mechanism ``tests/`` uses for its ``*_helpers`` modules).
"""

from __future__ import annotations

import time

__all__ = ["best_of"]


def best_of(repeats: int, fn, *args) -> tuple[float, object]:
    """(best wall-time, result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result

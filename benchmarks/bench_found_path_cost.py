"""Theorem 3.20's refined claim: found-path cost is Õ(k·sqrt(d(B_min)) + k²).

With probability 1-δ the unrestricted protocol stops at the minimal full
bucket B_min, paying star samples of ~sqrt(d(B_min)) edges instead of the
worst case's sqrt(d_h).  The claim presumes B_min's vertices are *full*
(Θ(ε·d) disjoint vees each), so the instance family is disjoint cliques
K_{D+1}: every clique vertex has degree D and a near-perfect vee matching
on its neighbourhood.  n and k are held fixed across the D-sweep; the
star-posting bits (the d(B_min)-driven term) are fitted against D.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from repro.analysis.scaling import fit_power_law
from repro.analysis.table1 import tuned_unrestricted_params
from repro.core.unrestricted import find_triangle_unrestricted
from repro.graphs.buckets import bucket_index, min_full_bucket
from repro.graphs.generators import disjoint_cliques
from repro.graphs.partition import partition_disjoint
from repro.graphs.triangles import (
    clique_packing_density_floor,
    greedy_triangle_packing,
)

STAR_LABELS = ("SampleEdges", "post-star")


def star_bits(result) -> int:
    return sum(
        bits
        for label, bits in result.cost.bits_by_label.items()
        if label in STAR_LABELS
    )


def test_found_path_scales_with_sqrt_bmin(benchmark, print_row):
    n, k, cliques = 16000, 3, 6
    degrees = [8, 26, 80, 242]  # one per bucket, off the 3^i boundaries

    def sweep():
        rows = []
        for degree in degrees:
            graph = disjoint_cliques(n, degree + 1, cliques, seed=1)
            # K_m holds ~m(m-1)/6 edge-disjoint triangles (one per edge
            # triple), i.e. the instance is ~1/3-far; the greedy packing
            # confirms this but costs minutes at K_243, so the analytic
            # value is used and cross-checked only on the smallest size.
            epsilon = 1.0 / 3.0
            if degree <= 26:
                measured = (
                    len(greedy_triangle_packing(graph)) / graph.num_edges
                )
                # The certified floor is a function of the instance
                # (Turán residue of K_{D+1}), not a universal constant:
                # a hard-coded 0.25 was above K₉'s true guarantee and
                # tripped on the greedy packing's 0.222 there.
                floor = float(clique_packing_density_floor(degree + 1))
                assert measured >= floor, (measured, floor)
                assert min_full_bucket(graph, measured) == (
                    bucket_index(degree)
                )
            partition = partition_disjoint(graph, k, seed=2)
            params = replace(
                tuned_unrestricted_params(k, graph.average_degree()),
                epsilon=epsilon,
                samples_per_bucket=4 * k,
            )
            bits = []
            stars = []
            found = 0
            for seed in range(3):
                result = find_triangle_unrestricted(
                    partition, params, seed=seed
                )
                bits.append(result.total_bits)
                stars.append(star_bits(result))
                found += result.found
            rows.append(
                (degree, statistics.median(bits),
                 statistics.median(stars), found / 3)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    degrees_f = [float(degree) for degree, _, _, _ in rows]
    stars = [max(1.0, star) for _, _, star, _ in rows]
    fit = fit_power_law(degrees_f, stars)
    benchmark.extra_info["star_exponent"] = fit.exponent
    benchmark.extra_info["rows"] = [
        {"d_bmin": degree, "bits": bits, "star_bits": star, "found": rate}
        for degree, bits, star, rate in rows
    ]
    print_row(
        "T1-R1f   found-path cost vs d(B_min) at fixed n: star bits ~ "
        f"d(B_min)^{fit.exponent:.2f} (claimed 0.5) R²={fit.r_squared:.3f}; "
        "detection " + "/".join(f"{rate:.2f}" for _, _, _, rate in rows)
    )
    assert abs(fit.exponent - 0.5) < 0.2, fit
    assert statistics.fmean(rate for _, _, _, rate in rows) >= 0.9

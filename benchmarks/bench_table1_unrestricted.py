"""T1-R1: unrestricted-communication upper bound O~(k (nd)^{1/4} + k²).

Regenerates the first row of Table 1: the n-sweep measures the exponent of
communication against nd on triangle-free worst-case controls (a one-sided
tester pays its maximum exactly when no triangle exists), and the k-sweep
exhibits the additive k² term (the Θ~(k)-sample bucket loop, each sample
costing Θ(k log n)).
"""

from __future__ import annotations

import math
import statistics

from repro.analysis.scaling import fit_power_law, strip_polylog
from repro.analysis.table1 import (
    _tuned_unrestricted_params,
    row_unrestricted_upper,
)
from repro.core.unrestricted import find_triangle_unrestricted
from repro.graphs.generators import triangle_free_degree_spread
from repro.graphs.partition import partition_disjoint


def test_exponent_on_nd(benchmark, print_row):
    """Fit bits ~ (nd)^a on the worst-case sweep; the paper claims a=1/4."""
    report = benchmark.pedantic(
        lambda: row_unrestricted_upper(quick=True, seed=0),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["claimed_exponent"] = report.claimed
    benchmark.extra_info["measured_exponent"] = report.measured
    benchmark.extra_info["note"] = report.note
    print_row(report.formatted())
    assert abs(report.measured - report.claimed) < 0.15, report.formatted()


def test_k_squared_term(benchmark, print_row):
    """Sweep k at fixed n: the Θ~(k)-sample bucket loop, each sample an
    O(k log n) interaction, gives the additive k² term.  The candidate cap
    is lifted to q so the sample loop runs in full (a capped loop hides the
    k² term behind the k-linear star broadcasts)."""
    from dataclasses import replace

    n, d, epsilon = 2048, 8.0, 0.2
    ks = [2, 4, 8, 16]

    sampling_labels = ("SampleUniformFromB~i", "approx_degree")

    def sampling_bits(result) -> int:
        return sum(
            bits
            for label, bits in result.cost.bits_by_label.items()
            if label.startswith(sampling_labels)
        )

    def sweep():
        totals = []
        sampling = []
        for k in ks:
            trial_total = []
            trial_sampling = []
            for seed in range(2):
                graph = triangle_free_degree_spread(
                    n, d, int(math.sqrt(n * d / epsilon)), seed=seed
                )
                partition = partition_disjoint(graph, k=k, seed=seed + 1)
                params = replace(
                    _tuned_unrestricted_params(k, d),
                    samples_per_bucket=2 * k,
                    max_candidates=2 * k,
                )
                result = find_triangle_unrestricted(
                    partition, params, seed=seed + 2
                )
                trial_total.append(result.total_bits)
                trial_sampling.append(sampling_bits(result))
            totals.append(statistics.median(trial_total))
            sampling.append(statistics.median(trial_sampling))
        return totals, sampling

    totals, sampling = benchmark.pedantic(sweep, rounds=1, iterations=1)
    k_floats = [float(k) for k in ks]
    total_fit = fit_power_law(k_floats, totals)
    sampling_fit = fit_power_law(k_floats, sampling)
    benchmark.extra_info["total_k_exponent"] = total_fit.exponent
    benchmark.extra_info["sampling_k_exponent"] = sampling_fit.exponent
    benchmark.extra_info["bits_per_k"] = dict(zip(ks, totals))
    print_row(
        f"T1-R1k   unrestricted k-sweep at n={n}: total bits ~ k^"
        f"{total_fit.exponent:.2f}; bucket-sampling machinery ~ k^"
        f"{sampling_fit.exponent:.2f} (the k² term: Θ~(k) samples x "
        f"O(k log n) each)"
    )
    # The sampling machinery carries the k² term; the star-posting terms
    # are k-linear, so the total sits between the two regimes.
    assert sampling_fit.exponent > 1.5, sampling_fit
    assert total_fit.exponent > 1.0, total_fit


def test_early_exit_on_far_instance(benchmark, print_row):
    """On far inputs the protocol stops at B_min: O~(k sqrt(d(B_min)) + k²).

    Planted triangles live in the lowest buckets, so the found-path cost is
    far below the worst-case control at the same size.
    """
    from repro.graphs.generators import far_instance

    n, d, k = 4096, 8.0, 3
    instance = far_instance(n, d, 0.2, seed=1)
    partition = partition_disjoint(instance.graph, k=k, seed=2)
    control = triangle_free_degree_spread(
        n, d, int(math.sqrt(n * d / 0.2)), seed=3
    )
    control_partition = partition_disjoint(control, k=k, seed=4)
    params = _tuned_unrestricted_params(k, d)

    def run_both():
        found = find_triangle_unrestricted(partition, params, seed=5)
        control_run = find_triangle_unrestricted(
            control_partition, params, seed=5
        )
        return found, control_run

    found, control_run = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["found_bits"] = found.total_bits
    benchmark.extra_info["worst_case_bits"] = control_run.total_bits
    print_row(
        f"T1-R1e   early exit: far-instance cost {found.total_bits}b vs "
        f"worst-case control {control_run.total_bits}b at n={n}"
    )
    assert found.found
    assert found.total_bits < control_run.total_bits

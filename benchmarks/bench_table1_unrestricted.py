"""T1-R1: unrestricted-communication upper bound O~(k (nd)^{1/4} + k²).

Regenerates the first row of Table 1: the n-sweep measures the exponent of
communication against nd on triangle-free worst-case controls (a one-sided
tester pays its maximum exactly when no triangle exists), and the k-sweep
exhibits the additive k² term (the Θ~(k)-sample bucket loop, each sample
costing Θ(k log n)).

All trial execution routes through :mod:`repro.runtime` (``run_sweep``),
so ``REPRO_WORKERS`` parallelises these sweeps too.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import replace

from repro.analysis.experiments import run_sweep
from repro.analysis.scaling import fit_axis
from repro.analysis.table1 import (
    tuned_unrestricted_params,
    row_unrestricted_upper,
)
from repro.core.unrestricted import find_triangle_unrestricted
from repro.graphs.generators import far_instance, triangle_free_degree_spread
from repro.graphs.partition import partition_disjoint


def test_exponent_on_nd(benchmark, print_row):
    """Fit bits ~ (nd)^a on the worst-case sweep; the paper claims a=1/4."""
    report = benchmark.pedantic(
        lambda: row_unrestricted_upper(quick=True, seed=0),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["claimed_exponent"] = report.claimed
    benchmark.extra_info["measured_exponent"] = report.measured
    benchmark.extra_info["note"] = report.note
    print_row(report.formatted())
    assert abs(report.measured - report.claimed) < 0.15, report.formatted()


def test_k_squared_term(benchmark, print_row):
    """Sweep k at fixed n: the Θ~(k)-sample bucket loop, each sample an
    O(k log n) interaction, gives the additive k² term.  The candidate cap
    is lifted to q so the sample loop runs in full (a capped loop hides the
    k² term behind the k-linear star broadcasts)."""
    n, d, epsilon = 2048, 8.0, 0.2
    ks = [2, 4, 8, 16]

    sampling_labels = ("SampleUniformFromB~i", "approx_degree")

    def instance(n_: int, d_: float, seed: int, k: int):
        graph = triangle_free_degree_spread(
            n_, d_, int(math.sqrt(n_ * d_ / epsilon)), seed=seed
        )
        return partition_disjoint(graph, k=k, seed=seed + 1)

    def protocol(partition, seed: int):
        k = partition.k
        params = replace(
            tuned_unrestricted_params(k, d),
            samples_per_bucket=2 * k,
            max_candidates=2 * k,
        )
        return find_triangle_unrestricted(partition, params, seed=seed)

    def sampling_bits(_spec, _partition, result) -> dict:
        return {
            "sampling_bits": sum(
                bits
                for label, bits in result.cost.bits_by_label.items()
                if label.startswith(sampling_labels)
            )
        }

    def sweep():
        return run_sweep(
            protocol, instance, [(n, d, k) for k in ks],
            trials=2, seed=0, metrics=sampling_bits,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    totals = result.bits()
    sampling = [
        statistics.median(result.point_extras(i, "sampling_bits"))
        for i in range(len(ks))
    ]
    k_floats = [float(k) for k in ks]
    total_fit = fit_axis(k_floats, totals)
    sampling_fit = fit_axis(k_floats, sampling)
    benchmark.extra_info["total_k_exponent"] = total_fit.exponent
    benchmark.extra_info["sampling_k_exponent"] = sampling_fit.exponent
    benchmark.extra_info["bits_per_k"] = dict(zip(ks, totals))
    print_row(
        f"T1-R1k   unrestricted k-sweep at n={n}: total bits ~ k^"
        f"{total_fit.exponent:.2f}; bucket-sampling machinery ~ k^"
        f"{sampling_fit.exponent:.2f} (the k² term: Θ~(k) samples x "
        f"O(k log n) each)"
    )
    # The sampling machinery carries the k² term; the star-posting terms
    # are k-linear, so the total sits between the two regimes.
    assert sampling_fit.exponent > 1.5, sampling_fit
    assert total_fit.exponent > 1.0, total_fit


def test_early_exit_on_far_instance(benchmark, print_row):
    """On far inputs the protocol stops at B_min: O~(k sqrt(d(B_min)) + k²).

    Planted triangles live in the lowest buckets, so the found-path cost is
    far below the worst-case control at the same size.  Both single-trial
    runs route through the runtime with the same spec seed, so the only
    difference is the instance construction.
    """
    n, d, k = 4096, 8.0, 3
    params = tuned_unrestricted_params(k, d)

    def far(n_: int, d_: float, seed: int):
        built = far_instance(n_, d_, 0.2, seed=seed)
        return partition_disjoint(built.graph, k=k, seed=seed + 1)

    def control(n_: int, d_: float, seed: int):
        graph = triangle_free_degree_spread(
            n_, d_, int(math.sqrt(n_ * d_ / 0.2)), seed=seed
        )
        return partition_disjoint(graph, k=k, seed=seed + 1)

    def protocol(partition, seed: int):
        return find_triangle_unrestricted(partition, params, seed=seed)

    def run_pair():
        grid = [(n, d, k)]
        found = run_sweep(protocol, far, grid, trials=1, seed=5)
        worst = run_sweep(protocol, control, grid, trials=1, seed=5)
        return found.records[0], worst.records[0]

    found, control_run = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    benchmark.extra_info["found_bits"] = found.bits
    benchmark.extra_info["worst_case_bits"] = control_run.bits
    print_row(
        f"T1-R1e   early exit: far-instance cost {found.bits:.0f}b vs "
        f"worst-case control {control_run.bits:.0f}b at n={n}"
    )
    assert found.found
    assert found.bits < control_run.bits

"""Tests for BM_n and the Theorem 4.16 reduction."""

import itertools

import pytest

from repro.graphs.triangles import (
    count_triangles,
    greedy_triangle_packing,
    is_triangle_free,
)
from repro.lowerbounds.boolean_matching import (
    BMInstance,
    bm_product,
    gadget_has_triangle,
    hub_vertex,
    reduction_graph,
    reduction_partition,
    sample_bm_instance,
    side_vertex,
)


class TestBMInstance:
    def test_valid_instance(self):
        instance = BMInstance(
            x=(0, 1, 1, 0), matching=((0, 2), (1, 3)), w=(0, 1)
        )
        assert instance.n == 2

    def test_wrong_x_length_rejected(self):
        with pytest.raises(ValueError):
            BMInstance(x=(0, 1), matching=((0, 2), (1, 3)), w=(0, 1))

    def test_wrong_w_length_rejected(self):
        with pytest.raises(ValueError):
            BMInstance(x=(0, 1, 1, 0), matching=((0, 2), (1, 3)), w=(0,))

    def test_non_perfect_matching_rejected(self):
        with pytest.raises(ValueError):
            BMInstance(x=(0, 1, 1, 0), matching=((0, 1), (0, 3)), w=(0, 1))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            BMInstance(x=(0, 2, 1, 0), matching=((0, 2), (1, 3)), w=(0, 1))

    def test_bm_product(self):
        instance = BMInstance(
            x=(1, 0, 1, 1), matching=((0, 2), (1, 3)), w=(0, 1)
        )
        # (x0^x2)^w0 = (1^1)^0 = 0; (x1^x3)^w1 = (0^1)^1 = 0.
        assert bm_product(instance) == (0, 0)


class TestSampler:
    def test_zeros_promise(self):
        for seed in range(5):
            instance = sample_bm_instance(6, "zeros", seed=seed)
            assert all(bit == 0 for bit in bm_product(instance))

    def test_ones_promise(self):
        for seed in range(5):
            instance = sample_bm_instance(6, "ones", seed=seed)
            assert all(bit == 1 for bit in bm_product(instance))

    def test_invalid_promise_rejected(self):
        with pytest.raises(ValueError):
            sample_bm_instance(4, "maybe")

    def test_matching_is_perfect(self):
        instance = sample_bm_instance(10, "zeros", seed=3)
        covered = sorted(j for pair in instance.matching for j in pair)
        assert covered == list(range(20))


class TestReductionGraph:
    def test_vertex_layout(self):
        assert hub_vertex() == 0
        assert side_vertex(0, 0) == 1
        assert side_vertex(0, 1) == 2
        assert side_vertex(3, 0) == 7

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            side_vertex(0, 2)

    def test_graph_size(self):
        instance = sample_bm_instance(5, "zeros", seed=1)
        graph, _, _ = reduction_graph(instance)
        assert graph.n == 1 + 4 * 5

    def test_alice_edges_at_hub(self):
        instance = sample_bm_instance(5, "zeros", seed=2)
        _, alice, _ = reduction_graph(instance)
        assert len(alice) == 10  # one per x bit (2n)
        for u, v in alice:
            assert hub_vertex() in (u, v)

    def test_bob_edges_per_gadget(self):
        instance = sample_bm_instance(5, "ones", seed=3)
        _, _, bob = reduction_graph(instance)
        assert len(bob) == 10  # two per matching edge

    def test_rows_native_build_matches_per_edge_rebuild(self):
        """The PR 4 mask-native assembly equals an edge-at-a-time build."""
        for seed, promise in ((4, "zeros"), (5, "ones"), (6, "zeros")):
            instance = sample_bm_instance(6, promise, seed=seed)
            graph, alice, bob = reduction_graph(instance)
            from repro.graphs.graph import Graph

            rebuilt = Graph(graph.n, sorted(alice) + sorted(bob))
            assert rebuilt == graph
            assert alice | bob == graph.edge_set()
            assert not alice & bob
            # Canonical orientation throughout.
            assert all(u < v for u, v in alice | bob)

    def test_zeros_gives_n_disjoint_triangles(self):
        for seed in range(4):
            instance = sample_bm_instance(7, "zeros", seed=seed)
            graph, _, _ = reduction_graph(instance)
            assert len(greedy_triangle_packing(graph)) == 7

    def test_ones_is_triangle_free(self):
        for seed in range(4):
            instance = sample_bm_instance(7, "ones", seed=seed)
            graph, _, _ = reduction_graph(instance)
            assert is_triangle_free(graph)

    def test_average_degree_constant(self):
        instance = sample_bm_instance(50, "zeros", seed=5)
        graph, _, _ = reduction_graph(instance)
        # 4n edges on 1+4n vertices: average degree ~ 2.
        assert 1.5 <= graph.average_degree() <= 2.5

    def test_triangle_count_equals_zero_bits(self):
        # Mixed instance: triangles appear exactly at the zero positions.
        instance = BMInstance(
            x=(1, 0, 1, 1, 0, 0),
            matching=((0, 3), (1, 4), (2, 5)),
            w=(0, 1, 1),
        )
        product = bm_product(instance)
        graph, _, _ = reduction_graph(instance)
        assert count_triangles(graph) == sum(
            1 for bit in product if bit == 0
        )


class TestGadgetDichotomy:
    def test_exhaustive_small_instances(self):
        """Every (x, w) over a fixed 2-edge matching: triangle in gadget i
        iff (Mx ^ w)_i == 0 — Theorem 4.16's core claim, exhaustively."""
        matching = ((0, 2), (1, 3))
        for x in itertools.product((0, 1), repeat=4):
            for w in itertools.product((0, 1), repeat=2):
                instance = BMInstance(x=x, matching=matching, w=w)
                product = bm_product(instance)
                for i in range(2):
                    assert gadget_has_triangle(instance, i) == (
                        product[i] == 0
                    ), f"x={x} w={w} gadget={i}"


class TestReductionPartition:
    def test_two_player_split(self):
        instance = sample_bm_instance(6, "zeros", seed=7)
        partition = reduction_partition(instance)
        graph, alice, bob = reduction_graph(instance)
        assert partition.views[0] == frozenset(alice)
        assert partition.views[1] == frozenset(bob)

    def test_padding_players_empty(self):
        instance = sample_bm_instance(6, "zeros", seed=8)
        partition = reduction_partition(instance, k=5)
        assert all(not view for view in partition.views[2:])

    def test_k_below_two_rejected(self):
        instance = sample_bm_instance(4, "zeros", seed=9)
        with pytest.raises(ValueError):
            reduction_partition(instance, k=1)

    def test_protocols_run_on_reduction(self):
        # End to end: the exact protocol distinguishes the two promises.
        from repro.core.exact_baseline import exact_triangle_detection

        zeros = reduction_partition(sample_bm_instance(8, "zeros", seed=10))
        ones = reduction_partition(sample_bm_instance(8, "ones", seed=10))
        assert exact_triangle_detection(zeros).found
        assert not exact_triangle_detection(ones).found

"""Property-based tests for the posterior, streaming, and pattern machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.encoding import edge_bits
from repro.lowerbounds.covered import (
    analyze_player,
    expected_total_divergence,
    message_entropy_bits,
    truncation_message,
)
from repro.lowerbounds.oneway_analysis import delta_plus_sum
from repro.streaming.stream import run_stream
from repro.streaming.triangle_stream import ReservoirTriangleFinder

UNIVERSE = [(u, v) for u in range(2) for v in range(2)]


class TestPosteriorProperties:
    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_message_probabilities_normalized(self, prior, budget):
        analysis = analyze_player(
            UNIVERSE, prior, truncation_message(budget)
        )
        total = sum(analysis.message_probabilities.values())
        assert abs(total - 1.0) < 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_posteriors_in_unit_interval(self, prior, budget):
        analysis = analyze_player(
            UNIVERSE, prior, truncation_message(budget)
        )
        for message in analysis.message_probabilities:
            for item in UNIVERSE:
                posterior = analysis.posterior(message, item)
                assert -1e-12 <= posterior <= 1.0 + 1e-12

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_tower_property(self, prior, budget):
        """Σ_m P(m)·posterior(m, e) = prior, for every edge."""
        analysis = analyze_player(
            UNIVERSE, prior, truncation_message(budget)
        )
        for item in UNIVERSE:
            mean_posterior = sum(
                probability * analysis.posterior(message, item)
                for message, probability in (
                    analysis.message_probabilities.items()
                )
            )
            assert abs(mean_posterior - prior) < 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_information_bound_universal(self, prior, budget):
        """Lemma 4.6 / super-additivity at every prior and budget."""
        analysis = analyze_player(
            UNIVERSE, prior, truncation_message(budget)
        )
        assert expected_total_divergence(analysis) <= (
            message_entropy_bits(analysis) + 1e-9
        )

    @given(
        st.floats(min_value=0.05, max_value=0.45),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_delta_plus_bounded_by_universe(self, prior, budget):
        analysis = analyze_player(
            UNIVERSE, prior, truncation_message(budget)
        )
        for message in analysis.message_probabilities:
            spend = delta_plus_sum(analysis, message)
            assert 0.0 <= spend <= len(UNIVERSE)


class TestStreamingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ).filter(lambda edge: edge[0] != edge[1]),
            max_size=60,
        ),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_reservoir_space_never_exceeds_cap(self, edges, reservoir, seed):
        finder = ReservoirTriangleFinder(20, reservoir, seed=seed)
        run = run_stream(finder, edges)
        assert run.peak_space_bits <= (reservoir + 1) * edge_bits(20)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ).filter(lambda edge: edge[0] != edge[1]),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_reservoir_result_is_genuine_triangle(self, edges, seed):
        """One-sided: any reported triangle's edges appeared in the stream."""
        from repro.graphs.graph import canonical_edge

        finder = ReservoirTriangleFinder(10, 8, seed=seed)
        run = run_stream(finder, edges)
        if run.result is not None:
            seen = {canonical_edge(u, v) for u, v in edges}
            a, b, c = run.result
            assert {(a, b), (a, c), (b, c)} <= seen


class TestPatternProperties:
    @given(st.integers(min_value=3, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_clique_contains_all_smaller_cycles(self, size):
        from repro.core.subgraph_detection import (
            FOUR_CYCLE,
            TRIANGLE,
            find_copy_among,
        )

        clique_edges = [
            (u, v) for u in range(size) for v in range(u + 1, size)
        ]
        assert find_copy_among(clique_edges, TRIANGLE) is not None
        if size >= 4:
            assert find_copy_among(clique_edges, FOUR_CYCLE) is not None

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_path_contains_no_cycle_patterns(self, length):
        from repro.core.subgraph_detection import (
            FIVE_CYCLE,
            FOUR_CYCLE,
            TRIANGLE,
            find_copy_among,
        )

        path_edges = [(i, i + 1) for i in range(length)]
        for pattern in (TRIANGLE, FOUR_CYCLE, FIVE_CYCLE):
            assert find_copy_among(path_edges, pattern) is None


class TestMessagePassingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=1, max_value=100),
            ).filter(lambda m: m[0] != m[1]),
            max_size=20,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_coordinator_simulation_overhead_formula(self, messages):
        from repro.comm.messagepassing import (
            MessagePassingRecord,
            coordinator_cost_of_transcript,
        )
        from repro.comm.encoding import bits_for_universe

        k = 6
        transcript = [
            MessagePassingRecord(s, r, None, b) for s, r, b in messages
        ]
        cost = coordinator_cost_of_transcript(transcript, k)
        direct = sum(b for _, _, b in messages)
        assert cost == 2 * direct + len(messages) * bits_for_universe(k)

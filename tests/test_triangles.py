"""Unit tests for triangle machinery (repro.graphs.triangles)."""

import pytest

from repro.graphs.graph import Graph
from repro.graphs.triangles import (
    clique_packing_density_floor,
    close_vee,
    contains_triangle_among,
    count_triangles,
    find_triangle,
    find_triangle_among,
    greedy_triangle_packing,
    is_epsilon_far_certified,
    is_triangle_free,
    is_triangle_vee,
    iter_triangle_vees,
    iter_triangles,
    make_triangle_free_by_removal,
    packing_distance_lower_bound,
    triangle_edges,
)


def triangle_graph() -> Graph:
    return Graph(3, [(0, 1), (0, 2), (1, 2)])


def two_triangles_shared_edge() -> Graph:
    # Triangles (0,1,2) and (0,1,3) sharing edge (0,1).
    return Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])


class TestDetection:
    def test_empty_graph_free(self):
        assert is_triangle_free(Graph(5))

    def test_single_triangle_found(self):
        assert find_triangle(triangle_graph()) == (0, 1, 2)

    def test_path_is_free(self):
        assert is_triangle_free(Graph(4, [(0, 1), (1, 2), (2, 3)]))

    def test_bipartite_is_free(self):
        edges = [(u, v) for u in range(3) for v in range(3, 6)]
        assert is_triangle_free(Graph(6, edges))

    def test_triangle_in_larger_graph(self):
        graph = Graph(10, [(0, 5), (5, 9), (0, 9), (1, 2)])
        assert find_triangle(graph) == (0, 5, 9)

    def test_count_single(self):
        assert count_triangles(triangle_graph()) == 1

    def test_count_k4(self):
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        assert count_triangles(Graph(4, edges)) == 4

    def test_iter_unique(self):
        triangles = list(iter_triangles(two_triangles_shared_edge()))
        assert sorted(triangles) == [(0, 1, 2), (0, 1, 3)]

    def test_triangle_vertices_sorted(self):
        for triangle in iter_triangles(two_triangles_shared_edge()):
            assert list(triangle) == sorted(triangle)


class TestTriangleAmongEdges:
    def test_finds_triangle_in_bag(self):
        assert find_triangle_among([(2, 1), (0, 1), (0, 2)]) == (0, 1, 2)

    def test_no_triangle(self):
        assert find_triangle_among([(0, 1), (1, 2), (2, 3)]) is None

    def test_contains_wrapper(self):
        assert contains_triangle_among([(0, 1), (1, 2), (0, 2)])
        assert not contains_triangle_among([(0, 1)])

    def test_empty_bag(self):
        assert find_triangle_among([]) is None


class TestTriangleEdges:
    def test_all_edges_of_triangle(self):
        assert triangle_edges(triangle_graph()) == {(0, 1), (0, 2), (1, 2)}

    def test_non_triangle_edges_excluded(self):
        graph = Graph(5, [(0, 1), (0, 2), (1, 2), (3, 4)])
        assert (3, 4) not in triangle_edges(graph)

    def test_free_graph_empty(self):
        assert triangle_edges(Graph(4, [(0, 1), (1, 2)])) == set()


class TestVees:
    def test_is_triangle_vee(self):
        graph = triangle_graph()
        assert is_triangle_vee(graph, (0, 1), (0, 2))

    def test_vee_not_closing(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        assert not is_triangle_vee(graph, (0, 1), (0, 2))

    def test_disjoint_pair_not_vee(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert not is_triangle_vee(graph, (0, 1), (2, 3))

    def test_close_vee_returns_edge(self):
        assert close_vee(triangle_graph(), (0, 1), (0, 2)) == (1, 2)

    def test_close_vee_none_when_open(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        assert close_vee(graph, (0, 1), (0, 2)) is None

    def test_iter_vees_at_source(self):
        vees = list(iter_triangle_vees(triangle_graph(), 0))
        assert vees == [((0, 1), (0, 2))]

    def test_iter_vees_count_k4(self):
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        graph = Graph(4, edges)
        # At each K4 vertex: 3 neighbours, all pairs close -> C(3,2)=3 vees.
        assert len(list(iter_triangle_vees(graph, 0))) == 3


class TestPacking:
    def test_packing_single_triangle(self):
        assert greedy_triangle_packing(triangle_graph()) == [(0, 1, 2)]

    def test_packing_edge_disjoint(self):
        packing = greedy_triangle_packing(two_triangles_shared_edge())
        assert len(packing) == 1  # the two triangles share an edge

    def test_packing_disjoint_triangles(self):
        graph = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        assert len(greedy_triangle_packing(graph)) == 2

    def test_packing_edges_disjoint_property(self):
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        graph = Graph(6, edges)  # K6
        used = set()
        for a, b, c in greedy_triangle_packing(graph):
            for edge in ((a, b), (a, c), (b, c)):
                assert edge not in used
                used.add(edge)

    def test_distance_lower_bound(self):
        graph = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        assert packing_distance_lower_bound(graph) == 2


class TestFarness:
    def test_certified_far(self):
        graph = triangle_graph()
        assert is_epsilon_far_certified(graph, 1.0 / 3.0)

    def test_not_certified_beyond_packing(self):
        graph = triangle_graph()
        assert not is_epsilon_far_certified(graph, 0.5)

    def test_free_graph_not_far(self):
        assert not is_epsilon_far_certified(Graph(4, [(0, 1)]), 0.1)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            is_epsilon_far_certified(Graph(3), -0.1)

    def test_exact_boundary_not_rejected_by_float_drift(self):
        """epsilon = 3/187 with |E| = 187 requires exactly 3 packed
        triangles, but the float product is 3.0000000000000004 — the
        old float comparison rejected an exactly-sufficient packing."""
        epsilon = 3 / 187
        graph = Graph(365)
        for t in range(3):  # 3 vertex-disjoint triangles
            a = 3 * t
            graph.add_edges([(a, a + 1), (a, a + 2), (a + 1, a + 2)])
        for i in range(178):  # pad with a triangle-free matching
            graph.add_edge(9 + 2 * i, 10 + 2 * i)
        assert graph.num_edges == 187
        assert packing_distance_lower_bound(graph) == 3
        assert epsilon * graph.num_edges > 3  # the drift guarded against
        assert is_epsilon_far_certified(graph, epsilon)
        assert not is_epsilon_far_certified(graph, 2 * epsilon)

    def test_boundary_exact_across_scales(self):
        # One planted triangle per 10 edges certifies exactly eps=0.1.
        for triangles in (3, 6, 9):
            graph = Graph(30 * triangles)
            for t in range(triangles):
                a = 3 * t
                graph.add_edges([(a, a + 1), (a, a + 2), (a + 1, a + 2)])
            left = 3 * triangles
            padding = 7 * triangles
            for i in range(padding):
                graph.add_edge(left + i, left + padding + i)
            assert graph.num_edges == 10 * triangles
            assert is_epsilon_far_certified(graph, 0.1)

    def test_removal_reaches_freeness(self):
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        graph = Graph(5, edges)  # K5
        free, removed = make_triangle_free_by_removal(graph)
        assert is_triangle_free(free)
        assert removed >= packing_distance_lower_bound(graph)

    def test_removal_noop_on_free_graph(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        free, removed = make_triangle_free_by_removal(graph)
        assert removed == 0
        assert free.edge_set() == graph.edge_set()

    def test_packing_sandwich(self):
        # packing lower bound <= removal upper bound on a mixed graph.
        graph = Graph(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6)],
        )
        lower = packing_distance_lower_bound(graph)
        _, upper = make_triangle_free_by_removal(graph)
        assert lower <= upper


class TestCliquePackingDensityFloor:
    """Regression for the bench_found_path_cost satellite: the maximal-
    packing density guarantee on disjoint K_m is (m-2)/(6(m-1)), derived
    from the Turán bound on the triangle-free residue — NOT a universal
    0.25, which the greedy packing genuinely undershoots at K9."""

    def test_boundary_k9_below_old_constant(self):
        # The exact instance bench_found_path_cost checks at D=8: six
        # disjoint K9 on 16000 vertices.  Greedy measures 48/216 = 2/9,
        # under the old hard-coded 0.25 but above the derived floor.
        from repro.graphs.generators import disjoint_cliques

        graph = disjoint_cliques(16000, 9, 6, seed=1)
        density = len(greedy_triangle_packing(graph)) / graph.num_edges
        floor = clique_packing_density_floor(9)
        assert density < 0.25          # the old constant really was wrong
        assert density >= float(floor)
        assert floor == pytest.approx(7 / 48)

    @pytest.mark.parametrize("m", [3, 4, 5, 6, 9, 12, 27])
    def test_floor_holds_on_single_clique(self, m):
        clique = Graph(m, [(u, v) for u in range(m)
                           for v in range(u + 1, m)])
        packed = len(greedy_triangle_packing(clique))
        assert packed / clique.num_edges >= float(
            clique_packing_density_floor(m)
        )

    def test_floor_below_maximum_density(self):
        # The floor never exceeds the 1/3 a perfect packing achieves.
        from fractions import Fraction

        for m in range(3, 40):
            assert 0 < clique_packing_density_floor(m) < Fraction(1, 3)

    def test_too_small_clique_rejected(self):
        with pytest.raises(ValueError):
            clique_packing_density_floor(2)

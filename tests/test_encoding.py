"""Unit tests for the bit-size calculus (repro.comm.encoding)."""

import math

import pytest

from repro.comm.encoding import (
    bits_for_universe,
    edge_bits,
    edge_list_bits,
    elias_gamma_bits,
    indicator_bits,
    int_bits,
    vertex_bits,
    vertex_list_bits,
)


class TestBitsForUniverse:
    def test_single_element_costs_one_bit(self):
        assert bits_for_universe(1) == 1

    def test_two_elements(self):
        assert bits_for_universe(2) == 1

    def test_power_of_two(self):
        assert bits_for_universe(1024) == 10

    def test_non_power_rounds_up(self):
        assert bits_for_universe(1025) == 11

    def test_three_elements(self):
        assert bits_for_universe(3) == 2

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            bits_for_universe(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for_universe(-5)


class TestVertexAndEdgeBits:
    def test_vertex_bits_log_n(self):
        assert vertex_bits(256) == 8

    def test_edge_is_two_vertices(self):
        assert edge_bits(256) == 16

    def test_edge_bits_small_graph(self):
        assert edge_bits(2) == 2

    def test_vertex_bits_monotone(self):
        previous = 0
        for n in (2, 5, 17, 100, 5000):
            current = vertex_bits(n)
            assert current >= previous
            previous = current


class TestIntBits:
    def test_value_within_bound(self):
        assert int_bits(5, 15) == 4

    def test_zero_bound(self):
        assert int_bits(0, 0) == 1

    def test_value_above_bound_rejected(self):
        with pytest.raises(ValueError):
            int_bits(16, 15)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            int_bits(-1, 10)

    def test_bound_inclusive(self):
        assert int_bits(15, 15) == 4


class TestEliasGamma:
    def test_one_costs_one_bit(self):
        assert elias_gamma_bits(1) == 1

    def test_two(self):
        assert elias_gamma_bits(2) == 3

    def test_formula(self):
        for value in (1, 2, 3, 7, 8, 100, 12345):
            expected = 2 * int(math.floor(math.log2(value))) + 1
            assert elias_gamma_bits(value) == expected

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            elias_gamma_bits(0)

    def test_grows_logarithmically(self):
        assert elias_gamma_bits(10 ** 6) < 50


class TestListBits:
    def test_indicator_is_one(self):
        assert indicator_bits() == 1

    def test_empty_edge_list_costs_one(self):
        assert edge_list_bits(0, 100) == 1

    def test_edge_list_linear(self):
        assert edge_list_bits(5, 256) == 5 * 16

    def test_vertex_list_linear(self):
        assert vertex_list_bits(7, 256) == 7 * 8

    def test_empty_vertex_list_costs_one(self):
        assert vertex_list_bits(0, 100) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            edge_list_bits(-1, 10)
        with pytest.raises(ValueError):
            vertex_list_bits(-1, 10)

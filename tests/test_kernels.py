"""Differential tests: the packed uint64 kernel vs the bignum kernel.

The bignum kernel is the executable specification (itself pinned to the
set-based reference in ``test_graph_kernel.py``); the packed kernel must
be observationally identical through every bulk primitive of the
:class:`~repro.graphs.kernels.base.MaskKernel` contract, and its native
triangle accelerators must reproduce the generic algorithms' outputs
bit for bit.  Graphs run at n = 70 (> 64) so every property straddles a
word boundary.  Round-trip conversion, the backend registry, the LUT
popcount fallback, and end-to-end pinned-seed sweep identity are covered
here too.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import far_disjoint_instance
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs import Graph, MaskKernel, get_kernel, mask_of
from repro.graphs.generators import far_instance
from repro.graphs.kernels import (
    BACKEND_ENV_VAR,
    PACKED_AUTO_THRESHOLD,
    BigintKernel,
    kernel_names,
)
from repro.graphs.kernels import packed as packed_module
from repro.graphs.kernels.packed import (
    PackedKernel,
    pack_mask,
    unpack_words,
)
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
    iter_triangles,
    make_triangle_free_by_removal,
    triangle_edges,
)

N = 70  # > 64: every differential property crosses the word boundary

# Vertices biased towards the uint64 boundary so word-straddling edges
# like (63, 64) appear in most op sequences.
VERTEX = st.one_of(
    st.integers(min_value=0, max_value=N - 1),
    st.sampled_from([0, 62, 63, 64, 65, N - 1]),
)
OPS = st.lists(st.tuples(st.booleans(), VERTEX, VERTEX), max_size=150)
VERTEX_SETS = st.sets(VERTEX)


def build_both(ops) -> tuple[Graph, Graph]:
    bigint = Graph(N, backend="bigint")
    packed = Graph(N, backend="packed")
    for add, u, v in ops:
        if u == v:
            continue
        if add:
            assert bigint.add_edge(u, v) == packed.add_edge(u, v)
        else:
            assert bigint.remove_edge(u, v) == packed.remove_edge(u, v)
    return bigint, packed


class TestConversionRoundTrip:
    @given(VERTEX_SETS)
    def test_pack_unpack_is_lossless(self, vertices):
        words = (N + 63) >> 6
        mask = mask_of(vertices)
        assert unpack_words(pack_mask(mask, words)) == mask

    @pytest.mark.parametrize("bit", [0, 1, 63, 64, 127, 128, 191])
    def test_word_boundary_bits(self, bit):
        words = (bit >> 6) + 1
        packed = pack_mask(1 << bit, words)
        assert int(packed[bit >> 6]) == 1 << (bit & 63)
        assert unpack_words(packed) == 1 << bit

    @given(OPS)
    @settings(max_examples=40, deadline=None)
    def test_from_rows_round_trips_both_ways(self, ops):
        bigint, packed = build_both(ops)
        rows = bigint.adjacency_rows()
        assert PackedKernel.from_rows(N, rows).rows() == rows
        assert BigintKernel.from_rows(N, packed.kernel.rows()).rows() == rows

    @given(OPS)
    @settings(max_examples=40, deadline=None)
    def test_to_backend_round_trip(self, ops):
        bigint, packed = build_both(ops)
        assert bigint.to_backend("packed") == packed
        assert packed.to_backend("bigint") == bigint
        back = bigint.to_backend("packed").to_backend("bigint")
        assert back == bigint and back.backend == "bigint"


class TestBulkPrimitiveDifferential:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_rows_and_scalar_queries_agree(self, ops):
        bigint, packed = build_both(ops)
        assert bigint.num_edges == packed.num_edges
        assert bigint.adjacency_rows() == packed.adjacency_rows()
        assert bigint.degrees() == packed.degrees()
        assert bigint.isolated_vertices() == packed.isolated_vertices()
        assert list(bigint.edges()) == list(packed.edges())
        assert bigint == packed and packed == bigint
        for v in (0, 1, 63, 64, 65, N - 1):
            assert bigint.neighbor_mask(v) == packed.neighbor_mask(v)
            assert bigint.neighbors(v) == packed.neighbors(v)
            assert bigint.degree(v) == packed.degree(v)
        for u in (0, 13, 63, 64, N - 1):
            for v in range(N):
                assert bigint.has_edge(u, v) == packed.has_edge(u, v)
                if u != v:
                    assert (
                        bigint.common_neighbors(u, v)
                        == packed.common_neighbors(u, v)
                    )

    @given(OPS, st.lists(st.tuples(VERTEX, VERTEX_SETS), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_add_neighbors_agrees(self, ops, merges):
        bigint, packed = build_both(ops)
        for u, vertices in merges:
            mask = mask_of(vertices) & ~(1 << u)
            assert bigint.add_neighbors(u, mask) == packed.add_neighbors(
                u, mask
            )
        assert bigint == packed
        assert bigint.num_edges == packed.num_edges

    @given(OPS, VERTEX_SETS)
    @settings(max_examples=60, deadline=None)
    def test_derived_graphs_agree(self, ops, vertices):
        bigint, packed = build_both(ops)
        mask = mask_of(vertices)
        assert bigint.induced_subgraph_mask_rows(
            mask
        ) == packed.induced_subgraph_mask_rows(mask)
        assert bigint.edges_touching_mask(mask) == packed.edges_touching_mask(
            mask
        )
        assert bigint.induced_subgraph_edges(
            vertices
        ) == packed.induced_subgraph_edges(vertices)
        assert bigint.edges_touching(vertices) == packed.edges_touching(
            vertices
        )
        assert bigint.subgraph(vertices) == packed.subgraph(vertices)

    @given(OPS, OPS)
    @settings(max_examples=40, deadline=None)
    def test_union_and_copy_agree(self, ops_a, ops_b):
        bigint_a, packed_a = build_both(ops_a)
        bigint_b, packed_b = build_both(ops_b)
        union_bigint = bigint_a.union(bigint_b)
        union_packed = packed_a.union(packed_b)
        assert union_bigint == union_packed
        assert union_bigint.num_edges == union_packed.num_edges
        # Cross-backend unions convert through the exchange format.
        assert bigint_a.union(packed_b) == union_bigint
        assert packed_a.union(bigint_b) == union_packed
        clone = packed_a.copy()
        assert clone == packed_a
        if clone.add_edge(0, 1) or clone.remove_edge(0, 1):
            assert clone != packed_a


class TestTriangleNatives:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_triangle_layer_identical(self, ops):
        bigint, packed = build_both(ops)
        assert count_triangles(bigint) == count_triangles(packed)
        assert find_triangle(bigint) == find_triangle(packed)
        assert greedy_triangle_packing(bigint) == greedy_triangle_packing(
            packed
        )
        assert list(iter_triangles(bigint)) == list(iter_triangles(packed))
        assert triangle_edges(bigint) == triangle_edges(packed)

    def test_planted_instance_identical_across_backends(self):
        built_bigint = far_instance(300, 6.0, 0.1, seed=5, backend="bigint")
        built_packed = far_instance(300, 6.0, 0.1, seed=5, backend="packed")
        gb, gp = built_bigint.graph, built_packed.graph
        assert gb.backend == "bigint" and gp.backend == "packed"
        assert gb == gp
        assert built_bigint.planted_triangles == built_packed.planted_triangles
        assert count_triangles(gb) == count_triangles(gp)
        assert find_triangle(gb) == find_triangle(gp)
        assert greedy_triangle_packing(gb) == greedy_triangle_packing(gp)
        free_b, removed_b = make_triangle_free_by_removal(gb)
        free_p, removed_p = make_triangle_free_by_removal(gp)
        assert removed_b == removed_p
        assert free_b == free_p

    def test_dense_graph_declines_to_generic_path(self):
        n = 40
        complete = Graph(n, backend="packed")
        for u in range(n):
            complete.add_neighbors(u, ((1 << n) - 1) ^ (1 << u))
        # The wedge natives decline on dense graphs...
        assert complete.kernel.count_triangles() is NotImplemented
        assert complete.kernel.find_triangle() is NotImplemented
        assert complete.kernel.greedy_triangle_packing() is NotImplemented
        # ...and the dispatcher falls back to the generic algorithms.
        expected = n * (n - 1) * (n - 2) // 6
        assert count_triangles(complete) == expected
        assert find_triangle(complete) == (0, 1, 2)
        reference = complete.to_backend("bigint")
        assert greedy_triangle_packing(complete) == greedy_triangle_packing(
            reference
        )


class TestRegistry:
    def test_known_names_resolve(self):
        assert get_kernel("bigint") is BigintKernel
        assert get_kernel("packed") is PackedKernel
        assert set(kernel_names()) >= {"bigint", "packed", "auto"}

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(ValueError, match="bigint"):
            get_kernel("bitslice")

    def test_auto_policy_switches_on_size(self):
        assert get_kernel("auto", 0) is BigintKernel
        assert get_kernel("auto", PACKED_AUTO_THRESHOLD - 1) is BigintKernel
        assert get_kernel("auto", PACKED_AUTO_THRESHOLD) is PackedKernel

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
        assert Graph(8).backend == "packed"
        monkeypatch.setenv(BACKEND_ENV_VAR, "bigint")
        assert Graph(8).backend == "bigint"
        # Explicit argument wins over the environment.
        assert Graph(8, backend="packed").backend == "packed"

    def test_default_small_graphs_stay_bigint(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert Graph(8).backend == "bigint"

    def test_kernels_satisfy_protocol(self):
        assert isinstance(Graph(4, backend="bigint").kernel, MaskKernel)
        assert isinstance(Graph(4, backend="packed").kernel, MaskKernel)


class TestLutPopcountFallback:
    @given(OPS)
    @settings(max_examples=25, deadline=None)
    def test_lut_matches_bitwise_count(self, ops):
        _, packed = build_both(ops)
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(packed_module, "_HAS_BITWISE_COUNT", False)
            lut_degrees = packed.degrees()
            lut_count = count_triangles(packed)
            lut_edges = packed.num_edges
        assert lut_degrees == packed.degrees()
        assert lut_count == count_triangles(packed)
        assert lut_edges == packed.num_edges


class TestToNetworkxImportError:
    def test_pointed_error_names_reference_extra(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "networkx", None)
        with pytest.raises(ImportError, match=r"reference"):
            Graph(3, [(0, 1)]).to_networkx()

    def test_conversion_works_when_available(self):
        pytest.importorskip("networkx")
        nx_graph = Graph(4, [(0, 1), (1, 2)]).to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 2


class TestSweepByteIdentity:
    def test_sim_low_records_identical_across_backends(self, monkeypatch):
        """A pinned-seed protocol sweep is record-identical per backend.

        The small-n twin of the bench harness's n = 10^5 scale check:
        the whole pipeline — generator, partition, players, referee —
        must not observe which kernel is underneath.
        """
        params = SimLowParams(epsilon=0.2, delta=0.2)
        grid = [(600, 6.0, 3)]

        def sweep():
            return run_sweep(
                lambda partition, s: find_triangle_sim_low(
                    partition, params, seed=s
                ),
                far_disjoint_instance(epsilon=0.2, k=3),
                grid, trials=2, seed=0,
            )

        monkeypatch.setenv(BACKEND_ENV_VAR, "bigint")
        records_bigint = sweep().records
        monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
        records_packed = sweep().records
        assert records_bigint == records_packed

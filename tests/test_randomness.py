"""Unit tests for shared public randomness (repro.comm.randomness)."""

import pytest

from repro.comm.randomness import SharedRandomness


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = SharedRandomness(42)
        b = SharedRandomness(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seed_differs(self):
        a = SharedRandomness(1)
        b = SharedRandomness(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = SharedRandomness(7).fork(3)
        b = SharedRandomness(7).fork(3)
        assert a.random() == b.random()

    def test_fork_tags_independent(self):
        base = SharedRandomness(7)
        assert base.fork(1).random() != base.fork(2).random()


class TestPermutationRank:
    def test_all_parties_agree(self):
        a = SharedRandomness(5)
        b = SharedRandomness(5)
        rank_a = a.permutation_rank(100, tag=1)
        rank_b = b.permutation_rank(100, tag=1)
        for item in range(100):
            assert rank_a(item) == rank_b(item)

    def test_ranks_distinct(self):
        rank = SharedRandomness(5).permutation_rank(50)
        values = [rank(i) for i in range(50)]
        assert len(set(values)) == 50

    def test_min_is_roughly_uniform(self):
        # The item with minimal rank over repeated permutations should be
        # close to uniform; crude chi-square-free sanity check.
        counts = {i: 0 for i in range(10)}
        shared = SharedRandomness(9)
        for tag in range(600):
            rank = shared.permutation_rank(10, tag=tag)
            winner = min(range(10), key=rank)
            counts[winner] += 1
        for count in counts.values():
            assert 20 <= count <= 130  # expectation 60

    def test_out_of_universe_rejected(self):
        rank = SharedRandomness(0).permutation_rank(10)
        with pytest.raises(ValueError):
            rank(10)
        with pytest.raises(ValueError):
            rank(-1)


class TestBernoulliSubset:
    def test_probability_zero_empty(self):
        assert SharedRandomness(1).bernoulli_subset(100, 0.0) == set()

    def test_probability_one_full(self):
        assert SharedRandomness(1).bernoulli_subset(10, 1.0) == set(range(10))

    def test_expected_size(self):
        sample = SharedRandomness(3).bernoulli_subset(10_000, 0.1)
        assert 800 <= len(sample) <= 1200

    def test_members_in_universe(self):
        sample = SharedRandomness(3).bernoulli_subset(50, 0.5)
        assert all(0 <= item < 50 for item in sample)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(0).bernoulli_subset(10, 1.5)


class TestBernoulliPredicate:
    def test_parties_agree(self):
        a = SharedRandomness(11)
        b = SharedRandomness(11)
        pred_a = a.bernoulli_predicate(0.3, tag=5)
        pred_b = b.bernoulli_predicate(0.3, tag=5)
        assert [pred_a(i) for i in range(200)] == [
            pred_b(i) for i in range(200)
        ]

    def test_hit_rate_close_to_p(self):
        pred = SharedRandomness(13).bernoulli_predicate(0.25)
        hits = sum(pred(i) for i in range(4000))
        assert 800 <= hits <= 1200

    def test_extreme_probabilities(self):
        always = SharedRandomness(0).bernoulli_predicate(1.0)
        never = SharedRandomness(0).bernoulli_predicate(0.0)
        assert all(always(i) for i in range(20))
        assert not any(never(i) for i in range(20))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(0).bernoulli_predicate(-0.1)


class TestSampling:
    def test_without_replacement_size(self):
        sample = SharedRandomness(2).sample_without_replacement(100, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_oversized_count_clamped(self):
        sample = SharedRandomness(2).sample_without_replacement(5, 50)
        assert sorted(sample) == [0, 1, 2, 3, 4]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(2).sample_without_replacement(5, -1)

    def test_shuffled_preserves_items(self):
        shuffled = SharedRandomness(4).shuffled(range(20))
        assert sorted(shuffled) == list(range(20))

    def test_choice_and_randrange(self):
        shared = SharedRandomness(6)
        assert shared.randrange(10) in range(10)
        assert shared.choice([5, 6, 7]) in (5, 6, 7)

"""Unit tests for shared public randomness (repro.comm.randomness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.randomness import SharedRandomness


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = SharedRandomness(42)
        b = SharedRandomness(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seed_differs(self):
        a = SharedRandomness(1)
        b = SharedRandomness(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = SharedRandomness(7).fork(3)
        b = SharedRandomness(7).fork(3)
        assert a.random() == b.random()

    def test_fork_tags_independent(self):
        base = SharedRandomness(7)
        assert base.fork(1).random() != base.fork(2).random()


class TestPermutationRank:
    def test_all_parties_agree(self):
        a = SharedRandomness(5)
        b = SharedRandomness(5)
        rank_a = a.permutation_rank(100, tag=1)
        rank_b = b.permutation_rank(100, tag=1)
        for item in range(100):
            assert rank_a(item) == rank_b(item)

    def test_ranks_distinct(self):
        rank = SharedRandomness(5).permutation_rank(50)
        values = [rank(i) for i in range(50)]
        assert len(set(values)) == 50

    def test_min_is_roughly_uniform(self):
        # The item with minimal rank over repeated permutations should be
        # close to uniform; crude chi-square-free sanity check.
        counts = {i: 0 for i in range(10)}
        shared = SharedRandomness(9)
        for tag in range(600):
            rank = shared.permutation_rank(10, tag=tag)
            winner = min(range(10), key=rank)
            counts[winner] += 1
        for count in counts.values():
            assert 20 <= count <= 130  # expectation 60

    def test_out_of_universe_rejected(self):
        rank = SharedRandomness(0).permutation_rank(10)
        with pytest.raises(ValueError):
            rank(10)
        with pytest.raises(ValueError):
            rank(-1)


class TestBernoulliSubset:
    def test_probability_zero_empty(self):
        assert SharedRandomness(1).bernoulli_subset(100, 0.0) == set()

    def test_probability_one_full(self):
        assert SharedRandomness(1).bernoulli_subset(10, 1.0) == set(range(10))

    def test_expected_size(self):
        sample = SharedRandomness(3).bernoulli_subset(10_000, 0.1)
        assert 800 <= len(sample) <= 1200

    def test_members_in_universe(self):
        sample = SharedRandomness(3).bernoulli_subset(50, 0.5)
        assert all(0 <= item < 50 for item in sample)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(0).bernoulli_subset(10, 1.5)


class TestBernoulliPredicate:
    def test_parties_agree(self):
        a = SharedRandomness(11)
        b = SharedRandomness(11)
        pred_a = a.bernoulli_predicate(0.3, tag=5)
        pred_b = b.bernoulli_predicate(0.3, tag=5)
        assert [pred_a(i) for i in range(200)] == [
            pred_b(i) for i in range(200)
        ]

    def test_hit_rate_close_to_p(self):
        pred = SharedRandomness(13).bernoulli_predicate(0.25)
        hits = sum(pred(i) for i in range(4000))
        assert 800 <= hits <= 1200

    def test_extreme_probabilities(self):
        always = SharedRandomness(0).bernoulli_predicate(1.0)
        never = SharedRandomness(0).bernoulli_predicate(0.0)
        assert all(always(i) for i in range(20))
        assert not any(never(i) for i in range(20))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(0).bernoulli_predicate(-0.1)


class TestSampling:
    def test_without_replacement_size(self):
        sample = SharedRandomness(2).sample_without_replacement(100, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_oversized_count_clamped(self):
        sample = SharedRandomness(2).sample_without_replacement(5, 50)
        assert sorted(sample) == [0, 1, 2, 3, 4]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(2).sample_without_replacement(5, -1)

    def test_shuffled_preserves_items(self):
        shuffled = SharedRandomness(4).shuffled(range(20))
        assert sorted(shuffled) == list(range(20))

    def test_choice_and_randrange(self):
        shared = SharedRandomness(6)
        assert shared.randrange(10) in range(10)
        assert shared.choice([5, 6, 7]) in (5, 6, 7)


class TestVectorizedEquivalence:
    """The numpy-backed mask path is draw-identical to the scalar one.

    Byte-identity of batched runs rests on this: whichever representation
    a stream uses, every mask and every subsequent main-stream draw must
    match the scalar reference bit for bit.
    """

    UNIVERSES = [0, 1, 7, 100, 2000, 4093]
    PROBABILITIES = [0.0, 1e-12, 0.001, 0.05, 0.3, 0.9, 0.999999, 1.0]

    def _pair(self, seed):
        pytest.importorskip("numpy")
        return (
            SharedRandomness(seed, vectorized=False),
            SharedRandomness(seed, vectorized=True),
        )

    def test_masks_identical_across_representations(self):
        for seed in (0, 1, 17):
            scalar, vector = self._pair(seed)
            for universe in self.UNIVERSES:
                for p in self.PROBABILITIES:
                    assert scalar.bernoulli_subset_mask(
                        universe, p, tag=3
                    ) == vector.bernoulli_subset_mask(universe, p, tag=3)

    def test_closed_forms_skip_vectorization(self):
        scalar, vector = self._pair(5)
        assert vector.bernoulli_subset_mask(64, 0.0, tag=1) == 0
        assert vector.bernoulli_subset_mask(64, 1.0, tag=1) == (1 << 64) - 1
        assert scalar.bernoulli_subset_mask(64, 1.0, tag=1) == (1 << 64) - 1

    def test_denormal_probability(self):
        scalar, vector = self._pair(9)
        p = 5e-324  # smallest positive double: log1p(-p) == 0.0
        assert scalar.bernoulli_subset_mask(10**6, p, tag=2) == 0
        assert vector.bernoulli_subset_mask(10**6, p, tag=2) == 0

    def test_forced_vector_path_matches_scalar(self, monkeypatch):
        """Below-threshold draws take the scalar branch by default; force
        the vector branch to prove equivalence there too."""
        import repro.comm.randomness as rnd

        pytest.importorskip("numpy")
        for seed in (0, 3):
            scalar = SharedRandomness(seed, vectorized=False)
            monkeypatch.setattr(rnd, "_VECTOR_MIN_EXPECTED", 0)
            vector = SharedRandomness(seed, vectorized=True)
            for universe in (1, 13, 200):
                for p in (0.001, 0.4, 0.97):
                    assert scalar.bernoulli_subset_mask(
                        universe, p, tag=7
                    ) == vector.bernoulli_subset_mask(universe, p, tag=7)
            monkeypatch.undo()

    def test_main_stream_order_unaffected(self):
        """Tagged mask draws must not perturb the main stream, whichever
        backend produced them."""
        scalar, vector = self._pair(11)
        a = scalar.random()
        scalar.bernoulli_subset_mask(4000, 0.3, tag=1)
        vector.random()
        vector.bernoulli_subset_mask(4000, 0.3, tag=1)
        assert scalar.random() == vector.random()
        assert a == SharedRandomness(11).random()

    def test_vectorized_requires_numpy_guard(self):
        import repro.comm.randomness as rnd

        if rnd._np is None:
            with pytest.raises(RuntimeError):
                SharedRandomness(0, vectorized=True)
        else:
            SharedRandomness(0, vectorized=True)


class TestBatchConstruction:
    """SharedRandomness.batch(seeds) streams == per-seed construction."""

    def test_batch_matches_individual_streams(self):
        seeds = [0, 1, 2, 3, 1 << 40]
        batched = SharedRandomness.batch(seeds)
        assert len(batched) == len(seeds)
        for seed, stream in zip(seeds, batched):
            reference = SharedRandomness(seed)
            assert stream.bernoulli_subset_mask(
                500, 0.3, tag=4
            ) == reference.bernoulli_subset_mask(500, 0.3, tag=4)
            assert [stream.random() for _ in range(5)] == [
                reference.random() for _ in range(5)
            ]

    def test_batch_streams_independent(self):
        left, right = SharedRandomness.batch([1, 2])
        assert left.random() != right.random()

    def test_batch_vectorized_flag_propagates(self):
        pytest.importorskip("numpy")
        for stream in SharedRandomness.batch([0, 1], vectorized=True):
            assert stream._vectorized

    def test_empty_batch(self):
        assert SharedRandomness.batch([]) == []


class TestBatchHypothesis:
    """Hypothesis pin: batch() equals per-seed construction on any seeds."""

    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**63 - 1),
            min_size=1, max_size=6,
        ),
        universe=st.integers(min_value=0, max_value=3000),
        p=st.floats(min_value=0.0, max_value=1.0,
                    allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_draw_equivalence(self, seeds, universe, p):
        batched = SharedRandomness.batch(seeds)
        for seed, stream in zip(seeds, batched):
            reference = SharedRandomness(seed)
            assert stream.bernoulli_subset_mask(
                universe, p, tag=1
            ) == reference.bernoulli_subset_mask(universe, p, tag=1)
            assert stream.random() == reference.random()

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        universe=st.integers(min_value=1, max_value=5000),
        p=st.floats(min_value=1e-9, max_value=1.0,
                    allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_scalar_equivalence(self, seed, universe, p):
        import repro.comm.randomness as rnd

        if rnd._np is None:
            pytest.skip("numpy unavailable")
        scalar = SharedRandomness(seed, vectorized=False)
        vector = SharedRandomness(seed, vectorized=True)
        assert scalar.bernoulli_subset_mask(
            universe, p, tag=2
        ) == vector.bernoulli_subset_mask(universe, p, tag=2)

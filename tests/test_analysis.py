"""Tests for the analysis harness (scaling fits, sweeps, Table 1 rows)."""

import math

import pytest

from repro.analysis.experiments import default_instance, run_sweep
from repro.analysis.scaling import fit_power_law, strip_polylog
from repro.analysis.table1 import (
    RowReport,
    row_bm_lower,
    row_sim_covered_lower,
    row_symmetrization,
)
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [10.0, 100.0, 1000.0, 10_000.0]
        ys = [3.0 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self):
        xs = [10.0, 100.0, 1000.0, 10_000.0]
        ys = [2.0 * x ** 0.33 * factor for x, factor in zip(xs, (1.1, 0.9, 1.05, 0.95))]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 0.33) < 0.05

    def test_predicted(self):
        fit = fit_power_law([1.0, 10.0], [2.0, 20.0])
        assert fit.predicted(100.0) == pytest.approx(200.0)

    def test_matches_tolerance(self):
        fit = fit_power_law([1.0, 10.0], [1.0, 10.0])
        assert fit.matches(1.0, tolerance=0.01)
        assert not fit.matches(0.5, tolerance=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([0.0, 1.0], [1.0, 2.0])

    def test_strip_polylog(self):
        sizes = [16.0, 256.0]
        values = [10.0 * math.log2(s) ** 2 for s in sizes]
        stripped = strip_polylog(values, sizes, log_power=2.0)
        assert stripped[0] == pytest.approx(stripped[1])

    def test_strip_validation(self):
        with pytest.raises(ValueError):
            strip_polylog([1.0], [1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            strip_polylog([1.0], [1.0], 1.0)


class TestSweep:
    def test_sweep_records_points(self):
        instance_fn = default_instance(epsilon=0.3, k=3)
        sweep = run_sweep(
            lambda partition, s: find_triangle_sim_low(
                partition, SimLowParams(epsilon=0.3, delta=0.2), seed=s
            ),
            instance_fn,
            grid=[(200, 4.0, 3), (400, 4.0, 3)],
            trials=2,
            seed=1,
        )
        assert len(sweep.points) == 2
        assert sweep.points[0].n == 200
        assert all(p.median_bits > 0 for p in sweep.points)

    def test_sweep_axes(self):
        instance_fn = default_instance(epsilon=0.3, k=3)
        sweep = run_sweep(
            lambda partition, s: find_triangle_sim_low(
                partition, SimLowParams(epsilon=0.3), seed=s
            ),
            instance_fn,
            grid=[(200, 4.0, 3)],
            trials=1,
        )
        assert sweep.xs("n") == [200]
        assert sweep.xs("d") == [4.0]
        assert sweep.xs("nd") == [800.0]
        with pytest.raises(ValueError):
            sweep.xs("bogus")

    def test_detection_rate_tracked(self):
        instance_fn = default_instance(epsilon=0.3, k=3)
        sweep = run_sweep(
            lambda partition, s: find_triangle_sim_low(
                partition, SimLowParams(epsilon=0.3, delta=0.1), seed=s
            ),
            instance_fn,
            grid=[(600, 5.0, 3)],
            trials=3,
        )
        assert sweep.points[0].detection_rate >= 2 / 3

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_sweep(
                lambda p, s: None, default_instance(), [(10, 1.0, 2)],
                trials=0,
            )


class TestTable1FastRows:
    def test_bm_row_passes(self):
        report = row_bm_lower(quick=True, seed=0)
        assert isinstance(report, RowReport)
        assert report.measured == 1.0

    def test_symmetrization_row_matches(self):
        report = row_symmetrization(quick=True, seed=0)
        assert abs(report.measured - report.claimed) < 0.2 * report.claimed

    def test_covered_row_monotone(self):
        report = row_sim_covered_lower(quick=True, seed=0)
        assert report.measured > 0.5  # budget buys covered pairs

    def test_row_formatting(self):
        report = row_bm_lower(quick=True, seed=0)
        text = report.formatted()
        assert "T1-R6" in text
        assert "measured=" in text

    def test_subgraph_patterns_row(self):
        from repro.analysis.table1 import row_subgraph_patterns

        report = row_subgraph_patterns(quick=True, seed=0)
        assert report.row_id == "X-2"
        assert report.measured >= 0.8
        # Per-pattern detection rates are itemized in the note.
        for name in ("K4", "C4", "C5", "P4", "K1,3"):
            assert name in report.note

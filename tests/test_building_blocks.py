"""Tests for the Section 3.1 building blocks (repro.core.building_blocks)."""

from collections import Counter

import pytest

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.core.building_blocks import (
    bfs_tree,
    collect_induced_subgraph,
    collect_neighbors,
    edge_index,
    query_edge,
    random_edge,
    random_incident_edge,
    random_walk,
)
from repro.graphs.generators import gnd
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    partition_all_to_all,
    partition_disjoint,
    partition_with_duplication,
)


@pytest.fixture
def setup():
    graph = gnd(60, 5.0, seed=1)
    partition = partition_with_duplication(graph, 3, seed=2)
    rt = CoordinatorRuntime(make_players(partition), SharedRandomness(3))
    return graph, rt


def fresh_rt(partition, seed):
    return CoordinatorRuntime(make_players(partition), SharedRandomness(seed))


class TestQueryEdge:
    def test_present_edge(self, setup):
        graph, rt = setup
        edge = next(iter(graph.edges()))
        assert query_edge(rt, *edge) is True

    def test_absent_edge(self, setup):
        graph, rt = setup
        for u in range(60):
            for v in range(u + 1, 60):
                if not graph.has_edge(u, v):
                    assert query_edge(rt, u, v) is False
                    return

    def test_cost_linear_in_k(self, setup):
        graph, rt = setup
        edge = next(iter(graph.edges()))
        query_edge(rt, *edge)
        # k bits up + k bits down + k request bits.
        assert rt.ledger.total_bits == 3 * rt.k


class TestRandomIncidentEdge:
    def test_returns_incident_edge(self, setup):
        graph, rt = setup
        v = max(range(60), key=graph.degree)
        edge = random_incident_edge(rt, v)
        assert edge is not None
        assert v in edge
        assert graph.has_edge(*edge)

    def test_isolated_vertex_returns_none(self):
        graph = Graph(5, [(0, 1)])
        partition = partition_disjoint(graph, 2, seed=1)
        rt = fresh_rt(partition, 2)
        assert random_incident_edge(rt, 4) is None

    def test_unbiased_under_duplication(self):
        # One neighbour duplicated to all players, others held by one:
        # naive "first local edge" sampling would favour the duplicate.
        graph = Graph(8, [(0, i) for i in range(1, 8)])
        views = [
            frozenset({(0, 1), (0, 2), (0, 3)}),
            frozenset({(0, 1), (0, 4), (0, 5)}),
            frozenset({(0, 1), (0, 6), (0, 7)}),
        ]
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, views)
        counts: Counter[int] = Counter()
        for seed in range(700):
            rt = fresh_rt(partition, seed)
            edge = random_incident_edge(rt, 0, tag=seed)
            counts[edge[1]] += 1
        # Each neighbour expected 100 times; the duplicated one must not
        # be systematically favoured.
        assert counts[1] < 200

    def test_cost_k_log_n(self, setup):
        graph, rt = setup
        v = max(range(60), key=graph.degree)
        random_incident_edge(rt, v)
        assert rt.ledger.total_bits <= rt.k * 50


class TestRandomWalk:
    def test_walk_follows_edges(self, setup):
        graph, rt = setup
        v = max(range(60), key=graph.degree)
        path = random_walk(rt, v, steps=4)
        assert path[0] == v
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_walk_halts_at_isolated(self):
        graph = Graph(5, [(0, 1)])
        partition = partition_disjoint(graph, 2, seed=1)
        rt = fresh_rt(partition, 3)
        path = random_walk(rt, 4, steps=3)
        assert path == [4]

    def test_negative_steps_rejected(self, setup):
        _, rt = setup
        with pytest.raises(ValueError):
            random_walk(rt, 0, steps=-1)


class TestRandomEdge:
    def test_returns_graph_edge(self, setup):
        graph, rt = setup
        edge = random_edge(rt)
        assert graph.has_edge(*edge)

    def test_empty_graph_returns_none(self):
        graph = Graph(5)
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, (frozenset(), frozenset()))
        rt = fresh_rt(partition, 1)
        assert random_edge(rt) is None

    def test_roughly_uniform_over_edges(self):
        graph = Graph(6, [(0, 1), (2, 3), (4, 5)])
        partition = partition_all_to_all(graph, 3)
        counts: Counter = Counter()
        for seed in range(300):
            rt = fresh_rt(partition, seed)
            counts[random_edge(rt, tag=seed)] += 1
        for edge in graph.edges():
            assert 40 <= counts[edge] <= 180  # expectation 100

    def test_edge_index_unique(self):
        n = 20
        indices = {
            edge_index((u, v), n)
            for u in range(n)
            for v in range(u + 1, n)
        }
        assert len(indices) == n * (n - 1) // 2


class TestInducedSubgraph:
    def test_collects_exact_edges(self, setup):
        graph, rt = setup
        vertices = list(range(25))
        collected = collect_induced_subgraph(rt, vertices)
        assert collected == graph.induced_subgraph_edges(vertices)

    def test_cap_limits_per_player(self, setup):
        graph, rt = setup
        collected = collect_induced_subgraph(
            rt, range(60), cap_per_player=1
        )
        assert len(collected) <= rt.k

    def test_collect_neighbors(self, setup):
        graph, rt = setup
        v = max(range(60), key=graph.degree)
        assert collect_neighbors(rt, v) == set(graph.neighbors(v))


class TestBfs:
    def test_tree_structure(self, setup):
        graph, rt = setup
        root = max(range(60), key=graph.degree)
        tree = bfs_tree(rt, root, max_vertices=15)
        assert tree[root] is None
        for child, parent in tree.items():
            if parent is not None:
                assert graph.has_edge(child, parent)

    def test_respects_budget(self, setup):
        graph, rt = setup
        root = max(range(60), key=graph.degree)
        tree = bfs_tree(rt, root, max_vertices=5)
        assert len(tree) <= 5

    def test_disconnected_component_only(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)])
        partition = partition_disjoint(graph, 2, seed=1)
        rt = fresh_rt(partition, 5)
        tree = bfs_tree(rt, 0)
        assert set(tree) == {0, 1, 2}
